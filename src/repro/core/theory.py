"""Formal-analysis utilities (paper Section 3.2, Appendices C/D).

These functions make the paper's two theoretical claims *testable* on
small automata:

* **Proposition 3.1** -- for a fixed chunk structure, keeping the k most
  probable strings per chunk maximizes the retained probability mass over
  all per-edge k-string selections.  :func:`exhaustive_best_selection`
  brute-forces the selection space so tests can compare.
* **Appendix C** -- conditioning on the retained string set is the KL
  minimizer, and ``KL = -log(retained mass)``, so *more retained mass ==
  closer approximation*.  :func:`kl_of_selection` exposes the quantity.

Theorem 3.1 (NP-hardness of richer-than-SFA chunk structures) is a lower
bound, not an algorithm, so it has no implementation -- but
:func:`selection_mass` works for arbitrary per-edge selections, which is
what the hardness applies to.
"""

from __future__ import annotations

import itertools
import math

from ..sfa.model import Sfa
from ..sfa.ops import total_mass

__all__ = [
    "selection_mass",
    "exhaustive_best_selection",
    "greedy_selection_mass",
    "kl_of_selection",
]

Selection = dict[tuple[int, int], tuple[str, ...]]


def _apply_selection(sfa: Sfa, selection: Selection) -> Sfa:
    result = sfa.copy()
    for (u, v), strings in selection.items():
        chosen = set(strings)
        kept = [e for e in sfa.emissions(u, v) if e.string in chosen]
        if not kept:
            # An empty selection keeps the edge structurally but carries no
            # probability: no string through it is emitted.
            placeholder = sfa.emissions(u, v)[0].string
            kept = [(placeholder, 0.0)]
        result.replace_emissions(u, v, kept)
    return result


def selection_mass(sfa: Sfa, selection: Selection) -> float:
    """Retained probability mass when each edge keeps only the selected
    strings (``Pr_S[Emit(alpha)]`` in the paper's notation)."""
    return total_mass(_apply_selection(sfa, selection))


def greedy_selection_mass(sfa: Sfa, k: int) -> float:
    """Mass retained by Staccato's choice: top-k per edge."""
    selection: Selection = {
        (u, v): tuple(e.string for e in sfa.emissions(u, v)[:k])
        for u, v in sfa.edges
    }
    return selection_mass(sfa, selection)


def exhaustive_best_selection(sfa: Sfa, k: int) -> tuple[Selection, float]:
    """Brute-force the best per-edge k-string selection (test-sized only).

    Enumerates every combination of (at most k strings per edge) and
    returns the maximizer -- the quantity Proposition 3.1 says the greedy
    top-k choice achieves.
    """
    edges = sfa.edges
    options_per_edge: list[list[tuple[str, ...]]] = []
    for u, v in edges:
        strings = [e.string for e in sfa.emissions(u, v)]
        count = min(k, len(strings))
        options_per_edge.append(
            [tuple(combo) for combo in itertools.combinations(strings, count)]
        )
    best_selection: Selection = {}
    best_mass = -1.0
    for combo in itertools.product(*options_per_edge):
        selection = dict(zip(edges, combo))
        mass = selection_mass(sfa, selection)
        if mass > best_mass:
            best_mass = mass
            best_selection = selection
    return best_selection, best_mass


def kl_of_selection(sfa: Sfa, selection: Selection) -> float:
    """KL divergence of the conditioned selection from the original
    distribution: ``-log(retained mass)`` (paper Appendix C)."""
    mass = selection_mass(sfa, selection)
    if mass <= 0.0:
        return math.inf
    return -math.log(mass)
