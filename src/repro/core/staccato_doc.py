"""The Staccato representation of one OCR line.

After approximation a line is a *chunk graph*: an SFA whose edges are
chunks, each carrying at most ``k`` ranked strings.  In the RDBMS this is
stored as one row per (chunk, rank) in ``StaccatoData`` plus the graph
shape as a BLOB in ``StaccatoGraph`` (paper Appendix G); this class is the
in-memory form both map to.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sfa.model import Sfa
from ..sfa.ops import string_count, total_mass

__all__ = ["StaccatoDoc"]


@dataclass(frozen=True, slots=True)
class StaccatoDoc:
    """A chunked, pruned SFA plus the parameters that produced it."""

    sfa: Sfa
    m: int
    k: int

    @property
    def num_chunks(self) -> int:
        """Number of chunks actually retained (<= the requested m)."""
        return self.sfa.num_edges

    @property
    def strings_stored(self) -> int:
        """Number of (chunk, rank) rows the RDBMS stores."""
        return self.sfa.num_emissions()

    def distinct_strings(self) -> int:
        """Number of distinct line transcriptions representable -- grows
        like k**m (paper Figure 2)."""
        return string_count(self.sfa)

    def retained_mass(self) -> float:
        """Probability mass the representation kept (<= 1)."""
        return total_mass(self.sfa)

    def chunk_strings(self) -> list[tuple[tuple[int, int], list[tuple[str, float]]]]:
        """Per-chunk ranked string lists, keyed by chunk edge."""
        return [
            ((u, v), [(e.string, e.prob) for e in self.sfa.emissions(u, v)])
            for u, v in sorted(self.sfa.edges)
        ]
