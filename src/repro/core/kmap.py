"""The MAP / k-MAP baseline (paper Section 3, "Baseline Approaches").

k-MAP stores the k highest-probability strings of each line SFA, one
tuple per string with its probability; MAP is the k = 1 special case and
is what production systems like Google Books keep.  Query processing over
this representation is ordinary text matching plus probability summation
(each stored string is a disjoint probabilistic event).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sfa.model import Sfa
from ..sfa.paths import k_best_strings

__all__ = ["KMapDoc", "build_kmap", "build_map"]


@dataclass(frozen=True, slots=True)
class KMapDoc:
    """The k-MAP representation of one line: ranked strings."""

    strings: tuple[tuple[str, float], ...]
    k: int

    @property
    def map_string(self) -> str:
        """The single most likely transcription."""
        return self.strings[0][0]

    def retained_mass(self) -> float:
        """Probability mass the k stored strings cover."""
        return sum(prob for _, prob in self.strings)


def build_kmap(sfa: Sfa, k: int) -> KMapDoc:
    """Extract the k-MAP representation of a line SFA."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return KMapDoc(strings=tuple(k_best_strings(sfa, k)), k=k)


def build_map(sfa: Sfa) -> KMapDoc:
    """The plain MAP baseline (k = 1)."""
    return build_kmap(sfa, 1)
