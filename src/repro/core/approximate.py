"""The Staccato construction: greedy merge heuristic (paper Algorithm 2).

Given a line SFA and the knobs ``m`` (maximum number of edges = chunks in
the result) and ``k`` (strings kept per chunk), repeatedly:

1. enumerate candidate regions seeded by node triples ``{x, y, z}`` with
   edges ``(x, y), (y, z)``;
2. grow each seed into a valid region with :func:`find_min_sfa`;
3. score each candidate by the probability mass the collapse would retain;
4. apply the best collapse;

until at most ``m`` edges remain.  Scoring is incremental: with forward
mass ``F`` and backward mass ``B`` computed once per iteration, collapsing
region ``R`` changes the total retained mass by exactly
``F[entry] * B[exit] * (mass(top-k of R) - mass(R))``, because every path
touching the region runs entry-to-exit inside it.  Candidate regions are
cached across iterations and invalidated only when a collapse touches
their nodes (the paper's "simple optimization").
"""

from __future__ import annotations

from ..sfa.model import Sfa
from ..sfa.ops import backward_mass, forward_mass, topological_order
from .chunks import Region, collapse, find_min_sfa, region_mass, region_top_k
from .staccato_doc import StaccatoDoc

__all__ = ["prune_edges_to_k", "staccato_approximate", "build_staccato"]


def prune_edges_to_k(sfa: Sfa, k: int) -> Sfa:
    """Retain only the k most probable emissions on every edge.

    This is the algorithm's standing invariant ("each edge emits at most k
    strings"); ties are broken deterministically by the emission ordering.
    """
    result = sfa.copy()
    for u, v in result.edges:
        emissions = result.emissions(u, v)
        if len(emissions) > k:
            result.replace_emissions(u, v, emissions[:k])
    return result


def _candidate_regions(
    sfa: Sfa,
    topo_index: dict[int, int],
    region_cache: dict[tuple[int, int, int], Region],
) -> dict[frozenset[int], Region]:
    """All distinct regions grown from adjacent-edge node triples.

    ``region_cache`` carries triple -> region results across greedy
    iterations; entries touching a collapsed region are evicted by the
    caller, so surviving entries are still correct (a collapse elsewhere
    does not change reachability among untouched nodes).
    """
    regions: dict[frozenset[int], Region] = {}
    for middle in sfa.nodes:
        if middle in (sfa.start, sfa.final):
            continue
        for pred in set(sfa.pred(middle)):
            for succ in set(sfa.succ(middle)):
                triple = (pred, middle, succ)
                region = region_cache.get(triple)
                if region is None:
                    region = find_min_sfa(sfa, {pred, middle, succ}, topo_index)
                    region_cache[triple] = region
                regions.setdefault(region.nodes, region)
    return regions


def staccato_approximate(sfa: Sfa, m: int, k: int) -> Sfa:
    """Build the Staccato approximation of ``sfa`` with parameters (m, k).

    ``m = 1`` degenerates to k-MAP (one chunk holding the k best strings
    of the whole line); ``m >= |E|`` keeps the structure and just prunes
    every edge to its k best emissions (paper Section 5.2).  The result
    generally retains less than the full probability mass.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    work = prune_edges_to_k(sfa, k)
    score_cache: dict[frozenset[int], float] = {}
    region_cache: dict[tuple[int, int, int], Region] = {}
    while work.num_edges > m:
        topo_index = {
            node: i for i, node in enumerate(topological_order(work))
        }
        candidates = _candidate_regions(work, topo_index, region_cache)
        if not candidates:
            break
        forward = forward_mass(work)
        backward = backward_mass(work)
        best_region: Region | None = None
        best_delta = float("-inf")
        for nodes, region in sorted(
            candidates.items(), key=lambda item: sorted(item[0])
        ):
            loss = score_cache.get(nodes)
            if loss is None:
                kept = sum(p for _, p in region_top_k(work, region, k))
                loss = kept - region_mass(work, region)
                score_cache[nodes] = loss
            delta = forward[region.entry] * backward[region.exit] * loss
            if delta > best_delta:
                best_delta = delta
                best_region = region
        assert best_region is not None
        work = collapse(work, best_region, k)
        touched = best_region.nodes
        score_cache = {
            nodes: loss
            for nodes, loss in score_cache.items()
            if not (nodes & touched)
        }
        region_cache = {
            triple: region
            for triple, region in region_cache.items()
            if not (region.nodes & touched)
        }
    return work


def build_staccato(sfa: Sfa, m: int, k: int) -> StaccatoDoc:
    """Convenience wrapper returning the chunk-graph document object."""
    return StaccatoDoc(sfa=staccato_approximate(sfa, m, k), m=m, k=k)
