"""FindMinSFA and Collapse: the chunk-forming operations (paper Alg. 1).

Staccato approximates an SFA by repeatedly *merging* a set of transitions
into a single edge.  Merging is only sound when the merged node set forms
a valid sub-SFA -- a single-entry / single-exit region -- otherwise new
strings not present in the original model appear (the "bad merge" of
paper Figure 3(C)).  ``find_min_sfa`` grows a seed node set into the
minimal enclosing region using least-common-ancestor / greatest-common-
descendant steps plus boundary-edge closure; ``collapse`` replaces that
region with one edge carrying the region's top-k strings.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sfa.model import Sfa, SfaError
from ..sfa.ops import ancestors, descendants, topological_order
from ..sfa.paths import k_best_between

__all__ = ["Region", "find_min_sfa", "collapse", "region_mass", "region_top_k"]


@dataclass(frozen=True, slots=True)
class Region:
    """A single-entry/single-exit region of an SFA.

    ``nodes`` includes ``entry`` and ``exit``; every entry-to-exit path of
    the SFA lies wholly inside ``nodes``.
    """

    nodes: frozenset[int]
    entry: int
    exit: int

    @property
    def internal(self) -> frozenset[int]:
        """Region nodes other than the entry and exit."""
        return self.nodes - {self.entry, self.exit}


def _least_common_ancestor(
    sfa: Sfa, nodes: set[int], topo_index: dict[int, int]
) -> int:
    """The common ancestor of ``nodes`` latest in topological order.

    A node counts as its own ancestor, so if one member of ``nodes``
    reaches all the others it is returned directly.  The global start node
    is always a common ancestor, so the result exists.
    """
    common: set[int] | None = None
    for node in nodes:
        reaching = ancestors(sfa, node) | {node}
        common = reaching if common is None else common & reaching
    assert common
    return max(common, key=topo_index.__getitem__)


def _greatest_common_descendant(
    sfa: Sfa, nodes: set[int], topo_index: dict[int, int]
) -> int:
    """The common descendant of ``nodes`` earliest in topological order."""
    common: set[int] | None = None
    for node in nodes:
        reached = descendants(sfa, node) | {node}
        common = reached if common is None else common & reached
    assert common
    return min(common, key=topo_index.__getitem__)


def find_min_sfa(
    sfa: Sfa, seed_nodes: set[int], topo_index: dict[int, int] | None = None
) -> Region:
    """Grow ``seed_nodes`` into the minimal valid enclosing region.

    Implements paper Algorithm 1: while the current set is not a valid
    sub-SFA, compute the least common ancestor (fixing a missing unique
    start), the greatest common descendant (fixing a missing unique end),
    pull in the interval of nodes lying on entry-to-exit paths, and close
    over edges that cross the region boundary at an internal node.  The
    loop strictly grows the set, so it terminates (in the worst case with
    the whole SFA, which is trivially a valid region).

    ``topo_index`` lets callers that probe many seed sets share one
    topological-order computation.
    """
    if len(seed_nodes) < 2:
        raise SfaError("a chunk region needs at least two seed nodes")
    if topo_index is None:
        topo_index = {node: i for i, node in enumerate(topological_order(sfa))}
    grown = set(seed_nodes)
    while True:
        entry = _least_common_ancestor(sfa, grown, topo_index)
        exit_ = _greatest_common_descendant(sfa, grown, topo_index)
        if entry == exit_:
            raise SfaError(
                f"seed nodes {sorted(seed_nodes)} collapse to a single node"
            )
        if topo_index[entry] > topo_index[exit_]:
            # Pathological seed (e.g. parallel branches with no common
            # interior); widen to the whole automaton.
            entry, exit_ = sfa.start, sfa.final
        interval = (descendants(sfa, entry) | {entry}) & (
            ancestors(sfa, exit_) | {exit_}
        )
        grown |= interval
        boundary: set[int] = set()
        for node in interval - {entry, exit_}:
            for pred in sfa.pred(node):
                if pred not in interval:
                    boundary.add(pred)
            for succ in sfa.succ(node):
                if succ not in interval:
                    boundary.add(succ)
        if not boundary:
            return Region(nodes=frozenset(interval), entry=entry, exit=exit_)
        grown |= boundary


def region_mass(sfa: Sfa, region: Region) -> float:
    """Total probability of all entry-to-exit labeled paths in the region
    (the mass the region carries before pruning)."""
    mass = {node: 0.0 for node in region.nodes}
    mass[region.entry] = 1.0
    order = [n for n in topological_order(sfa) if n in region.nodes]
    for node in order:
        if node == region.exit or mass[node] == 0.0:
            continue
        for succ in set(sfa.successors(node)):
            if succ in region.nodes:
                mass[succ] += mass[node] * sfa.edge_mass(node, succ)
    return mass[region.exit]


def region_top_k(sfa: Sfa, region: Region, k: int) -> list[tuple[str, float]]:
    """The k highest-probability strings spelled by the region."""
    return k_best_between(sfa, region.entry, region.exit, k, within=set(region.nodes))


def collapse(sfa: Sfa, region: Region, k: int) -> Sfa:
    """Replace ``region`` with a single edge carrying its top-k strings.

    Returns a new SFA (the input is not modified).  This is the
    ``Collapse`` operation of paper Section 3.1; by Proposition 3.1,
    keeping the k most probable region strings maximizes the retained
    probability mass among all k-string choices for the new edge.
    """
    top = region_top_k(sfa, region, k)
    if not top:
        raise SfaError("region emits no strings; cannot collapse")
    result = sfa.copy()
    for node in region.internal:
        result.remove_node(node)
    if result.has_edge(region.entry, region.exit):
        # A direct entry->exit edge is part of the region's paths and its
        # strings already competed for the top-k slots.
        result.remove_edge(region.entry, region.exit)
    result.add_edge(region.entry, region.exit, top)
    return result
