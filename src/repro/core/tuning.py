"""Automated (m, k) parameter tuning (paper Sections 3.2 and 5.5).

Choosing Staccato's knobs by hand is unintuitive, so the paper tunes them
from (a) a labeled sample of SFAs, (b) a set of representative queries,
(c) a *size constraint* (storage as a fraction of the FullSFA dataset
size) and (d) a *recall constraint*.  The Table 1 size model
``space(m, k) = l*k + 16*m*k`` ties k to m along the size boundary, which
turns tuning into a one-dimensional search: find the smallest ``m``
(smaller m = faster queries) whose boundary-k meets the recall target.
The paper solves it "using essentially a binary search"; so do we.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..automata.dfa import Dfa
from ..query.eval_sfa import match_probability
from ..query.like import compile_like
from ..sfa.model import Sfa
from ..sfa.paths import k_best_strings
from ..sfa.serialize import blob_size
from .approximate import staccato_approximate

__all__ = [
    "size_model",
    "dataset_size_model",
    "k_on_size_boundary",
    "TuningResult",
    "tune_parameters",
    "sample_recall",
]

#: Bytes of metadata stored per retained string: tuple id, location in the
#: SFA, probability value (the paper's "factor 16", Table 1).
METADATA_BYTES = 16


def size_model(length: int, m: int, k: int) -> int:
    """Table 1's Staccato space cost for one line: ``l*k + 16*m*k``."""
    return length * k + METADATA_BYTES * m * k


def dataset_size_model(lengths: list[int], m: int, k: int) -> int:
    """The size model summed over a dataset of line lengths."""
    return sum(size_model(length, m, k) for length in lengths)


def k_on_size_boundary(lengths: list[int], m: int, budget_bytes: int) -> int:
    """Largest k with ``dataset_size_model(lengths, m, k) <= budget``.

    The model is linear in k -- ``k * (sum(l) + 16*m*n)`` -- so the
    boundary k is a single division.
    """
    denom = sum(lengths) + METADATA_BYTES * m * len(lengths)
    return max(0, budget_bytes // denom)


@dataclass(frozen=True, slots=True)
class TuningResult:
    """Outcome of the automated tuner."""

    m: int
    k: int
    recall: float
    feasible: bool
    size_estimate: int
    budget_bytes: int


def sample_recall(
    sfas: list[Sfa],
    truth_texts: list[str],
    queries: list[str],
    m: int,
    k: int,
) -> float:
    """Average recall of the (m, k) approximation over sample queries.

    ``truth_texts`` are the ground-truth line contents aligned with
    ``sfas``; a line is truly relevant to a query iff its clean text
    matches, and retrieved iff the approximated SFA gives it non-zero
    match probability.
    """
    approximations = [staccato_approximate(sfa, m, k) for sfa in sfas]
    recalls = []
    for like in queries:
        query: Dfa = compile_like(like)
        relevant = [i for i, text in enumerate(truth_texts) if query.accepts(text)]
        if not relevant:
            continue
        hits = sum(
            1 for i in relevant if match_probability(approximations[i], query) > 0.0
        )
        recalls.append(hits / len(relevant))
    if not recalls:
        return 1.0
    return sum(recalls) / len(recalls)


def tune_parameters(
    sfas: list[Sfa],
    truth_texts: list[str],
    queries: list[str],
    size_fraction: float = 0.10,
    recall_target: float = 0.9,
    m_step: int = 5,
) -> TuningResult:
    """Find the smallest feasible ``m`` (and its boundary ``k``).

    Implements the paper's method: the size budget is ``size_fraction``
    of the FullSFA dataset size; for each candidate ``m`` (multiples of
    ``m_step``, as in Section 5.5) the boundary ``k`` comes from the size
    model, and average recall is estimated on the labeled sample.  A
    binary search returns the smallest m meeting the recall target; if no
    m is feasible, the best attempt is returned with ``feasible=False``.
    """
    if not sfas:
        raise ValueError("tuning needs at least one sample SFA")
    lengths = [len(text) for text in truth_texts]
    budget = int(size_fraction * sum(blob_size(sfa) for sfa in sfas))
    max_m = max(sfa.num_edges for sfa in sfas)
    candidates = list(range(m_step, max_m + m_step, m_step))

    def evaluate(m: int) -> tuple[int, float]:
        k = k_on_size_boundary(lengths, m, budget)
        if k < 1:
            return 0, 0.0
        return k, sample_recall(sfas, truth_texts, queries, m, k)

    lo, hi = 0, len(candidates) - 1
    best: TuningResult | None = None
    fallback: TuningResult | None = None
    while lo <= hi:
        mid = (lo + hi) // 2
        m = candidates[mid]
        k, recall = evaluate(m)
        result = TuningResult(
            m=m,
            k=k,
            recall=recall,
            feasible=k >= 1 and recall >= recall_target,
            size_estimate=dataset_size_model(lengths, m, max(k, 1)),
            budget_bytes=budget,
        )
        if fallback is None or result.recall > fallback.recall:
            fallback = result
        if result.feasible:
            best = result
            hi = mid - 1  # look for a smaller feasible m
        else:
            lo = mid + 1
    if best is not None:
        return best
    assert fallback is not None
    return fallback
