"""The Staccato approximation -- the paper's primary contribution."""

from .approximate import build_staccato, prune_edges_to_k, staccato_approximate
from .chunks import Region, collapse, find_min_sfa, region_mass, region_top_k
from .kmap import KMapDoc, build_kmap, build_map
from .staccato_doc import StaccatoDoc
from .theory import (
    exhaustive_best_selection,
    greedy_selection_mass,
    kl_of_selection,
    selection_mass,
)
from .tuning import (
    METADATA_BYTES,
    TuningResult,
    dataset_size_model,
    k_on_size_boundary,
    sample_recall,
    size_model,
    tune_parameters,
)

__all__ = [
    "build_staccato",
    "prune_edges_to_k",
    "staccato_approximate",
    "Region",
    "collapse",
    "find_min_sfa",
    "region_mass",
    "region_top_k",
    "KMapDoc",
    "build_kmap",
    "build_map",
    "StaccatoDoc",
    "exhaustive_best_selection",
    "greedy_selection_mass",
    "kl_of_selection",
    "selection_mass",
    "METADATA_BYTES",
    "TuningResult",
    "dataset_size_model",
    "k_on_size_boundary",
    "sample_recall",
    "size_model",
    "tune_parameters",
]
