"""The simulated OCR engine: ground-truth text line -> SFA.

This is our substitute for OCRopus (see DESIGN.md): given the true
contents of a scanned line, it produces the stochastic finite automaton an
OCR engine would emit -- per-glyph alternatives on chain edges, plus the
structural branching real segmentation uncertainty creates:

* **merges**: an adjacent pair like ``rn`` may be read as the single glyph
  ``m`` (a skip edge over two positions);
* **splits**: a glyph like ``m`` may be read as the pair ``rn`` (a detour
  through an auxiliary node);
* **space drops**: inter-word spacing is hard to detect (paper Section 1),
  so a space may vanish (a skip edge emitting the following glyph).

The construction maintains the *unique-paths property* of paper
Section 2.2 by keeping every emission a single character and the outgoing
emission characters of every node distinct -- the SFA is then
deterministic as an automaton, so each string has exactly one labeled
path.  Outgoing probabilities are normalized at every node, giving a valid
stochastic SFA.
"""

from __future__ import annotations

import hashlib
import random

from ..sfa.model import Sfa
from .noise import NoiseModel

__all__ = ["SimulatedOcrEngine", "stable_seed"]


def stable_seed(*parts: object) -> int:
    """A process-independent integer seed from arbitrary repr-able parts.

    ``hash(str)`` is salted per process, so seeded corpora must derive
    their randomness through a stable digest instead.
    """
    digest = hashlib.sha256(repr(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class SimulatedOcrEngine:
    """Deterministic (seeded) OCR simulator producing one SFA per line."""

    def __init__(self, noise: NoiseModel | None = None, seed: int = 0) -> None:
        self.noise = noise or NoiseModel()
        self.seed = seed

    def recognize_line(self, text: str, line_seed: object = None) -> Sfa:
        """OCR one line of ground-truth text into an SFA.

        The same ``(engine seed, text, line_seed)`` triple always yields
        the identical SFA, which is what makes the synthetic corpora
        reproducible.
        """
        if not text:
            raise ValueError("cannot OCR an empty line")
        rng = random.Random(stable_seed(self.seed, text, line_seed))
        length = len(text)
        sfa = Sfa(start=0, final=length)
        next_aux = length + 1
        for i, char in enumerate(text):
            target = i + 1
            used: set[str] = set()
            branches: list[tuple[int, list[tuple[str, float]], float]] = []

            # Structural event: merge the pair (text[i], text[i+1]) into a
            # single glyph on a skip edge i -> i+2.
            merged = (
                self.noise.merge_for(text[i : i + 2]) if i + 2 <= length else None
            )
            if merged and rng.random() < self.noise.merge_prob:
                skip_to = i + 2
                weight = 0.1 + 0.25 * rng.random()
                branches.append((skip_to, [(merged, 1.0)], weight))
                used.add(merged)

            # Structural event: drop an uncertain space, i.e. skip the
            # space position and emit the following glyph directly.
            if (
                char == " "
                and i + 2 <= length
                and rng.random() < self.noise.space_drop_prob
            ):
                following = text[i + 1]
                if following not in used and following != " ":
                    weight = 0.1 + 0.2 * rng.random()
                    branches.append((i + 2, [(following, 1.0)], weight))
                    used.add(following)

            # Structural event: split the glyph into two via an aux node.
            split = self.noise.split_for(char)
            split_branch: tuple[int, str, str, float] | None = None
            if split and rng.random() < self.noise.split_prob:
                first, second = split[0], split[1]
                if first not in used:
                    weight = 0.1 + 0.2 * rng.random()
                    split_branch = (next_aux, first, second, weight)
                    next_aux += 1
                    used.add(first)

            # The chain edge carries the per-glyph confusion alternatives.
            alternatives = self.noise.alternatives(char, rng, forbidden=used)
            structural = sum(w for _, _, w in branches)
            if split_branch is not None:
                structural += split_branch[3]
            scale = 1.0 - structural
            sfa.add_edge(i, target, [(s, p * scale) for s, p in alternatives])
            for skip_to, emissions, weight in branches:
                dest = min(skip_to, sfa.final)
                sfa.add_edge(i, dest, [(s, p * weight) for s, p in emissions])
            if split_branch is not None:
                aux, first, second, weight = split_branch
                sfa.add_edge(i, aux, [(first, weight)])
                sfa.add_edge(aux, target, [(second, 1.0)])
        return sfa

    def recognize_document(
        self, lines: list[str], doc_seed: int = 0
    ) -> list[Sfa]:
        """OCR a whole document (one SFA per line, independently seeded)."""
        return [
            self.recognize_line(line, line_seed=(doc_seed, line_no))
            for line_no, line in enumerate(lines)
        ]
