"""Speech transcription lattices (the paper's second future-work item).

Section 7: "we aim to extend our techniques to more types of
content-management data such as speech transcription data.
Interestingly, transducers provide a unifying formal framework for both
transcription processes."  A speech recognizer's per-utterance output is
a *word lattice* -- exactly a generalized SFA whose edge emissions are
whole words rather than characters.  Because :mod:`repro.core` and
:mod:`repro.query` operate on generalized SFAs, the entire Staccato
machinery (k-MAP, chunk approximation, query evaluation, indexing)
applies to these lattices unchanged; this module only supplies the
simulated recognizer.

The noise channel mirrors classic ASR confusions: homophone/near-
homophone substitutions, word deletions (a skipped filler), and
split/merge of adjacent words.
"""

from __future__ import annotations

import random

from ..sfa.model import Sfa
from .engine import stable_seed

__all__ = ["HOMOPHONES", "SimulatedSpeechEngine"]

# Near-homophone confusion table for the lattice alternatives.
HOMOPHONES: dict[str, tuple[str, ...]] = {
    "two": ("to", "too"), "to": ("two", "too"), "too": ("two", "to"),
    "there": ("their", "they're"), "their": ("there",),
    "right": ("write", "rite"), "write": ("right",),
    "four": ("for", "fore"), "for": ("four",),
    "ate": ("eight",), "eight": ("ate",),
    "new": ("knew", "gnu"), "knew": ("new",),
    "claim": ("clam", "claims"), "claims": ("claim",),
    "loss": ("lost", "laws"), "lost": ("loss",),
    "law": ("lore", "laws"), "laws": ("law", "loss"),
    "ford": ("fort", "forward"), "year": ("ear", "years"),
    "public": ("publish",), "president": ("precedent",),
}

_FILLERS = ("uh", "um", "the", "a")


class SimulatedSpeechEngine:
    """Deterministic (seeded) speech recognizer emitting word lattices.

    ``recognize_utterance`` turns a ground-truth sentence into a
    generalized SFA: one edge per word carrying the true word plus
    near-homophones, with occasional structural deletions (a low-weight
    skip edge that drops a filler word).  Outgoing probabilities are
    normalized at every node; the unique-paths property holds because
    all emissions leaving a node are distinct words (compared with their
    separators included).
    """

    def __init__(
        self,
        word_error_rate: float = 0.25,
        deletion_prob: float = 0.3,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= word_error_rate < 1.0:
            raise ValueError("word_error_rate must be in [0, 1)")
        self.word_error_rate = word_error_rate
        self.deletion_prob = deletion_prob
        self.seed = seed

    def _alternatives(
        self, word: str, rng: random.Random
    ) -> list[tuple[str, float]]:
        lower = word.lower()
        pool = [w for w in HOMOPHONES.get(lower, ()) if w != lower]
        if not pool:
            # Generic acoustic confusion: a truncation or an 's' flip.
            mangled = lower[:-1] if len(lower) > 3 else lower + "s"
            pool = [mangled] if mangled != lower else []
        noise = self.word_error_rate * (0.5 + 0.5 * rng.random())
        if not pool:
            return [(word, 1.0)]
        weights = [rng.random() + 0.1 for _ in pool]
        total = sum(weights)
        result = [(word, 1.0 - noise)]
        result.extend(
            (alt, noise * w / total) for alt, w in zip(pool, weights)
        )
        return result

    def recognize_utterance(
        self, sentence: str, utterance_seed: object = None
    ) -> Sfa:
        """One spoken sentence -> a word-lattice SFA.

        Word emissions carry a trailing space except at the final
        position, so concatenating a path spells the transcript with
        ordinary word boundaries and text queries work unchanged.
        """
        words = sentence.split()
        if not words:
            raise ValueError("cannot recognize an empty utterance")
        rng = random.Random(
            stable_seed("speech", self.seed, sentence, utterance_seed)
        )
        sfa = Sfa(start=0, final=len(words))
        for i, word in enumerate(words):
            suffix = " " if i + 1 < len(words) else ""
            alternatives = self._alternatives(word, rng)
            drop = (
                word.lower() in _FILLERS
                and i + 2 <= len(words)
                and rng.random() < self.deletion_prob
            )
            if drop:
                weight = 0.1 + 0.2 * rng.random()
                next_word = words[i + 1]
                next_suffix = " " if i + 2 < len(words) else ""
                taken = {w for w, _ in alternatives}
                if next_word.lower() not in taken:
                    scale = 1.0 - weight
                    sfa.add_edge(
                        i,
                        i + 1,
                        [(w + suffix, p * scale) for w, p in alternatives],
                    )
                    sfa.add_edge(
                        i,
                        min(i + 2, sfa.final),
                        [(next_word + next_suffix, weight)],
                    )
                    continue
            sfa.add_edge(
                i, i + 1, [(w + suffix, p) for w, p in alternatives]
            )
        return sfa
