"""Synthetic corpora standing in for the paper's scanned datasets.

The paper evaluates on three real-world scan sets (Table 2): acts of the
U.S. Congress from the Hathi Trust (CA), an English-literature book from
JSTOR (LT), and self-scanned database papers (DB), plus a Google Books set
for scalability (Figure 10).  We cannot ship those scans, so each
generator below produces ground-truth text with the same *statistical
role*: the CA corpus contains legal boilerplate and citation patterns
(``U.S.C. 2\\d\\d\\d``, ``Public Law (8|9)\\d``); LT contains literary prose
with proper names and date patterns; DB contains systems-paper vocabulary
(``Trio``, ``lineage``, ``Sec.``).  The 21-query workload of paper
Table 6 therefore has non-trivial ground-truth matches against every
corpus, which is all the recall/precision mechanics need (see the
substitution table in DESIGN.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .engine import stable_seed

__all__ = ["Document", "Dataset", "make_ca", "make_lt", "make_db", "make_scale"]


@dataclass(frozen=True, slots=True)
class Document:
    """One scanned document: metadata plus its ground-truth lines."""

    doc_id: int
    name: str
    year: int
    loss: float
    lines: tuple[str, ...]


@dataclass(slots=True)
class Dataset:
    """A named collection of documents, with global line addressing."""

    name: str
    documents: list[Document] = field(default_factory=list)

    def lines(self) -> list[tuple[int, int, int, str]]:
        """All lines as ``(line_id, doc_id, line_no, text)`` tuples; the
        ``line_id`` is the dataset-global SFA id."""
        out = []
        line_id = 0
        for doc in self.documents:
            for line_no, text in enumerate(doc.lines):
                out.append((line_id, doc.doc_id, line_no, text))
                line_id += 1
        return out

    @property
    def num_lines(self) -> int:
        """Total lines across all documents."""
        return sum(len(doc.lines) for doc in self.documents)

    def text_size(self) -> int:
        """Total ground-truth text size in bytes (Table 2, 'Size as Text')."""
        return sum(len(text) for _, _, _, text in self.lines())


_CA_SUBJECTS = [
    "the Attorney General", "the President", "the Commission",
    "the Secretary of State", "the Congress", "the Senate Committee",
    "the United States", "the Comptroller General", "the Administrator",
]
_CA_VERBS = [
    "shall submit", "may authorize", "shall establish", "is directed to fund",
    "shall report on", "may terminate", "shall review", "is required to audit",
]
_CA_OBJECTS = [
    "employment programs", "appropriations for defense", "the annual budget",
    "veteran employment services", "public works construction",
    "interstate commerce rules", "the education grants", "customs enforcement",
]


def _ca_line(rng: random.Random) -> str:
    roll = rng.random()
    if roll < 0.18:
        return (
            f"SEC. {rng.randint(2, 99)}. As codified under "
            f"U.S.C. 2{rng.randint(0, 999):03d} and related titles"
        )
    if roll < 0.34:
        return (
            f"Public Law {rng.randint(80, 99)} amended by Public "
            f"Law {rng.randint(70, 99)} of the Congress"
        )
    if roll < 0.5:
        return (
            f"{rng.choice(_CA_SUBJECTS)} {rng.choice(_CA_VERBS)} "
            f"{rng.choice(_CA_OBJECTS)} in fiscal year 19{rng.randint(60, 89)}"
        )
    return (
        f"{rng.choice(_CA_SUBJECTS)} {rng.choice(_CA_VERBS)} "
        f"{rng.choice(_CA_OBJECTS)}"
    )


_LT_NAMES = ["Brinkmann", "Jonathan", "Kerouac", "Hitler", "Marlowe", "Woolf"]
_LT_PHRASES = [
    "wandered along the riverbank at dusk",
    "recalled the Third Reich with dread",
    "wrote in a spontaneous burst of prose",
    "read the manuscript aloud to the circle",
    "argued about the novel over coffee",
    "kept a journal of the long winter",
]


def _lt_line(rng: random.Random) -> str:
    roll = rng.random()
    if roll < 0.22:
        return (
            f"In 19{rng.randint(10, 69):02d}, {rng.randint(10, 99)} letters "
            f"from {rng.choice(_LT_NAMES)} survived the war"
        )
    if roll < 0.4:
        return (
            f"{rng.choice(_LT_NAMES)} and {rng.choice(_LT_NAMES)} "
            f"{rng.choice(_LT_PHRASES)}"
        )
    return f"{rng.choice(_LT_NAMES)} {rng.choice(_LT_PHRASES)}"


_DB_TOPICS = [
    "query optimization", "probabilistic databases", "lineage tracking",
    "uncertain data models", "confidence computation", "indexing methods",
]
_DB_CLAIMS = [
    "improves accuracy on skewed workloads",
    "bounds the confidence of each answer",
    "stores lineage for every derived tuple",
    "scales the database to many machines",
    "reduces accuracy loss during pruning",
    "materializes views over the database",
]


def _db_line(rng: random.Random) -> str:
    roll = rng.random()
    if roll < 0.2:
        return (
            f"Sec {rng.randint(1, 9)} shows the Trio system "
            f"{rng.choice(_DB_CLAIMS)}"
        )
    if roll < 0.36:
        return (
            f"As shown in Table {rng.randint(1, 9)}{rng.randint(0, 9)} "
            f"the approach {rng.choice(_DB_CLAIMS)}"
        )
    if roll < 0.5:
        return f"Trio evaluates {rng.choice(_DB_TOPICS)} with high accuracy"
    return f"Work on {rng.choice(_DB_TOPICS)} {rng.choice(_DB_CLAIMS)}"


def _build(
    name: str,
    line_maker,
    num_docs: int,
    lines_per_doc: int,
    seed: int,
    year_range: tuple[int, int] = (2005, 2012),
) -> Dataset:
    dataset = Dataset(name=name)
    for doc_id in range(num_docs):
        rng = random.Random(stable_seed(name, seed, doc_id))
        lines = tuple(line_maker(rng) for _ in range(lines_per_doc))
        dataset.documents.append(
            Document(
                doc_id=doc_id,
                name=f"{name}-doc-{doc_id:03d}",
                year=rng.randint(*year_range),
                loss=round(rng.uniform(1_000.0, 250_000.0), 2),
                lines=lines,
            )
        )
    return dataset


def make_ca(num_docs: int = 8, lines_per_doc: int = 25, seed: int = 0) -> Dataset:
    """Congress-Acts-style corpus (paper's CA dataset role)."""
    return _build("CA", _ca_line, num_docs, lines_per_doc, seed)


def make_lt(num_docs: int = 8, lines_per_doc: int = 22, seed: int = 0) -> Dataset:
    """English-literature-style corpus (paper's LT dataset role)."""
    return _build("LT", _lt_line, num_docs, lines_per_doc, seed)


def make_db(num_docs: int = 6, lines_per_doc: int = 18, seed: int = 0) -> Dataset:
    """Database-papers-style corpus (paper's DB dataset role)."""
    return _build("DB", _db_line, num_docs, lines_per_doc, seed)


def make_scale(num_lines: int, seed: int = 0) -> Dataset:
    """A Google-Books-style corpus of arbitrary size (Figure 10).

    Mixes the three line generators so the scalability sweep sees the same
    content distribution at every size.
    """
    makers = [_ca_line, _lt_line, _db_line]
    rng = random.Random(stable_seed("SCALE", seed))
    lines = tuple(makers[i % 3](rng) for i in range(num_lines))
    doc = Document(doc_id=0, name="scale-books", year=2010, loss=0.0, lines=lines)
    return Dataset(name="SCALE", documents=[doc])
