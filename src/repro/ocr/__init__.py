"""Simulated OCR: the OCRopus substitute plus synthetic corpora."""

from .corpus import Dataset, Document, make_ca, make_db, make_lt, make_scale
from .engine import SimulatedOcrEngine, stable_seed
from .ground_truth import true_match_count, true_matches
from .noise import CONFUSABLE, MERGES, SPLITS, NoiseModel
from .speech import HOMOPHONES, SimulatedSpeechEngine

__all__ = [
    "Dataset",
    "Document",
    "make_ca",
    "make_db",
    "make_lt",
    "make_scale",
    "SimulatedOcrEngine",
    "stable_seed",
    "true_match_count",
    "true_matches",
    "CONFUSABLE",
    "MERGES",
    "SPLITS",
    "NoiseModel",
    "HOMOPHONES",
    "SimulatedSpeechEngine",
]
