"""The glyph-confusion noise model behind the simulated OCR engine.

Real OCR uncertainty comes from visually confusable glyphs ('o'/'0',
'l'/'1'/'I'), from glyph merges ('r'+'n' read as 'm') and splits ('m' read
as 'r'+'n'), and from unreliable inter-word spacing (paper Sections 1-2).
This module encodes those confusion channels; :mod:`repro.ocr.engine`
turns them into SFA structure.

The model is deliberately *generative and seeded*: every call site passes
its own ``random.Random`` so corpora are exactly reproducible.
"""

from __future__ import annotations

import random
import string

__all__ = ["CONFUSABLE", "MERGES", "SPLITS", "NoiseModel"]

# Classic OCR confusion table: visually similar glyph alternatives.
CONFUSABLE: dict[str, str] = {
    "o": "0ce", "O": "0QD", "0": "Oo",
    "l": "1It", "I": "l1", "1": "lI", "i": "l!",
    "e": "co", "c": "eo", "a": "ou", "u": "vn", "v": "uy",
    "n": "uh", "h": "bn", "b": "h6", "6": "bG",
    "s": "5S", "S": "58", "5": "Ss",
    "B": "8E", "8": "B3", "3": "8E", "E": "B3",
    "g": "9q", "q": "g9", "9": "gq",
    "Z": "2z", "z": "2Z", "2": "Zz",
    "d": "cl", "t": "fl", "f": "t1",
    "r": "n", "m": "n", "w": "v",
    "G": "C6", "C": "GO", "D": "O0",
    "P": "FR", "F": "PE", "R": "PB",
    "T": "I7", "7": "T1", "4": "A9", "A": "4",
    ".": ",", ",": ".", " ": "_",
    "%": "Z", "$": "S", "&": "8",
}

# Adjacent glyph pairs commonly merged into one character by segmentation.
MERGES: dict[str, str] = {
    "rn": "m", "vv": "w", "cl": "d", "ri": "n",
    "ni": "m", "IJ": "U", "LI": "U", "l1": "H",
}

# Single glyphs commonly split into two by segmentation.
SPLITS: dict[str, str] = {
    "m": "rn", "w": "vv", "d": "cl", "n": "ri", "H": "l1", "U": "IJ",
}

_FALLBACK = string.ascii_lowercase + string.digits

#: Characters that receive a tiny smoothing weight at every position,
#: mimicking OCRopus transducers which "contain a weighted arc for every
#: ASCII character" (paper Section 2.2).  This is what makes FullSFA both
#: huge and recall-perfect-but-precision-poor: every line matches every
#: query with some small probability.
DEFAULT_TAIL = (
    string.ascii_lowercase + string.ascii_uppercase + string.digits + " ."
)


class NoiseModel:
    """Parameterized OCR noise channel.

    ``severity`` in [0, 1) scales how much probability mass leaves the true
    glyph; ``max_alternatives`` bounds the per-position branching factor
    (real OCRopus SFAs weight *every* ASCII character; we keep the support
    small so exact computations stay tractable, which preserves the shape
    of every experiment -- see DESIGN.md).  ``merge_prob`` / ``split_prob``
    / ``space_drop_prob`` control the structural branching events.
    """

    def __init__(
        self,
        severity: float = 0.25,
        max_alternatives: int = 4,
        merge_prob: float = 0.5,
        split_prob: float = 0.4,
        space_drop_prob: float = 0.35,
        hard_error_rate: float = 0.03,
        hard_error_rate_hard_glyphs: float = 0.14,
        tail_chars: str = DEFAULT_TAIL,
        tail_mass: float = 0.02,
    ) -> None:
        if not 0.0 <= severity < 1.0:
            raise ValueError(f"severity must be in [0, 1), got {severity}")
        if max_alternatives < 1:
            raise ValueError("max_alternatives must be at least 1")
        if not 0.0 <= tail_mass < 1.0:
            raise ValueError(f"tail_mass must be in [0, 1), got {tail_mass}")
        self.severity = severity
        self.max_alternatives = max_alternatives
        self.merge_prob = merge_prob
        self.split_prob = split_prob
        self.space_drop_prob = space_drop_prob
        self.hard_error_rate = hard_error_rate
        self.hard_error_rate_hard_glyphs = hard_error_rate_hard_glyphs
        self.tail_chars = tail_chars
        self.tail_mass = tail_mass

    # ------------------------------------------------------------------
    def alternatives(
        self, char: str, rng: random.Random, forbidden: set[str] | None = None
    ) -> list[tuple[str, float]]:
        """Single-character alternatives for one glyph, most likely first.

        The true character usually survives with the largest share, but a
        *hard error* demotes it below the best confusable with rate
        ``hard_error_rate`` (``hard_error_rate_hard_glyphs`` for digits and
        punctuation, which real OCR garbles far more often -- this is what
        drives the paper's observation that regex queries have much lower
        MAP recall than keyword queries).  The alternatives are distinct
        and never drawn from ``forbidden`` (the engine uses that to
        preserve the unique-paths property around merge/split branches).
        """
        forbidden = forbidden or set()
        noise = self.severity * (0.4 + 0.6 * rng.random())
        pool = [c for c in CONFUSABLE.get(char, "") if c != char and c not in forbidden]
        if not pool:
            pool = [c for c in _FALLBACK if c != char and c not in forbidden]
        count = min(len(pool), rng.randint(1, self.max_alternatives - 1))
        if count == 0 or noise <= 0.0:
            return self._with_tail([(char, 1.0)], forbidden)
        chosen = pool[:count]
        weights = [rng.random() + 0.1 for _ in chosen]
        total = sum(weights)
        result = [(char, 1.0 - noise)]
        result.extend(
            (alt, noise * w / total) for alt, w in zip(chosen, weights)
        )
        if rng.random() < self._hard_rate_for(char):
            # Hard error: the recognizer's best guess is wrong -- swap the
            # probabilities of the true glyph and its strongest confusable.
            (true_char, true_p), (alt_char, alt_p) = result[0], result[1]
            result[0] = (true_char, alt_p)
            result[1] = (alt_char, true_p)
        return self._with_tail(result, forbidden)

    def _with_tail(
        self, result: list[tuple[str, float]], forbidden: set[str]
    ) -> list[tuple[str, float]]:
        """Smooth the distribution over the tail alphabet.

        Every tail character not already present gets an equal share of
        ``tail_mass``; the main alternatives are scaled down to keep the
        total at 1.
        """
        if self.tail_mass <= 0.0 or not self.tail_chars:
            return result
        present = {c for c, _ in result} | forbidden
        extras = [c for c in self.tail_chars if c not in present]
        if not extras:
            return result
        share = self.tail_mass / len(extras)
        scale = 1.0 - self.tail_mass
        smoothed = [(c, p * scale) for c, p in result]
        smoothed.extend((c, share) for c in extras)
        return smoothed

    def _hard_rate_for(self, char: str) -> float:
        if char.isdigit() or char in ".,;:'\"!?-()":
            return self.hard_error_rate_hard_glyphs
        return self.hard_error_rate

    def merge_for(self, bigram: str) -> str | None:
        """The merged glyph for an adjacent pair, if one exists."""
        return MERGES.get(bigram)

    def split_for(self, char: str) -> str | None:
        """The two-glyph split for a character, if one exists."""
        return SPLITS.get(char)
