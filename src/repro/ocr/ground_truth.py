"""Ground truth: which lines *really* match a query.

The paper built manual ground truth for its scanned corpora (Section 5,
Table 6 reports the match counts).  With a simulated OCR channel we get
ground truth for free: a line truly matches a query iff its *clean*
ground-truth text satisfies the query DFA.  Recall/precision of each
storage approach are then measured against these sets.
"""

from __future__ import annotations

from ..automata.dfa import dfa_for_pattern
from ..query.like import REGEX_PREFIX, compile_like
from .corpus import Dataset

__all__ = ["true_matches", "true_match_count"]


def true_matches(dataset: Dataset, pattern: str) -> set[int]:
    """The set of global line ids whose ground-truth text matches.

    ``pattern`` may be a LIKE pattern (``%Ford%``), a ``REGEX:``-prefixed
    query-language pattern, or a bare pattern in the query language (which
    is matched anywhere in the line, as all the paper's queries are).
    """
    if pattern.startswith(REGEX_PREFIX) or "%" in pattern or "_" in pattern:
        dfa = compile_like(pattern)
    else:
        dfa = dfa_for_pattern(pattern, match_anywhere=True)
    return {
        line_id
        for line_id, _, _, text in dataset.lines()
        if dfa.accepts(text)
    }


def true_match_count(dataset: Dataset, pattern: str) -> int:
    """Size of the ground-truth answer set (the '# in Truth' of Table 6)."""
    return len(true_matches(dataset, pattern))
