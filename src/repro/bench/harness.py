"""The experiment harness: build representations once, sweep queries.

The paper's experiments hold a dataset fixed and sweep approaches and
parameters (m, k, NumAns).  Rebuilding a database per parameter point
would drown the measurement in construction time, so ``CorpusBench``
keeps an in-memory corpus with per-(m, k) representation caches;
construction can fan out over a process pool (the paper used Condor for
the same reason -- construction is embarrassingly parallel across SFAs).

Query runtimes reported by the harness cover *query evaluation only*
(the data is already stored), matching the paper's methodology.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from .. import counters
from ..core.approximate import prune_edges_to_k, staccato_approximate
from ..core.kmap import build_kmap
from ..ocr.corpus import Dataset
from ..ocr.engine import SimulatedOcrEngine
from ..query.answers import Answer, rank_answers
from ..query.eval_kernel import KernelBatch, KernelEvaluator
from ..query.eval_strings import match_probability_strings
from ..query.like import compile_like
from ..sfa.kernel import compile_kernel
from ..sfa.model import Sfa
from .metrics import QualityMetrics, evaluate_answers
from .workload import Query

__all__ = ["ExperimentResult", "CorpusBench", "MAX_CHUNKS"]

#: Sentinel for the paper's ``m = Max`` setting (one chunk per edge).
MAX_CHUNKS = "max"


@dataclass(frozen=True, slots=True)
class ExperimentResult:
    """One (query, approach, parameters) measurement."""

    query_id: str
    dataset: str
    approach: str
    m: int | str | None
    k: int | None
    num_ans: int | None
    metrics: QualityMetrics
    runtime_s: float

    @property
    def precision(self) -> float:
        """Shortcut to ``metrics.precision``."""
        return self.metrics.precision

    @property
    def recall(self) -> float:
        """Shortcut to ``metrics.recall``."""
        return self.metrics.recall

    @property
    def f1(self) -> float:
        """Shortcut to ``metrics.f1``."""
        return self.metrics.f1


def _staccato_task(args: tuple[Sfa, int | str, int]) -> Sfa:
    sfa, m, k = args
    if m == MAX_CHUNKS:
        return prune_edges_to_k(sfa, k)
    assert isinstance(m, int)
    return staccato_approximate(sfa, m, k)


class CorpusBench:
    """In-memory corpus with cached per-approach representations."""

    def __init__(
        self,
        dataset: Dataset,
        ocr: SimulatedOcrEngine | None = None,
        workers: int | None = None,
    ) -> None:
        self.dataset = dataset
        self.ocr = ocr or SimulatedOcrEngine()
        self.workers = workers
        self.lines = dataset.lines()
        self.truth_texts = [text for _, _, _, text in self.lines]
        self._sfas: list[Sfa] | None = None
        self._kmap_cache: dict[int, list[list[tuple[str, float]]]] = {}
        self._staccato_cache: dict[tuple[int | str, int], list[Sfa]] = {}
        # Compiled-kernel batches, one per representation point: lowering
        # is construction work (the engine does it at ingest), so it is
        # cached here and the query timer covers only the batched DP.
        self._batch_cache: dict[object, KernelBatch] = {}

    # ------------------------------------------------------------------
    def sfas(self) -> list[Sfa]:
        """All line SFAs (built lazily, once)."""
        if self._sfas is None:
            self._sfas = [
                self.ocr.recognize_line(text, line_seed=(doc_id, line_no))
                for _, doc_id, line_no, text in self.lines
            ]
        return self._sfas

    def kmap(self, k: int) -> list[list[tuple[str, float]]]:
        """Per-line k-MAP string lists."""
        cached = self._kmap_cache.get(k)
        if cached is None:
            cached = [list(build_kmap(sfa, k).strings) for sfa in self.sfas()]
            self._kmap_cache[k] = cached
        return cached

    def staccato(self, m: int | str, k: int) -> list[Sfa]:
        """Per-line Staccato chunk graphs for one (m, k) point."""
        key = (m, k)
        cached = self._staccato_cache.get(key)
        if cached is None:
            tasks = [(sfa, m, k) for sfa in self.sfas()]
            if self.workers and self.workers > 1:
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    cached = list(pool.map(_staccato_task, tasks, chunksize=8))
            else:
                cached = [_staccato_task(task) for task in tasks]
            self._staccato_cache[key] = cached
        return cached

    def kernel_batch(
        self, approach: str, m: int | str | None = None, k: int | None = None
    ) -> KernelBatch:
        """The compiled-kernel batch of one representation point."""
        key: object = "fullsfa" if approach == "fullsfa" else ("staccato", m, k)
        batch = self._batch_cache.get(key)
        if batch is None:
            graphs = (
                self.sfas() if approach == "fullsfa" else self.staccato(m, k)
            )
            batch = KernelBatch([compile_kernel(graph) for graph in graphs])
            self._batch_cache[key] = batch
        return batch

    # ------------------------------------------------------------------
    def truth(self, like: str) -> set[int]:
        """Ground-truth matching line ids for a LIKE/REGEX query."""
        query = compile_like(like)
        return {
            line_id
            for (line_id, _, _, _), text in zip(self.lines, self.truth_texts)
            if query.accepts(text)
        }

    def search(
        self,
        like: str,
        approach: str,
        m: int | str | None = None,
        k: int | None = None,
        num_ans: int | None = 100,
    ) -> tuple[list[Answer], float]:
        """Evaluate a query; returns (ranked answers, runtime seconds).

        The timer covers evaluation over the stored representation only.
        """
        query = compile_like(like)
        if approach == "map":
            strings = self.kmap(1)
        elif approach == "kmap":
            assert k is not None, "k-MAP needs k"
            strings = self.kmap(k)
        elif approach == "fullsfa":
            batch = self.kernel_batch("fullsfa")
        elif approach == "staccato":
            assert m is not None and k is not None, "Staccato needs m and k"
            batch = self.kernel_batch("staccato", m, k)
        else:
            raise ValueError(f"unknown approach {approach!r}")

        started = time.perf_counter()
        answers = []
        if approach in ("map", "kmap"):
            for (line_id, doc_id, line_no, _), line_strings in zip(
                self.lines, strings
            ):
                prob = match_probability_strings(line_strings, query)
                if prob > 0.0:
                    answers.append(Answer(line_id, doc_id, line_no, prob))
        else:
            results = KernelEvaluator(query).evaluate_batch(batch)
            cells = transitions = 0
            for (line_id, doc_id, line_no, _), result in zip(
                self.lines, results
            ):
                cells += result.dp_cells
                transitions += result.dp_transitions
                if result.probability > 0.0:
                    answers.append(
                        Answer(line_id, doc_id, line_no, result.probability)
                    )
            counters.add(dp_cells=cells, dp_transitions=transitions)
        ranked = rank_answers(answers, num_ans=num_ans)
        elapsed = time.perf_counter() - started
        return ranked, elapsed

    # ------------------------------------------------------------------
    def run(
        self,
        query: Query,
        approach: str,
        m: int | str | None = None,
        k: int | None = None,
        num_ans: int | None = 100,
    ) -> ExperimentResult:
        """Run one workload query and score it against ground truth."""
        answers, elapsed = self.search(
            query.like, approach, m=m, k=k, num_ans=num_ans
        )
        metrics = evaluate_answers(
            {a.line_id for a in answers}, self.truth(query.like)
        )
        return ExperimentResult(
            query_id=query.query_id,
            dataset=query.dataset,
            approach=approach,
            m=m,
            k=k,
            num_ans=num_ans,
            metrics=metrics,
            runtime_s=elapsed,
        )
