"""Concurrent load driver for the query service (serving throughput).

The other bench modules measure in-process query evaluation; this one
measures the *serving* path end to end -- JSON framing, HTTP, the
connection pool and the result cache -- by firing concurrent requests
at a running service from a thread pool, stdlib-only (``urllib``).

Typical use (a BENCH run or :mod:`tests.test_service`)::

    from repro.service import start_service
    from repro.bench.service_load import run_search_load

    running = start_service("/tmp/ca.db")
    result = run_search_load(
        running.base_url, ["%President%", "%Public Law%"],
        concurrency=8, repeats=25,
    )
    print(result.summary())

Because the service caches repeated queries, ``repeats > 1`` measures
the cache-hit fast path; pass distinct patterns (or ``repeats=1``) to
measure cold evaluation throughput.

The module also has a *sharded mode*: :func:`run_sharded_comparison`
seeds the same corpus into a single-database service and an N-shard
service, drives both with the same load, and reports the two
throughput/latency profiles side by side.  ``python -m
repro.bench.service_load`` runs it from the command line and writes the
report under ``benchmarks/reports/``.

A third *failover mode* (``--mode failover``,
:func:`run_failover_demo`) measures the availability story: it starts a
sharded service with ``--replicas`` read copies per shard, deletes one
replica file **while a load is running**, and reports the
before/during/after throughput -- the during window must finish with
zero client-visible errors (every request that hit the dead replica is
retried transparently on a sibling), and the after window runs with
the replica detached and a fresh copy re-attached via ``POST
/replicas``.

A fifth *backends mode* (``--mode backends``,
:func:`run_backend_comparison`) compares the two serving front ends on
the thread-pinning scenario the ROADMAP names: N slow filescans held
in flight while fast indexed queries keep arriving.  It reports each
backend's fast-query latency profile alone and under that load, and
writes the report under ``benchmarks/reports/``.  The other modes also
accept ``--backend`` to run their whole scenario on either front end.

A fourth *rebalance mode* (``--mode rebalance``,
:func:`run_rebalance_demo`) measures online shard maintenance: it
submits a ``rebalance`` background job (``POST /jobs``) that moves a
DocId range from one live shard to another **while a search load is
running**, then verifies the acceptance bar -- zero client-visible
errors in every window and merged ranked answers byte-identical before
vs after the move (compared on the placement-independent projection
``(doc_id, line_no, probability)``; line ids are shard-local and the
answers' shard tags legitimately change hands).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import tempfile
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from ..service.metrics import percentile
from . import history

__all__ = [
    "LoadResult",
    "ShardedComparison",
    "FailoverDemo",
    "RebalanceDemo",
    "BackendProfile",
    "BackendComparison",
    "post_json",
    "get_json",
    "run_search_load",
    "run_sharded_comparison",
    "run_failover_demo",
    "run_rebalance_demo",
    "run_backend_comparison",
    "main",
]

DEFAULT_TIMEOUT = 60.0

DEFAULT_PATTERNS = ["%Congress%", "%Law%", "%President%", "%employment%"]


def post_json(
    base_url: str, path: str, payload: dict, timeout: float = DEFAULT_TIMEOUT
) -> tuple[int, dict]:
    """POST a JSON body; returns ``(status, decoded body)`` even on 4xx."""
    request = urllib.request.Request(
        base_url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def get_json(
    base_url: str, path: str, timeout: float = DEFAULT_TIMEOUT
) -> tuple[int, dict]:
    """GET an endpoint; returns ``(status, decoded body)`` even on 4xx."""
    try:
        with urllib.request.urlopen(base_url + path, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@dataclass(frozen=True, slots=True)
class LoadResult:
    """One load run's aggregate measurements."""

    requests: int
    errors: int
    elapsed_s: float
    throughput_rps: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    #: Mean milliseconds per span name across the traced sample of this
    #: load (``trace_sample > 0``), or None when nothing was traced.
    span_breakdown: dict[str, float] | None = None

    def summary(self) -> str:
        text = (
            f"{self.requests} requests ({self.errors} errors) in "
            f"{self.elapsed_s:.2f}s = {self.throughput_rps:.1f} req/s; "
            f"latency p50={self.latency_p50_ms:.1f}ms "
            f"p95={self.latency_p95_ms:.1f}ms "
            f"p99={self.latency_p99_ms:.1f}ms"
        )
        if self.span_breakdown:
            spans = ", ".join(
                f"{name}={millis:.2f}ms"
                for name, millis in sorted(
                    self.span_breakdown.items(),
                    key=lambda item: item[1],
                    reverse=True,
                )
            )
            text += f"; span means: {spans}"
        return text


def _accumulate_span_times(tree: dict, acc: dict[str, float]) -> None:
    """Sum each span name's total milliseconds within one trace tree."""
    acc[tree["name"]] = acc.get(tree["name"], 0.0) + tree["duration_ms"]
    for child in tree.get("children", ()):
        _accumulate_span_times(child, acc)


def run_search_load(
    base_url: str,
    patterns: list[str],
    approach: str = "staccato",
    plan: str = "filescan",
    num_ans: int = 10,
    concurrency: int = 8,
    repeats: int = 5,
    timeout: float = DEFAULT_TIMEOUT,
    trace_sample: int = 0,
) -> LoadResult:
    """Fire ``len(patterns) * repeats`` concurrent ``/search`` requests.

    ``trace_sample=N`` adds ``"trace": true`` to every Nth request; the
    echoed span trees are aggregated into
    :attr:`LoadResult.span_breakdown` (mean milliseconds per span name
    across the traced sample), attributing where the serving time went
    without tracing -- or paying for -- the whole load.
    """
    bodies = [
        {
            "pattern": pattern,
            "approach": approach,
            "plan": plan,
            "num_ans": num_ans,
        }
        for _ in range(repeats)
        for pattern in patterns
    ]
    if trace_sample > 0:
        for index in range(0, len(bodies), trace_sample):
            bodies[index] = {**bodies[index], "trace": True}

    def one(body: dict) -> tuple[float, bool, dict | None]:
        started = time.perf_counter()
        tree = None
        try:
            status, reply = post_json(
                base_url, "/search", body, timeout=timeout
            )
            failed = status != 200
            if not failed and isinstance(reply, dict):
                tree = (reply.get("trace") or {}).get("spans")
        except (urllib.error.URLError, OSError, json.JSONDecodeError):
            failed = True
        return time.perf_counter() - started, failed, tree

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        outcomes = list(pool.map(one, bodies))
    elapsed = time.perf_counter() - started
    latencies = [seconds * 1000.0 for seconds, _, _ in outcomes]
    errors = sum(1 for _, failed, _ in outcomes if failed)
    trees = [tree for _, _, tree in outcomes if tree]
    breakdown: dict[str, float] | None = None
    if trees:
        totals: dict[str, float] = {}
        for tree in trees:
            _accumulate_span_times(tree, totals)
        breakdown = {
            name: total / len(trees) for name, total in totals.items()
        }
    return LoadResult(
        requests=len(bodies),
        errors=errors,
        elapsed_s=elapsed,
        throughput_rps=len(bodies) / elapsed if elapsed > 0 else 0.0,
        latency_p50_ms=percentile(latencies, 50),
        latency_p95_ms=percentile(latencies, 95),
        latency_p99_ms=percentile(latencies, 99),
        span_breakdown=breakdown,
    )


# ----------------------------------------------------------------------
# Sharded mode: the same corpus and load against one database vs N
# shards, so the fan-out/merge overhead and the scan parallelism are
# visible in one report.
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ShardedComparison:
    """Single-database vs sharded profiles of one identical load.

    ``workers`` is the optional third leg: the same N shards, but each
    owned by a worker *subprocess* behind the fan-out router
    (:mod:`repro.service.workers`), so shard scans escape the router's
    GIL instead of time-slicing inside one process.
    """

    num_shards: int
    corpus_lines: int
    single: LoadResult
    sharded: LoadResult
    workers: LoadResult | None = None

    def report(self) -> str:
        """A small fixed-width table, one row per serving topology."""
        headers = ["topology", "req/s", "p50 ms", "p95 ms", "p99 ms", "errors"]
        rows = [
            ["single-db", self.single], [f"{self.num_shards}-shard", self.sharded]
        ]
        if self.workers is not None:
            rows.append([f"{self.num_shards}-worker", self.workers])
        lines = ["  ".join(f"{h:>10s}" for h in headers)]
        for name, result in rows:
            lines.append(
                "  ".join(
                    f"{cell:>10}"
                    for cell in (
                        name,
                        f"{result.throughput_rps:.1f}",
                        f"{result.latency_p50_ms:.1f}",
                        f"{result.latency_p95_ms:.1f}",
                        f"{result.latency_p99_ms:.1f}",
                        str(result.errors),
                    )
                )
            )
        for name, result in rows:
            if result.span_breakdown:
                spans = ", ".join(
                    f"{span}={millis:.2f}ms"
                    for span, millis in sorted(
                        result.span_breakdown.items(),
                        key=lambda item: item[1],
                        reverse=True,
                    )
                )
                lines.append(f"{name} span means (traced sample): {spans}")
        return "\n".join(lines)


def _ingest_over_http(base_url: str, corpus) -> None:
    batch = {
        "dataset": corpus.name,
        "documents": [
            {
                "doc_id": doc.doc_id,
                "name": doc.name,
                "year": doc.year,
                "loss": doc.loss,
                "lines": list(doc.lines),
            }
            for doc in corpus.documents
        ],
        "ocr_seed": 0,
    }
    status, reply = post_json(base_url, "/ingest", batch)
    if status != 200:
        raise RuntimeError(f"seeding ingest failed: {reply}")


def run_sharded_comparison(
    num_shards: int = 2,
    docs: int = 4,
    lines: int = 3,
    patterns: Sequence[str] = tuple(DEFAULT_PATTERNS),
    approach: str = "staccato",
    concurrency: int = 8,
    repeats: int = 5,
    num_ans: int = 10,
    k: int = 4,
    m: int = 6,
    range_width: int = 1,
    backend: str = "thread",
    trace_sample: int = 0,
    worker_procs: bool = False,
) -> ShardedComparison:
    """Seed and drive a single-db and an N-shard service identically.

    ``range_width=1`` stripes the corpus's consecutive DocIds across
    every shard, so the sharded topology really measures partitioned
    data (the library default of 64 would park a small corpus entirely
    on shard 0).  ``trace_sample=N`` traces every Nth request and adds
    the mean per-span breakdown to the report.  ``worker_procs=True``
    adds a third leg: the same N shards each promoted to a worker
    subprocess behind the fan-out router.
    """
    from ..ocr.corpus import make_ca
    from ..service import (
        start_service,
        start_sharded_service,
        start_worker_service,
    )

    corpus = make_ca(num_docs=docs, lines_per_doc=lines, seed=1)
    load_kwargs = dict(
        approach=approach,
        num_ans=num_ans,
        concurrency=concurrency,
        repeats=repeats,
        trace_sample=trace_sample,
    )
    with tempfile.TemporaryDirectory() as tmp:
        single = start_service(
            f"{tmp}/single.db", k=k, m=m, pool_size=4, backend=backend
        )
        try:
            _ingest_over_http(single.base_url, corpus)
            single_result = run_search_load(
                single.base_url, list(patterns), **load_kwargs
            )
        finally:
            single.stop()
        sharded = start_sharded_service(
            f"{tmp}/shards",
            num_shards,
            k=k,
            m=m,
            pool_size=2,
            range_width=range_width,
            backend=backend,
        )
        try:
            _ingest_over_http(sharded.base_url, corpus)
            sharded_result = run_search_load(
                sharded.base_url, list(patterns), **load_kwargs
            )
        finally:
            sharded.stop()
        workers_result = None
        if worker_procs:
            workers = start_worker_service(
                f"{tmp}/workers",
                num_shards,
                k=k,
                m=m,
                pool_size=2,
                range_width=range_width,
                backend=backend,
            )
            try:
                _ingest_over_http(workers.base_url, corpus)
                workers_result = run_search_load(
                    workers.base_url, list(patterns), **load_kwargs
                )
            finally:
                workers.stop()
    return ShardedComparison(
        num_shards=num_shards,
        corpus_lines=corpus.num_lines,
        single=single_result,
        sharded=sharded_result,
        workers=workers_result,
    )


# ----------------------------------------------------------------------
# Failover mode: kill one replica file mid-load and measure the three
# windows (healthy, degraded, re-attached).
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class FailoverDemo:
    """One kill-a-replica run: the three load windows plus what died."""

    num_shards: int
    replicas: int
    corpus_lines: int
    killed_path: str
    before: LoadResult
    during: LoadResult
    after: LoadResult
    healthy_during: dict[str, dict[str, int]]
    healthy_after: dict[str, dict[str, int]]

    @property
    def zero_downtime(self) -> bool:
        """No client-visible error in any window (the acceptance bar)."""
        return (
            self.before.errors == 0
            and self.during.errors == 0
            and self.after.errors == 0
        )

    def report(self) -> str:
        headers = ["phase", "req/s", "p50 ms", "p95 ms", "p99 ms", "errors"]
        rows = [
            ("before", self.before),
            ("during", self.during),
            ("after", self.after),
        ]
        lines = ["  ".join(f"{h:>10s}" for h in headers)]
        for name, result in rows:
            lines.append(
                "  ".join(
                    f"{cell:>10}"
                    for cell in (
                        name,
                        f"{result.throughput_rps:.1f}",
                        f"{result.latency_p50_ms:.1f}",
                        f"{result.latency_p95_ms:.1f}",
                        f"{result.latency_p99_ms:.1f}",
                        str(result.errors),
                    )
                )
            )
        lines.append("")
        lines.append(
            f"killed mid-run (during): {pathlib.Path(self.killed_path).name}"
        )
        lines.append(
            "healthy replicas during failure: "
            + ", ".join(
                f"shard {s}: {h['healthy']}/{h['attached']}"
                for s, h in sorted(self.healthy_during.items())
            )
        )
        lines.append(
            "after detach + re-attach: "
            + ", ".join(
                f"shard {s}: {h['healthy']}/{h['attached']}"
                for s, h in sorted(self.healthy_after.items())
            )
        )
        lines.append(
            f"zero client-visible errors across all windows: "
            f"{self.zero_downtime}"
        )
        return "\n".join(lines)


def run_failover_demo(
    num_shards: int = 2,
    replicas: int = 2,
    docs: int = 4,
    lines: int = 3,
    patterns: Sequence[str] = tuple(DEFAULT_PATTERNS),
    approach: str = "staccato",
    concurrency: int = 8,
    repeats: int = 5,
    num_ans: int = 10,
    k: int = 4,
    m: int = 6,
    range_width: int = 1,
    kill_shard: int = 0,
    kill_after_s: float = 0.2,
    cooldown_s: float = 0.25,
    backend: str = "thread",
) -> FailoverDemo:
    """Delete one replica file under load; measure the three windows.

    The service runs with the result cache disabled so every request
    really reads a replica -- otherwise the during-window would be
    served from memory and never exercise the failover path.  The kill
    happens from a timer thread ``kill_after_s`` into the during
    window; afterwards the dead replica is detached and a fresh copy
    attached over ``POST /replicas``, so the after window runs at full
    strength again.
    """
    import os
    import threading

    from ..ocr.corpus import make_ca
    from ..service import start_sharded_service

    corpus = make_ca(num_docs=docs, lines_per_doc=lines, seed=1)
    load_kwargs = dict(
        approach=approach,
        num_ans=num_ans,
        concurrency=concurrency,
        repeats=repeats,
    )
    with tempfile.TemporaryDirectory() as tmp:
        running = start_sharded_service(
            f"{tmp}/shards",
            num_shards,
            k=k,
            m=m,
            pool_size=2,
            cache_size=0,
            range_width=range_width,
            replicas=replicas,
            replica_cooldown_s=cooldown_s,
            backend=backend,
        )
        try:
            _ingest_over_http(running.base_url, corpus)
            victim = running.service.pool.shard(kill_shard).replicas.replicas()[-1]
            before = run_search_load(
                running.base_url, list(patterns), **load_kwargs
            )

            def kill() -> None:
                for path in (
                    victim.path,
                    f"{victim.path}-wal",
                    f"{victim.path}-shm",
                ):
                    if os.path.exists(path):
                        os.remove(path)

            timer = threading.Timer(kill_after_s, kill)
            timer.start()
            try:
                during = run_search_load(
                    running.base_url, list(patterns), **load_kwargs
                )
            finally:
                timer.cancel()
                kill()  # ensure the file is gone even on a fast window
            # Let the read rotation observe the missing file (the cache
            # is off, so each request really touches a replica): after
            # one pass over every replica the breaker must be open.
            for _ in range(2 * replicas * num_shards):
                post_json(
                    running.base_url,
                    "/search",
                    {"pattern": list(patterns)[0], "num_ans": 1},
                )
            _, health = get_json(running.base_url, "/health")
            healthy_during = health["replicas"]
            status, _ = post_json(
                running.base_url,
                "/replicas",
                {
                    "action": "detach",
                    "shard": kill_shard,
                    "replica": victim.replica_index,
                },
            )
            if status != 200:
                raise RuntimeError(f"detach failed with HTTP {status}")
            status, _ = post_json(
                running.base_url, "/replicas", {"action": "attach", "shard": kill_shard}
            )
            if status != 200:
                raise RuntimeError(f"attach failed with HTTP {status}")
            after = run_search_load(
                running.base_url, list(patterns), **load_kwargs
            )
            _, health = get_json(running.base_url, "/health")
            healthy_after = health["replicas"]
        finally:
            running.stop()
    return FailoverDemo(
        num_shards=num_shards,
        replicas=replicas,
        corpus_lines=corpus.num_lines,
        killed_path=victim.path,
        before=before,
        during=during,
        after=after,
        healthy_during=healthy_during,
        healthy_after=healthy_after,
    )


# ----------------------------------------------------------------------
# Rebalance mode: move a DocId range between two live shards while a
# search load runs; answers must come back identical and error-free.
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class RebalanceDemo:
    """One rebalance-under-load run and its acceptance evidence."""

    num_shards: int
    corpus_lines: int
    doc_lo: int
    doc_hi: int
    source: int
    target: int
    moved_docs: int
    moved_lines: int
    job_state: str
    before: LoadResult
    during: LoadResult
    after: LoadResult
    answers_identical: bool
    lines_before: dict[str, int]
    lines_after: dict[str, int]

    @property
    def zero_downtime(self) -> bool:
        """No client-visible error in any window (the acceptance bar)."""
        return (
            self.before.errors == 0
            and self.during.errors == 0
            and self.after.errors == 0
        )

    @property
    def passed(self) -> bool:
        return (
            self.zero_downtime
            and self.answers_identical
            and self.job_state == "succeeded"
        )

    def report(self) -> str:
        headers = ["phase", "req/s", "p50 ms", "p95 ms", "p99 ms", "errors"]
        rows = [
            ("before", self.before),
            ("during", self.during),
            ("after", self.after),
        ]
        lines = ["  ".join(f"{h:>10s}" for h in headers)]
        for name, result in rows:
            lines.append(
                "  ".join(
                    f"{cell:>10}"
                    for cell in (
                        name,
                        f"{result.throughput_rps:.1f}",
                        f"{result.latency_p50_ms:.1f}",
                        f"{result.latency_p95_ms:.1f}",
                        f"{result.latency_p99_ms:.1f}",
                        str(result.errors),
                    )
                )
            )
        lines.append("")
        lines.append(
            f"rebalance job ({self.job_state}): moved DocIds "
            f"[{self.doc_lo}, {self.doc_hi}] = {self.moved_docs} docs / "
            f"{self.moved_lines} lines, shard {self.source} -> "
            f"shard {self.target}, submitted mid-load (during window)"
        )
        lines.append(
            "shard line counts before the move: "
            + ", ".join(
                f"shard {s}: {n}" for s, n in sorted(self.lines_before.items())
            )
        )
        lines.append(
            "shard line counts after the move:  "
            + ", ".join(
                f"shard {s}: {n}" for s, n in sorted(self.lines_after.items())
            )
        )
        lines.append(
            "merged ranked answers byte-identical before/after the move "
            f"(doc_id, line_no, probability): {self.answers_identical}"
        )
        lines.append(
            f"zero client-visible errors across all windows: "
            f"{self.zero_downtime}"
        )
        return "\n".join(lines)


def _ranked_projection(
    base_url: str, patterns: Sequence[str], num_ans: int
) -> str:
    """The placement-independent bytes of every pattern's ranked answers."""
    captured = []
    for pattern in patterns:
        status, reply = post_json(
            base_url, "/search", {"pattern": pattern, "num_ans": num_ans}
        )
        if status != 200:
            raise RuntimeError(f"baseline search failed: {reply}")
        captured.append(
            [
                [a["doc_id"], a["line_no"], round(a["probability"], 12)]
                for a in reply["answers"]
            ]
        )
    return json.dumps(captured)


def run_rebalance_demo(
    num_shards: int = 2,
    docs: int = 6,
    lines: int = 3,
    patterns: Sequence[str] = tuple(DEFAULT_PATTERNS),
    approach: str = "staccato",
    concurrency: int = 8,
    repeats: int = 8,
    num_ans: int = 50,
    k: int = 4,
    m: int = 6,
    source: int = 0,
    target: int = 1,
    submit_after_s: float = 0.05,
    poll_timeout_s: float = 120.0,
    backend: str = "thread",
) -> RebalanceDemo:
    """Move shard ``source``'s whole DocId stripe to ``target`` mid-load.

    ``range_width = docs // num_shards`` parks DocIds ``[0,
    range_width - 1]`` on shard 0, so moving that range empties the
    source's stripe into the target.  The result cache is disabled so
    every during-window request really fans out and exercises the
    copy/swap/delete phases (de-duplicating merge, routing-table
    publish) rather than serving from memory.
    """
    import threading

    from ..ocr.corpus import make_ca
    from ..service import start_sharded_service

    corpus = make_ca(num_docs=docs, lines_per_doc=lines, seed=1)
    range_width = max(1, docs // num_shards)
    doc_lo, doc_hi = 0, range_width - 1
    load_kwargs = dict(
        approach=approach,
        num_ans=num_ans,
        concurrency=concurrency,
        repeats=repeats,
    )
    with tempfile.TemporaryDirectory() as tmp:
        running = start_sharded_service(
            f"{tmp}/shards",
            num_shards,
            k=k,
            m=m,
            pool_size=2,
            cache_size=0,
            range_width=range_width,
            backend=backend,
        )
        base = running.base_url
        try:
            _ingest_over_http(base, corpus)
            _, health = get_json(base, "/health")
            lines_before = dict(health["shard_lines"])
            baseline = _ranked_projection(base, patterns, num_ans)
            before = run_search_load(base, list(patterns), **load_kwargs)

            job_row: dict = {}

            def submit_and_wait() -> None:
                # "wait": true blocks server-side until the job is
                # terminal, so no client-side poll loop is needed.
                status, row = post_json(
                    base,
                    "/jobs",
                    {
                        "type": "rebalance",
                        "params": {
                            "doc_lo": doc_lo,
                            "doc_hi": doc_hi,
                            "source": source,
                            "target": target,
                        },
                        "wait": True,
                    },
                    timeout=poll_timeout_s,
                )
                if status != 200:
                    job_row.update(state=f"submit failed: {row}")
                    return
                job_row.update(row)

            timer = threading.Timer(submit_after_s, submit_and_wait)
            timer.start()
            during = run_search_load(base, list(patterns), **load_kwargs)
            timer.join()  # Timer.join waits for the callback to finish
            after = run_search_load(base, list(patterns), **load_kwargs)
            final = _ranked_projection(base, patterns, num_ans)
            _, health = get_json(base, "/health")
            lines_after = dict(health["shard_lines"])
        finally:
            running.stop()
    result = job_row.get("result") or {}
    return RebalanceDemo(
        num_shards=num_shards,
        corpus_lines=corpus.num_lines,
        doc_lo=doc_lo,
        doc_hi=doc_hi,
        source=source,
        target=target,
        moved_docs=result.get("moved_docs", 0),
        moved_lines=result.get("moved_lines", 0),
        job_state=str(job_row.get("state", "never submitted")),
        before=before,
        during=during,
        after=after,
        answers_identical=baseline == final,
        lines_before=lines_before,
        lines_after=lines_after,
    )


# ----------------------------------------------------------------------
# Backends mode: thread-per-request vs asyncio+executor on the ROADMAP's
# thread-pinning scenario -- fast indexed queries arriving while N slow
# filescans are held in flight.
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class BackendProfile:
    """One front end's fast-query latency, alone and under scan load."""

    backend: str
    fast_alone: LoadResult
    fast_under_scans: LoadResult
    slow_inflight: int
    #: Scans still unfinished the moment the fast window completed --
    #: the proof the two loads really overlapped (0 means the scans
    #: finished too early and the 'scans' row measured nothing).
    slow_still_inflight: int
    slow_window_s: float


@dataclass(frozen=True, slots=True)
class BackendComparison:
    """Threaded vs asyncio profiles of one identical mixed workload."""

    corpus_lines: int
    fast_pattern: str
    profiles: tuple[BackendProfile, ...]

    @property
    def clean(self) -> bool:
        return all(
            p.fast_alone.errors == 0 and p.fast_under_scans.errors == 0
            for p in self.profiles
        )

    def report(self) -> str:
        headers = [
            "backend", "window", "req/s", "p50 ms", "p95 ms", "p99 ms",
            "errors",
        ]
        lines = ["  ".join(f"{h:>10s}" for h in headers)]
        for profile in self.profiles:
            for window, result in (
                ("alone", profile.fast_alone),
                ("scans", profile.fast_under_scans),
            ):
                lines.append(
                    "  ".join(
                        f"{cell:>10}"
                        for cell in (
                            profile.backend,
                            window,
                            f"{result.throughput_rps:.1f}",
                            f"{result.latency_p50_ms:.1f}",
                            f"{result.latency_p95_ms:.1f}",
                            f"{result.latency_p99_ms:.1f}",
                            str(result.errors),
                        )
                    )
                )
        lines.append("")
        for profile in self.profiles:
            lines.append(
                f"{profile.backend}: {profile.slow_inflight} concurrent "
                f"filescans held the during-window open for "
                f"{profile.slow_window_s:.2f}s "
                f"({profile.slow_still_inflight} still in flight when the "
                "fast window finished)"
            )
        lines.append(
            "headline: 'scans' rows are fast indexed /search latency "
            "while the filescans were in flight"
        )
        return "\n".join(lines)


def run_backend_comparison(
    docs: int = 6,
    lines: int = 4,
    slow_inflight: int = 6,
    fast_requests: int = 40,
    fast_concurrency: int = 4,
    k: int = 4,
    m: int = 6,
    backends: Sequence[str] = ("thread", "asyncio"),
) -> BackendComparison:
    """Measure fast-query latency while slow filescans are in flight.

    Per backend: seed one corpus, build the dictionary index, then (a)
    run ``fast_requests`` indexed ``/search`` queries alone, and (b)
    hold ``slow_inflight`` distinct ``fullsfa`` filescans open and run
    the same fast load through the middle of them.  The result cache is
    disabled so every fast query is a real index probe and every slow
    query a real scan; the reader pool is sized past the total
    concurrency so the difference measured is the front end, not pool
    starvation.
    """
    from ..ocr.corpus import make_ca
    from ..service import start_service

    corpus = make_ca(num_docs=docs, lines_per_doc=lines, seed=1)
    fast_pattern = r"REGEX:Public Law (8|9)\d"
    profiles = []
    with tempfile.TemporaryDirectory() as tmp:
        for backend in backends:
            running = start_service(
                f"{tmp}/{backend}.db",
                k=k,
                m=m,
                pool_size=slow_inflight + fast_concurrency + 2,
                cache_size=0,
                backend=backend,
                max_inflight=slow_inflight + fast_concurrency + 2,
            )
            try:
                _ingest_over_http(running.base_url, corpus)
                status, reply = post_json(
                    running.base_url,
                    "/index",
                    {
                        "terms": ["public", "law", "congress", "president"],
                        "wait": True,
                    },
                )
                if status != 200:
                    raise RuntimeError(f"index build failed: {reply}")

                def fast_load() -> LoadResult:
                    return run_search_load(
                        running.base_url,
                        [fast_pattern],
                        plan="indexed",
                        num_ans=10,
                        concurrency=fast_concurrency,
                        repeats=fast_requests,
                    )

                alone = fast_load()
                # Hold the slow filescans open: one thread per scan,
                # each a distinct pattern (nothing cacheable), fullsfa
                # being the most expensive representation to evaluate.
                slow_bodies = [
                    {
                        "pattern": f"%unmatchable token {i}%",
                        "approach": "fullsfa",
                        "plan": "filescan",
                        "num_ans": 10,
                    }
                    for i in range(slow_inflight)
                ]
                slow_started = time.perf_counter()
                with ThreadPoolExecutor(max_workers=slow_inflight) as scans:
                    futures = [
                        scans.submit(
                            post_json, running.base_url, "/search", body
                        )
                        for body in slow_bodies
                    ]
                    time.sleep(0.05)  # let the scans reach the service
                    under = fast_load()
                    still_inflight = sum(
                        1 for future in futures if not future.done()
                    )
                    for future in futures:
                        status, reply = future.result()
                        if status != 200:
                            raise RuntimeError(f"filescan failed: {reply}")
                slow_window = time.perf_counter() - slow_started
            finally:
                running.stop()
            profiles.append(
                BackendProfile(
                    backend=backend,
                    fast_alone=alone,
                    fast_under_scans=under,
                    slow_inflight=slow_inflight,
                    slow_still_inflight=still_inflight,
                    slow_window_s=slow_window,
                )
            )
    return BackendComparison(
        corpus_lines=corpus.num_lines,
        fast_pattern=fast_pattern,
        profiles=tuple(profiles),
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI for the sharded-throughput and replica-failover reports."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.service_load",
        description="single-db vs sharded throughput, or replica failover",
    )
    parser.add_argument(
        "--mode",
        choices=("compare", "failover", "rebalance", "backends"),
        default="compare",
        help="compare: single-db vs shards; failover: kill a replica "
        "mid-load; rebalance: move a DocId range between live shards "
        "mid-load; backends: thread vs asyncio front end under "
        "concurrent filescan load",
    )
    parser.add_argument(
        "--backend",
        choices=("thread", "asyncio"),
        default="thread",
        help="serving front end for compare/failover/rebalance modes",
    )
    parser.add_argument("--slow-inflight", type=int, default=6,
                        help="backends mode: filescans held in flight")
    parser.add_argument("--fast-requests", type=int, default=40,
                        help="backends mode: fast indexed queries per window")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--replicas", type=int, default=2,
                        help="read replicas per shard (failover mode)")
    parser.add_argument("--docs", type=int, default=4)
    parser.add_argument("--lines", type=int, default=3)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--m", type=int, default=6)
    parser.add_argument(
        "--trace-sample", type=int, default=0, metavar="N",
        help="compare mode: send 'trace': true on every Nth request and "
             "report the mean per-span time breakdown (0 disables)",
    )
    parser.add_argument(
        "--worker-procs",
        action="store_true",
        help="compare mode: add a third leg with each shard in its own "
             "worker subprocess behind the fan-out router",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="report path ('-' prints only; default depends on --mode)",
    )
    parser.add_argument(
        "--history-dir",
        default=history.DEFAULT_HISTORY_DIR,
        help="append a machine-readable BENCH_<mode>.json entry here "
             "('-' disables; see scripts/bench_check.py)",
    )
    args = parser.parse_args(argv)
    bench_metrics: dict[str, dict] = {}
    if args.mode == "backends":
        comparison = run_backend_comparison(
            docs=args.docs,
            lines=args.lines,
            slow_inflight=args.slow_inflight,
            fast_requests=args.fast_requests,
            k=args.k,
            m=args.m,
        )
        title = (
            f"serving backends: {comparison.corpus_lines}-line corpus, "
            f"fast indexed '{comparison.fast_pattern}' alone vs while "
            f"{args.slow_inflight} fullsfa filescans are in flight"
        )
        text = f"{title}\n{comparison.report()}\n"
        out_default = "benchmarks/reports/service_backend_asyncio.txt"
        failed = not comparison.clean
        for profile in comparison.profiles:
            bench_metrics.update(
                history.load_result_metrics(
                    profile.fast_alone, f"{profile.backend}_alone_"
                )
            )
            bench_metrics.update(
                history.load_result_metrics(
                    profile.fast_under_scans, f"{profile.backend}_scans_"
                )
            )
        topology = {
            "docs": args.docs,
            "lines": args.lines,
            "slow_inflight": args.slow_inflight,
            "fast_requests": args.fast_requests,
        }
    elif args.mode == "rebalance":
        demo = run_rebalance_demo(
            num_shards=args.shards,
            docs=args.docs,
            lines=args.lines,
            concurrency=args.concurrency,
            repeats=args.repeats,
            k=args.k,
            m=args.m,
            backend=args.backend,
        )
        title = (
            f"online rebalance: {demo.corpus_lines}-line corpus, "
            f"{demo.num_shards} shards, DocIds [{demo.doc_lo}, "
            f"{demo.doc_hi}] moved shard {demo.source} -> {demo.target} "
            "mid-load"
        )
        text = f"{title}\n{demo.report()}\n"
        out_default = "benchmarks/reports/service_rebalance_under_load.txt"
        failed = not demo.passed
        for window, result in (
            ("before", demo.before),
            ("during", demo.during),
            ("after", demo.after),
        ):
            bench_metrics.update(
                history.load_result_metrics(result, f"{window}_")
            )
        topology = {
            "shards": args.shards,
            "backend": args.backend,
            "docs": args.docs,
            "lines": args.lines,
        }
    elif args.mode == "failover":
        demo = run_failover_demo(
            num_shards=args.shards,
            replicas=args.replicas,
            docs=args.docs,
            lines=args.lines,
            concurrency=args.concurrency,
            repeats=args.repeats,
            k=args.k,
            m=args.m,
            backend=args.backend,
        )
        title = (
            f"replica failover: {demo.corpus_lines}-line corpus, "
            f"{demo.num_shards} shards x {demo.replicas} replicas, "
            "one replica file deleted mid-load"
        )
        text = f"{title}\n{demo.report()}\n"
        out_default = "benchmarks/reports/service_failover_kill_replica.txt"
        failed = not demo.zero_downtime
        for window, result in (
            ("before", demo.before),
            ("during", demo.during),
            ("after", demo.after),
        ):
            bench_metrics.update(
                history.load_result_metrics(result, f"{window}_")
            )
        topology = {
            "shards": args.shards,
            "replicas": args.replicas,
            "backend": args.backend,
            "docs": args.docs,
            "lines": args.lines,
        }
    else:
        comparison = run_sharded_comparison(
            num_shards=args.shards,
            docs=args.docs,
            lines=args.lines,
            concurrency=args.concurrency,
            repeats=args.repeats,
            k=args.k,
            m=args.m,
            backend=args.backend,
            trace_sample=args.trace_sample,
            worker_procs=args.worker_procs,
        )
        title = (
            f"service throughput: {comparison.corpus_lines}-line corpus, "
            f"single-db vs {comparison.num_shards} shards"
        )
        if comparison.workers is not None:
            title += " (in-process and subprocess workers)"
        text = f"{title}\n{comparison.report()}\n"
        out_default = "benchmarks/reports/service_throughput.txt"
        failed = bool(
            comparison.single.errors
            or comparison.sharded.errors
            or (comparison.workers is not None and comparison.workers.errors)
        )
        legs = [("single", comparison.single), ("sharded", comparison.sharded)]
        if comparison.workers is not None:
            legs.append(("workers", comparison.workers))
        for leg, result in legs:
            bench_metrics.update(
                history.load_result_metrics(result, f"{leg}_")
            )
        topology = {
            "shards": args.shards,
            "backend": args.backend,
            "docs": args.docs,
            "lines": args.lines,
            "worker_procs": args.worker_procs,
        }
    print(text, end="")
    out_arg = args.out if args.out is not None else out_default
    if out_arg != "-":
        out = pathlib.Path(out_arg)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text)
        print(f"report written to {out}")
    if args.history_dir != "-":
        path = history.record_run(
            f"service_{args.mode}",
            bench_metrics,
            topology=topology,
            history_dir=args.history_dir,
        )
        print(f"bench history appended to {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
