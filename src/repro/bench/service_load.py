"""Concurrent load driver for the query service (serving throughput).

The other bench modules measure in-process query evaluation; this one
measures the *serving* path end to end -- JSON framing, HTTP, the
connection pool and the result cache -- by firing concurrent requests
at a running service from a thread pool, stdlib-only (``urllib``).

Typical use (a BENCH run or :mod:`tests.test_service`)::

    from repro.service import start_service
    from repro.bench.service_load import run_search_load

    running = start_service("/tmp/ca.db")
    result = run_search_load(
        running.base_url, ["%President%", "%Public Law%"],
        concurrency=8, repeats=25,
    )
    print(result.summary())

Because the service caches repeated queries, ``repeats > 1`` measures
the cache-hit fast path; pass distinct patterns (or ``repeats=1``) to
measure cold evaluation throughput.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..service.metrics import percentile

__all__ = ["LoadResult", "post_json", "get_json", "run_search_load"]

DEFAULT_TIMEOUT = 60.0


def post_json(
    base_url: str, path: str, payload: dict, timeout: float = DEFAULT_TIMEOUT
) -> tuple[int, dict]:
    """POST a JSON body; returns ``(status, decoded body)`` even on 4xx."""
    request = urllib.request.Request(
        base_url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def get_json(
    base_url: str, path: str, timeout: float = DEFAULT_TIMEOUT
) -> tuple[int, dict]:
    """GET an endpoint; returns ``(status, decoded body)`` even on 4xx."""
    try:
        with urllib.request.urlopen(base_url + path, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@dataclass(frozen=True, slots=True)
class LoadResult:
    """One load run's aggregate measurements."""

    requests: int
    errors: int
    elapsed_s: float
    throughput_rps: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float

    def summary(self) -> str:
        return (
            f"{self.requests} requests ({self.errors} errors) in "
            f"{self.elapsed_s:.2f}s = {self.throughput_rps:.1f} req/s; "
            f"latency p50={self.latency_p50_ms:.1f}ms "
            f"p95={self.latency_p95_ms:.1f}ms "
            f"p99={self.latency_p99_ms:.1f}ms"
        )


def run_search_load(
    base_url: str,
    patterns: list[str],
    approach: str = "staccato",
    plan: str = "filescan",
    num_ans: int = 10,
    concurrency: int = 8,
    repeats: int = 5,
    timeout: float = DEFAULT_TIMEOUT,
) -> LoadResult:
    """Fire ``len(patterns) * repeats`` concurrent ``/search`` requests."""
    bodies = [
        {
            "pattern": pattern,
            "approach": approach,
            "plan": plan,
            "num_ans": num_ans,
        }
        for _ in range(repeats)
        for pattern in patterns
    ]

    def one(body: dict) -> tuple[float, bool]:
        started = time.perf_counter()
        try:
            status, _ = post_json(base_url, "/search", body, timeout=timeout)
            failed = status != 200
        except (urllib.error.URLError, OSError, json.JSONDecodeError):
            failed = True
        return time.perf_counter() - started, failed

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        outcomes = list(pool.map(one, bodies))
    elapsed = time.perf_counter() - started
    latencies = [seconds * 1000.0 for seconds, _ in outcomes]
    errors = sum(1 for _, failed in outcomes if failed)
    return LoadResult(
        requests=len(bodies),
        errors=errors,
        elapsed_s=elapsed,
        throughput_rps=len(bodies) / elapsed if elapsed > 0 else 0.0,
        latency_p50_ms=percentile(latencies, 50),
        latency_p95_ms=percentile(latencies, 95),
        latency_p99_ms=percentile(latencies, 99),
    )
