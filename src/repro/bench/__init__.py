"""Experiment harness: metrics, workload, runners and reporting.

Also home to the serving-throughput driver
(:mod:`repro.bench.service_load`), which fires concurrent HTTP requests
at a running :mod:`repro.service` instance.
"""

from .harness import MAX_CHUNKS, CorpusBench, ExperimentResult
from .metrics import QualityMetrics, evaluate_answers
from .report import format_series, format_table, print_series, print_table
from .service_load import LoadResult, run_search_load
from .workload import Query, queries_for, query_by_id, standard_workload

__all__ = [
    "MAX_CHUNKS",
    "CorpusBench",
    "ExperimentResult",
    "LoadResult",
    "run_search_load",
    "QualityMetrics",
    "evaluate_answers",
    "format_series",
    "format_table",
    "print_series",
    "print_table",
    "Query",
    "queries_for",
    "query_by_id",
    "standard_workload",
]
