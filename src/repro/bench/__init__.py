"""Experiment harness: metrics, workload, runners and reporting."""

from .harness import MAX_CHUNKS, CorpusBench, ExperimentResult
from .metrics import QualityMetrics, evaluate_answers
from .report import format_series, format_table, print_series, print_table
from .workload import Query, queries_for, query_by_id, standard_workload

__all__ = [
    "MAX_CHUNKS",
    "CorpusBench",
    "ExperimentResult",
    "QualityMetrics",
    "evaluate_answers",
    "format_series",
    "format_table",
    "print_series",
    "print_table",
    "Query",
    "queries_for",
    "query_by_id",
    "standard_workload",
]
