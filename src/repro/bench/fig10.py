"""Figure-10 scaling bench as a CLI with machine-readable history.

``benchmarks/test_fig10_scalability.py`` is the full (slow) pytest
reproduction of the paper's filescan-vs-dataset-size experiment; this
driver runs the same harness (:class:`~repro.bench.harness.CorpusBench`
over ``make_scale`` corpora) in a configurable -- by default tiny --
setting and appends a ``BENCH_fig10.json`` entry via
:mod:`repro.bench.history`, so CI can track the approaches' filescan
runtimes across commits without paying for the full sweep::

    python -m repro.bench.fig10 --sizes 15 30 --repeats 2

Each metric is the best-of-``--repeats`` evaluation runtime for one
(approach, corpus size) point, e.g. ``staccato_runtime_ms_30``.  The
minimum -- not the mean -- is recorded because evaluation is
deterministic work and the minimum is the least noisy estimator of it.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from ..ocr.corpus import make_scale
from ..ocr.engine import SimulatedOcrEngine
from . import history
from .harness import CorpusBench

__all__ = ["APPROACHES", "PATTERN", "run_fig10", "main"]

#: The paper's figure-10 query (four-digit years in Google-Books text).
PATTERN = r"REGEX:19\d\d"

#: (label, approach, search kwargs) -- the figure's ordering MAP <
#: Staccato < FullSFA is what the runtimes should keep showing.  The
#: ``staccato40`` row is the engine's default (m=40, k=25) operating
#: point, tracked since the filescan moved to the compiled-kernel batch
#: evaluator.
APPROACHES = (
    ("map", "map", {}),
    ("staccato", "staccato", {"m": 10, "k": 25}),
    ("staccato40", "staccato", {"m": 40, "k": 25}),
    ("fullsfa", "fullsfa", {}),
)

DEFAULT_SIZES = (15, 30)


def run_fig10(
    sizes: Sequence[int] = DEFAULT_SIZES,
    repeats: int = 2,
    seed: int = 55,
    workers: int = 2,
) -> dict[str, dict]:
    """Best-of-``repeats`` filescan runtimes; returns history metrics."""
    metrics: dict[str, dict] = {}
    for size in sizes:
        bench = CorpusBench(make_scale(size), SimulatedOcrEngine(seed=seed),
                            workers=workers)
        for label, approach, kwargs in APPROACHES:
            best = min(
                bench.search(PATTERN, approach, **kwargs)[1]
                for _ in range(max(1, repeats))
            )
            metrics[f"{label}_runtime_ms_{size}"] = history.metric(
                best * 1e3, "ms", "lower_is_better"
            )
    return metrics


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.fig10",
        description="figure-10 filescan scaling, recorded to bench history",
    )
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=list(DEFAULT_SIZES),
                        help="corpus sizes (make_scale lines)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="evaluations per point; the best is recorded")
    parser.add_argument("--seed", type=int, default=55)
    parser.add_argument("--workers", type=int, default=2,
                        help="construction process-pool width")
    parser.add_argument(
        "--history-dir",
        default=history.DEFAULT_HISTORY_DIR,
        help="append the BENCH_fig10.json entry here ('-' prints only)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1 or not args.sizes or min(args.sizes) < 1:
        parser.error("--sizes and --repeats must be positive")
    metrics = run_fig10(
        sizes=args.sizes, repeats=args.repeats, seed=args.seed,
        workers=args.workers,
    )
    for name in sorted(metrics):
        entry = metrics[name]
        print(f"{name}: {entry['value']:.2f} {entry['unit']}")
    if args.history_dir != "-":
        path = history.record_run(
            "fig10",
            metrics,
            topology={
                "sizes": list(args.sizes),
                "repeats": args.repeats,
                "seed": args.seed,
                "pattern": PATTERN,
            },
            history_dir=args.history_dir,
        )
        print(f"bench history appended to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
