"""The evaluation workload: 21 queries over three corpora (paper Table 6).

Seven queries per dataset -- five keywords and two regular expressions --
formulated (per the paper) "based on discussions with practitioners ...
who work with real-world OCR data".  Our corpora are synthetic, so the
queries target the same vocabulary roles: legal terms and citation codes
in CA, names and date patterns in LT, systems-paper terms in DB.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Query", "standard_workload", "queries_for", "query_by_id"]


@dataclass(frozen=True, slots=True)
class Query:
    """One workload query: a LIKE/REGEX pattern against one dataset."""

    query_id: str
    dataset: str
    kind: str  # "keyword" | "regex"
    like: str

    @property
    def is_regex(self) -> bool:
        """True for the workload's regular-expression queries."""
        return self.kind == "regex"


_WORKLOAD = [
    # Congress Acts (CA): paper queries 1-7.
    Query("CA1", "CA", "keyword", "%Attorney%"),
    Query("CA2", "CA", "keyword", "%Commission%"),
    Query("CA3", "CA", "keyword", "%employment%"),
    Query("CA4", "CA", "keyword", "%President%"),
    Query("CA5", "CA", "keyword", "%United States%"),
    Query("CA6", "CA", "regex", r"REGEX:Public Law (8|9)\d"),
    Query("CA7", "CA", "regex", r"REGEX:U.S.C. 2\d\d\d"),
    # Database papers (DB).
    Query("DB1", "DB", "keyword", "%accuracy%"),
    Query("DB2", "DB", "keyword", "%confidence%"),
    Query("DB3", "DB", "keyword", "%database%"),
    Query("DB4", "DB", "keyword", "%lineage%"),
    Query("DB5", "DB", "keyword", "%Trio%"),
    Query("DB6", "DB", "regex", r"REGEX:Sec(\x)*\d"),
    Query("DB7", "DB", "regex", r"REGEX:\x\x\x\d\d"),
    # English literature (LT).
    Query("LT1", "LT", "keyword", "%Brinkmann%"),
    Query("LT2", "LT", "keyword", "%Hitler%"),
    Query("LT3", "LT", "keyword", "%Jonathan%"),
    Query("LT4", "LT", "keyword", "%Kerouac%"),
    Query("LT5", "LT", "keyword", "%Third Reich%"),
    Query("LT6", "LT", "regex", r"REGEX:19\d\d, \d\d"),
    Query("LT7", "LT", "regex", r"REGEX:spontan(\x)*s"),
]


def standard_workload() -> list[Query]:
    """All 21 queries (Table 6)."""
    return list(_WORKLOAD)


def queries_for(dataset: str) -> list[Query]:
    """The seven queries of one dataset."""
    return [q for q in _WORKLOAD if q.dataset == dataset]


def query_by_id(query_id: str) -> Query:
    """Look one workload query up by its Table 6 id (e.g. 'CA7')."""
    for query in _WORKLOAD:
        if query.query_id == query_id:
            return query
    raise KeyError(f"no workload query {query_id!r}")
