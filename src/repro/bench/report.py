"""Plain-text reporting: the tables and series the paper's figures plot."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series", "print_table", "print_series"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[object]
) -> str:
    """One named data series, as ``name: (x -> y), ...`` lines."""
    points = ", ".join(f"{x}->{y}" for x, y in zip(xs, ys))
    return f"{name}: {points}"


def print_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> None:
    """Print a titled fixed-width table."""
    print(f"\n== {title} ==")
    print(format_table(headers, rows))


def print_series(title: str, series: dict[str, tuple[Sequence[object], Sequence[object]]]) -> None:
    """Print a titled group of named series."""
    print(f"\n== {title} ==")
    for name, (xs, ys) in series.items():
        print(format_series(name, xs, ys))
