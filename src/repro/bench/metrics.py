"""Answer-quality metrics: precision, recall, F-1 (paper Section 5).

The paper measures retrieval quality of the ranked, NumAns-truncated
answer set against manually labeled ground truth.  Precision = fraction
of returned lines that are truly relevant; recall = fraction of truly
relevant lines returned; F-1 their harmonic mean (Appendix H.2).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["QualityMetrics", "evaluate_answers"]


@dataclass(frozen=True, slots=True)
class QualityMetrics:
    """Retrieval quality of one answer set vs ground truth."""

    precision: float
    recall: float
    f1: float
    retrieved: int
    relevant: int
    hits: int


def evaluate_answers(retrieved_ids: set[int], truth_ids: set[int]) -> QualityMetrics:
    """Score a retrieved id set against the ground-truth id set.

    Degenerate cases follow the paper's reporting: an empty result set
    has precision 0 (Table 7 reports 0.00/0.00 for DB2 under MAP); an
    empty truth set makes recall 1 by convention.
    """
    hits = len(retrieved_ids & truth_ids)
    precision = hits / len(retrieved_ids) if retrieved_ids else 0.0
    recall = hits / len(truth_ids) if truth_ids else 1.0
    if precision + recall > 0.0:
        f1 = 2.0 * precision * recall / (precision + recall)
    else:
        f1 = 0.0
    return QualityMetrics(
        precision=precision,
        recall=recall,
        f1=f1,
        retrieved=len(retrieved_ids),
        relevant=len(truth_ids),
        hits=hits,
    )
