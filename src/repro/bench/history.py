"""Machine-readable benchmark history (``benchmarks/history/``).

The text reports under ``benchmarks/reports/`` are for humans; nothing
can diff them across commits.  This module gives every bench driver one
call -- :func:`record_run` -- that appends a schema-versioned JSON entry
to ``benchmarks/history/BENCH_<name>.json``, so a checked-in baseline
and ``scripts/bench_check.py`` can detect regressions mechanically.

One history file per bench name holds a bounded JSON array, newest
entry last::

    [
      {
        "schema": 1,
        "name": "service_compare",
        "created_at": "2026-08-08T12:00:00+00:00",
        "git_rev": "70dbdc6",
        "topology": {"shards": 2, "backend": "thread"},
        "metrics": {
          "single_throughput_rps": {
            "value": 412.0, "unit": "req/s",
            "direction": "higher_is_better"
          },
          ...
        }
      }
    ]

``direction`` makes the regression check self-describing: the checker
never needs a table mapping metric names to "which way is worse".
Writes are atomic (temp file + ``os.replace``) so a crashed bench run
cannot leave a half-written history behind.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import tempfile
from datetime import datetime, timezone
from typing import Any, Mapping

__all__ = [
    "SCHEMA_VERSION",
    "DIRECTIONS",
    "DEFAULT_HISTORY_DIR",
    "metric",
    "load_result_metrics",
    "record_run",
    "latest_entry",
]

SCHEMA_VERSION = 1

#: Which way a metric degrades; every metric entry names one of these.
DIRECTIONS = ("higher_is_better", "lower_is_better")

DEFAULT_HISTORY_DIR = "benchmarks/history"

#: Entries kept per history file (oldest dropped first).  Bounded so a
#: long-lived checkout running the bench-smoke CI job on every push
#: cannot grow the file without limit.
MAX_ENTRIES = 200


def metric(
    value: float, unit: str, direction: str = "lower_is_better"
) -> dict[str, Any]:
    """One metric entry: ``{"value": ..., "unit": ..., "direction": ...}``."""
    if direction not in DIRECTIONS:
        raise ValueError(
            f"direction must be one of {list(DIRECTIONS)}, got {direction!r}"
        )
    return {"value": float(value), "unit": unit, "direction": direction}


def load_result_metrics(result, prefix: str = "") -> dict[str, dict[str, Any]]:
    """A :class:`~repro.bench.service_load.LoadResult` as metric entries.

    ``prefix`` namespaces the window or topology the result measured
    (``"single_"``, ``"during_"``, ...) so one bench entry can hold
    several LoadResults side by side.
    """
    return {
        f"{prefix}throughput_rps": metric(
            result.throughput_rps, "req/s", "higher_is_better"
        ),
        f"{prefix}latency_p50_ms": metric(result.latency_p50_ms, "ms"),
        f"{prefix}latency_p95_ms": metric(result.latency_p95_ms, "ms"),
        f"{prefix}latency_p99_ms": metric(result.latency_p99_ms, "ms"),
        f"{prefix}errors": metric(result.errors, "count"),
    }


def _git_rev() -> str:
    """The short commit hash of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=pathlib.Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def _atomic_write_json(path: pathlib.Path, payload: Any) -> None:
    """Write JSON via a same-directory temp file + ``os.replace``."""
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def record_run(
    name: str,
    metrics: Mapping[str, Mapping[str, Any]],
    topology: Mapping[str, Any] | None = None,
    history_dir: str | os.PathLike = DEFAULT_HISTORY_DIR,
    created_at: str | None = None,
    max_entries: int = MAX_ENTRIES,
) -> pathlib.Path:
    """Append one run to ``<history_dir>/BENCH_<name>.json``.

    ``metrics`` maps metric name to a :func:`metric` entry; ``topology``
    records the knobs that shaped the run (shard count, backend, corpus
    size) so differently-shaped runs are never compared as equals.
    Returns the history file's path.
    """
    if not name or any(ch in name for ch in "/\\"):
        raise ValueError(f"bench name must be a bare label, got {name!r}")
    for key, entry in metrics.items():
        if entry.get("direction") not in DIRECTIONS:
            raise ValueError(
                f"metric {key!r} needs a direction in {list(DIRECTIONS)}"
            )
        if not isinstance(entry.get("value"), (int, float)):
            raise ValueError(f"metric {key!r} needs a numeric value")
    directory = pathlib.Path(history_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    entries: list[dict[str, Any]] = []
    if path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(loaded, list):
                entries = loaded
        except (OSError, json.JSONDecodeError):
            entries = []  # a corrupt history restarts; runs are cheap
    entries.append(
        {
            "schema": SCHEMA_VERSION,
            "name": name,
            "created_at": created_at
            or datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "git_rev": _git_rev(),
            "topology": dict(topology or {}),
            "metrics": {key: dict(entry) for key, entry in metrics.items()},
        }
    )
    _atomic_write_json(path, entries[-max_entries:])
    return path


def latest_entry(
    name: str, history_dir: str | os.PathLike = DEFAULT_HISTORY_DIR
) -> dict[str, Any] | None:
    """The newest recorded entry for ``name``, or None."""
    path = pathlib.Path(history_dir) / f"BENCH_{name}.json"
    if not path.exists():
        return None
    try:
        entries = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(entries, list) or not entries:
        return None
    tail = entries[-1]
    return tail if isinstance(tail, dict) else None
