"""Command-line interface: ``python -m repro <command>``.

What an open-source release of the prototype ships: ingest a corpus into
a database file, run LIKE/regex/SQL queries against any storage approach,
build the dictionary index, run the automated parameter tuner, and serve
the database over HTTP.

Examples::

    python -m repro ingest --corpus ca --db /tmp/ca.db --k 25 --m 40
    python -m repro search --db /tmp/ca.db --pattern '%President%' \\
        --approach staccato
    python -m repro sql --db /tmp/ca.db \\
        --query "SELECT DocId, Loss FROM Claims WHERE DocData LIKE '%Ford%'"
    python -m repro index --db /tmp/ca.db --terms public law congress
    python -m repro tune --corpus ca --size-fraction 0.1 --recall 0.9
    python -m repro serve --db /tmp/ca.db --port 8080
    python -m repro serve --shards 4 --shard-dir /tmp/shards --port 8080
    python -m repro serve --shards 2 --replicas 2 --shard-dir /tmp/shards
    python -m repro serve --db /tmp/ca.db --workers 4 --warm-start
    python -m repro serve --db /tmp/ca.db --backend asyncio --max-inflight 16

``serve`` starts the concurrent query service of :mod:`repro.service`:
a JSON-over-HTTP server exposing ``POST /ingest`` (atomic
batch ingestion), ``POST /search`` (LIKE/regex, filescan/indexed/auto
plans), ``POST /sql`` (the probabilistic SELECT surface), ``POST
/index`` (dictionary-index rebuild plus pool broadcast), ``GET /stats``
(request metrics, cache and pool counters) and ``GET /health`` --
backed by a reader connection pool and an LRU query-result cache that
ingestion invalidates.  With ``--shards N --shard-dir DIR`` the same
API is served by the shard router of :mod:`repro.service.shards`:
documents partition across N StaccatoDB files by DocId range, queries
fan out and merge.  ``--replicas R`` keeps R read copies of every
shard with circuit-breaker failover (``POST /replicas`` attaches or
detaches copies at runtime).  ``--workers N`` sizes the background job
pool (``POST /jobs``: shard ``rebalance``, ``rebuild_index``,
``cache_snapshot``) and ``--warm-start`` replays the last cache
snapshot so a restart does not begin cold.  ``--backend`` picks the
front end -- ``thread`` (one OS thread per request) or ``asyncio`` (an
event loop dispatching onto a ``--max-inflight``-wide executor, so
slow filescans and idle keep-alive connections do not pin threads);
the wire contract is identical either way.  The installed console
script ``staccato`` is an alias for this module's ``main``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from .bench.report import format_table
from .core.tuning import tune_parameters
from .db.engine import APPROACHES, StaccatoDB
from .db.sql import execute_select
from .ocr.corpus import make_ca, make_db, make_lt, make_scale
from .ocr.engine import SimulatedOcrEngine

__all__ = ["main"]

_CORPORA = {"ca": make_ca, "lt": make_lt, "db": make_db}


def _make_corpus(args: argparse.Namespace):
    if args.corpus == "scale":
        return make_scale(args.lines, seed=args.seed)
    maker = _CORPORA[args.corpus]
    return maker(num_docs=args.docs, lines_per_doc=args.lines, seed=args.seed)


def _cmd_ingest(args: argparse.Namespace) -> int:
    dataset = _make_corpus(args)
    db = StaccatoDB(args.db, k=args.k, m=args.m)
    started = time.perf_counter()
    count = db.ingest(
        dataset,
        SimulatedOcrEngine(seed=args.ocr_seed),
        workers=args.workers,
    )
    elapsed = time.perf_counter() - started
    print(f"ingested {count} lines into {args.db} in {elapsed:.1f}s "
          f"(k={args.k}, m={args.m})")
    for approach in ("kmap", "fullsfa", "staccato"):
        print(f"  {approach:9s} storage: {db.storage_bytes(approach):,} bytes")
    db.close()
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from .db.planner import execute_plan

    db = StaccatoDB(args.db)
    started = time.perf_counter()
    plan_note = ""
    if args.planned:
        plan, answers = execute_plan(
            db, args.pattern, approach=args.approach, num_ans=args.num_ans
        )
        plan_note = f", plan={plan.kind} ({plan.reason})"
    elif args.indexed:
        answers = db.indexed_search(
            args.pattern, approach=args.approach, num_ans=args.num_ans
        )
        plan_note = ", indexed"
    else:
        answers = db.search(
            args.pattern, approach=args.approach, num_ans=args.num_ans
        )
    elapsed = time.perf_counter() - started
    rows = [
        [a.line_id, a.doc_id, a.line_no, f"{a.probability:.6f}"]
        for a in answers
    ]
    print(format_table(["line", "doc", "line_no", "probability"], rows))
    print(f"{len(answers)} answers in {elapsed:.3f}s "
          f"({args.approach}{plan_note})")
    db.close()
    return 0


def _cmd_sql(args: argparse.Namespace) -> int:
    db = StaccatoDB(args.db)
    started = time.perf_counter()
    result = execute_select(
        db, args.query, approach=args.approach, num_ans=args.num_ans
    )
    elapsed = time.perf_counter() - started
    if result:
        headers = list(result[0])
        rows = [[row[h] for h in headers] for row in result]
        print(format_table(headers, rows))
    print(f"{len(result)} rows in {elapsed:.3f}s")
    db.close()
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    db = StaccatoDB(args.db)
    started = time.perf_counter()
    count = db.build_index(args.terms, approach=args.approach)
    elapsed = time.perf_counter() - started
    print(f"indexed {len(args.terms)} terms, {count} postings "
          f"in {elapsed:.1f}s")
    db.close()
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    dataset = _make_corpus(args)
    ocr = SimulatedOcrEngine(seed=args.ocr_seed)
    sample = dataset.lines()[: args.sample]
    sfas = [
        ocr.recognize_line(text, line_seed=(doc_id, line_no))
        for _, doc_id, line_no, text in sample
    ]
    texts = [text for _, _, _, text in sample]
    result = tune_parameters(
        sfas,
        texts,
        args.queries,
        size_fraction=args.size_fraction,
        recall_target=args.recall,
    )
    status = "feasible" if result.feasible else "infeasible (best attempt)"
    print(f"m={result.m} k={result.k} recall={result.recall:.2f} [{status}]")
    print(f"estimated size {result.size_estimate:,} bytes, "
          f"budget {result.budget_bytes:,} bytes")
    return 0 if result.feasible else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import serve_forever

    if args.shards > 0 and not args.shard_dir:
        print("error: --shards needs --shard-dir", file=sys.stderr)
        return 2
    if args.shards <= 0 and not args.db:
        print("error: serve needs --db (or --shards/--shard-dir)",
              file=sys.stderr)
        return 2
    if args.replicas < 1:
        print("error: --replicas must be >= 1", file=sys.stderr)
        return 2
    if args.replicas > 1 and args.shards <= 0:
        print("error: --replicas needs a sharded service (--shards)",
              file=sys.stderr)
        return 2
    if args.worker_procs and args.shards <= 0:
        print("error: --worker-procs needs a sharded service (--shards)",
              file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.max_inflight < 1:
        print("error: --max-inflight must be >= 1", file=sys.stderr)
        return 2
    if args.trace_ring < 1:
        print("error: --trace-ring must be >= 1", file=sys.stderr)
        return 2
    if args.slow_query_ms is not None and args.slow_query_ms < 0:
        print("error: --slow-query-ms must be >= 0", file=sys.stderr)
        return 2
    if args.profile_hz < 0:
        print("error: --profile-hz must be >= 0", file=sys.stderr)
        return 2
    if args.scan_procs is not None and args.scan_procs < 1:
        print("error: --scan-procs must be >= 1", file=sys.stderr)
        return 2
    serve_forever(
        args.db,
        host=args.host,
        port=args.port,
        verbose=not args.quiet,
        shards=args.shards,
        shard_dir=args.shard_dir,
        replicas=args.replicas,
        warm_start=args.warm_start,
        backend=args.backend,
        max_inflight=args.max_inflight,
        worker_procs=args.worker_procs,
        k=args.k,
        m=args.m,
        pool_size=args.pool_size,
        cache_size=args.cache_size,
        index_approach=args.index_approach,
        workers=args.workers,
        trace_enabled=not args.no_trace,
        trace_ring=args.trace_ring,
        slow_query_ms=args.slow_query_ms,
        slow_log_path=args.slow_query_log,
        access_log_path=args.access_log,
        profile_hz=args.profile_hz,
        scan_procs=args.scan_procs,
    )
    return 0


def _add_corpus_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--corpus", choices=[*_CORPORA, "scale"], default="ca",
        help="synthetic corpus to generate",
    )
    parser.add_argument("--docs", type=int, default=6)
    parser.add_argument("--lines", type=int, default=12)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--ocr-seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Staccato: probabilistic OCR data in an RDBMS "
        "(VLDB 2011 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ingest = sub.add_parser("ingest", help="OCR a corpus into a database")
    _add_corpus_options(ingest)
    ingest.add_argument("--db", required=True, help="SQLite database path")
    ingest.add_argument("--k", type=int, default=25)
    ingest.add_argument("--m", type=int, default=40)
    ingest.add_argument("--workers", type=int, default=None)
    ingest.set_defaults(func=_cmd_ingest)

    search = sub.add_parser("search", help="run a LIKE/REGEX query")
    search.add_argument("--db", required=True)
    search.add_argument("--pattern", required=True)
    search.add_argument("--approach", choices=APPROACHES, default="staccato")
    search.add_argument("--num-ans", type=int, default=100)
    search.add_argument("--indexed", action="store_true",
                        help="force the index probe plan")
    search.add_argument("--planned", action="store_true",
                        help="let the cost-based planner pick the plan")
    search.set_defaults(func=_cmd_search)

    sql = sub.add_parser("sql", help="run a select-project SQL query")
    sql.add_argument("--db", required=True)
    sql.add_argument("--query", required=True)
    sql.add_argument("--approach", choices=APPROACHES, default="staccato")
    sql.add_argument("--num-ans", type=int, default=100)
    sql.set_defaults(func=_cmd_sql)

    index = sub.add_parser("index", help="build the dictionary index")
    index.add_argument("--db", required=True)
    index.add_argument("--terms", nargs="+", required=True)
    index.add_argument(
        "--approach", choices=("kmap", "staccato"), default="staccato"
    )
    index.set_defaults(func=_cmd_index)

    tune = sub.add_parser("tune", help="auto-tune (m, k) on a labeled sample")
    _add_corpus_options(tune)
    tune.add_argument("--sample", type=int, default=12)
    tune.add_argument("--size-fraction", type=float, default=0.10)
    tune.add_argument("--recall", type=float, default=0.9)
    tune.add_argument(
        "--queries", nargs="+",
        default=["%President%", "%Public Law%", r"REGEX:U.S.C. 2\d\d\d"],
    )
    tune.set_defaults(func=_cmd_tune)

    serve = sub.add_parser(
        "serve", help="serve one database (or a shard set) over a JSON HTTP API"
    )
    serve.add_argument("--db", default=None, help="SQLite database path")
    serve.add_argument("--shards", type=int, default=0,
                       help="serve N StaccatoDB shards instead of one --db")
    serve.add_argument("--shard-dir", default=None,
                       help="directory holding the shard-NNNN.db files")
    serve.add_argument("--replicas", type=int, default=1,
                       help="read replicas per shard (sharded mode only)")
    serve.add_argument("--worker-procs", action="store_true",
                       help="run each shard in its own worker subprocess "
                            "behind the fan-out router (sharded mode only)")
    serve.add_argument("--workers", type=int, default=2,
                       help="background job worker threads (POST /jobs)")
    serve.add_argument("--warm-start", action="store_true",
                       help="reload the last cache_snapshot job's output "
                            "so the result cache does not start cold")
    serve.add_argument(
        "--backend", choices=("thread", "asyncio"), default="thread",
        help="serving front end: one OS thread per request, or an "
             "asyncio event loop dispatching onto a bounded executor",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=8,
        help="asyncio backend: blocking service calls running at once "
             "(further requests queue on the event loop, not threads)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--k", type=int, default=25)
    serve.add_argument("--m", type=int, default=40)
    serve.add_argument("--pool-size", type=int, default=4,
                       help="reader connections kept open")
    serve.add_argument("--cache-size", type=int, default=256,
                       help="query-result cache entries (0 disables)")
    serve.add_argument(
        "--index-approach", choices=("kmap", "staccato"), default="staccato",
        help="approach whose dictionary index indexed plans use",
    )
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request access logging")
    serve.add_argument("--no-trace", action="store_true",
                       help="disable request tracing (GET /traces empties; "
                            "slow-query and access logs need tracing)")
    serve.add_argument("--trace-ring", type=int, default=256,
                       help="finished traces kept in memory for GET /traces")
    serve.add_argument(
        "--slow-query-ms", type=float, default=None,
        help="log a JSON line with the full span tree for any request "
             "slower than this many milliseconds",
    )
    serve.add_argument(
        "--slow-query-log", default=None, metavar="PATH",
        help="slow-query log destination ('-' or unset: stderr)",
    )
    serve.add_argument(
        "--access-log", default=None, metavar="PATH",
        help="structured JSON access log, one line per request "
             "('-' for stderr)",
    )
    serve.add_argument(
        "--profile-hz", type=float, default=0.0,
        help="sampling profiler frequency in samples/second "
             "(0 disables; results at GET /profile)",
    )
    serve.add_argument(
        "--scan-procs", type=int, default=None, metavar="N",
        help="spill filescans longer than the threshold across N "
             "processes (unset or 1: scan in-process)",
    )
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
