"""Model-based views over OCR query results (paper Section 6).

The paper follows MauveDB's model-based views [25]: the result of
query-time inference over the OCR transducers is exposed to applications
as an ordinary relational table, so downstream probabilistic RDBMS
machinery (MystiQ, Trio, MayBMS, ...) can consume it without knowing
anything about automata.  ``materialize_view`` runs a LIKE/REGEX query
under a chosen approach and persists the resulting probabilistic
relation; ``refresh_view`` recomputes it after new ingests.
"""

from __future__ import annotations

import re

from .engine import StaccatoDB

__all__ = ["materialize_view", "refresh_view", "drop_view", "list_views"]

_VIEW_REGISTRY = """
CREATE TABLE IF NOT EXISTS ModelViews (
    ViewName  TEXT PRIMARY KEY,
    Pattern   TEXT NOT NULL,
    Approach  TEXT NOT NULL,
    NumAns    INTEGER
);
"""

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z_0-9]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid view name {name!r}")
    return name


def materialize_view(
    db: StaccatoDB,
    name: str,
    pattern: str,
    approach: str = "staccato",
    num_ans: int | None = None,
) -> int:
    """Run ``pattern`` and persist its probabilistic relation as a table.

    The view schema is ``(DataKey, DocId, LineNum, Probability)`` -- one
    row per matching line, ready for ingestion by a probabilistic RDBMS.
    Returns the number of rows materialized.  The view's definition is
    recorded so :func:`refresh_view` can recompute it later.
    """
    _check_name(name)
    answers = db.search(pattern, approach=approach, num_ans=num_ans)
    with db.conn:
        db.conn.executescript(_VIEW_REGISTRY)
        db.conn.execute(f'DROP TABLE IF EXISTS "{name}"')
        db.conn.execute(
            f'CREATE TABLE "{name}" ('
            "DataKey INTEGER PRIMARY KEY, DocId INTEGER, "
            "LineNum INTEGER, Probability REAL)"
        )
        db.conn.executemany(
            f'INSERT INTO "{name}" VALUES (?, ?, ?, ?)',
            [
                (a.line_id, a.doc_id, a.line_no, a.probability)
                for a in answers
            ],
        )
        db.conn.execute(
            "INSERT OR REPLACE INTO ModelViews VALUES (?, ?, ?, ?)",
            (name, pattern, approach, num_ans),
        )
    return len(answers)


def refresh_view(db: StaccatoDB, name: str) -> int:
    """Recompute a materialized view from its recorded definition."""
    _check_name(name)
    row = db.conn.execute(
        "SELECT Pattern, Approach, NumAns FROM ModelViews WHERE ViewName = ?",
        (name,),
    ).fetchone()
    if row is None:
        raise KeyError(f"no materialized view {name!r}")
    pattern, approach, num_ans = row
    return materialize_view(db, name, pattern, approach, num_ans)


def drop_view(db: StaccatoDB, name: str) -> None:
    """Drop a materialized view and its registry entry."""
    _check_name(name)
    with db.conn:
        db.conn.execute(f'DROP TABLE IF EXISTS "{name}"')
        db.conn.executescript(_VIEW_REGISTRY)
        db.conn.execute("DELETE FROM ModelViews WHERE ViewName = ?", (name,))


def list_views(db: StaccatoDB) -> list[tuple[str, str, str]]:
    """All registered views as ``(name, pattern, approach)``."""
    db.conn.executescript(_VIEW_REGISTRY)
    return [
        (name, pattern, approach)
        for name, pattern, approach, _ in db.conn.execute(
            "SELECT ViewName, Pattern, Approach, NumAns FROM ModelViews "
            "ORDER BY ViewName"
        )
    ]
