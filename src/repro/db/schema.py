"""Relational schema for probabilistic OCR storage (paper Appendix G).

Mirrors the paper's Table 5: one master table per dataset plus one data
table per approach, and the inverted-index table of Section 5.3
(implemented there as "a relational table with a B+-tree on top of it" --
here a SQLite table with a B-tree index on the term column).  A
``Documents`` table carries the enterprise metadata of the running
insurance example (``Claims(DocID, Year, Loss, DocData)``).

Probabilities are stored as log-probabilities in FLOAT8 columns, exactly
as the paper's schema does.
"""

from __future__ import annotations

import sqlite3

__all__ = ["create_schema", "TABLES"]

TABLES = [
    "Documents",
    "MasterData",
    "kMAPData",
    "FullSFAData",
    "StaccatoData",
    "StaccatoGraph",
    "CompiledKernel",
    "GroundTruth",
    "InvertedIndex",
    "IndexMeta",
]

_DDL = """
CREATE TABLE IF NOT EXISTS Documents (
    DocId   INTEGER PRIMARY KEY,
    DocName TEXT NOT NULL,
    Year    INTEGER NOT NULL,
    Loss    REAL NOT NULL
);

CREATE TABLE IF NOT EXISTS MasterData (
    DataKey INTEGER PRIMARY KEY,
    DocName TEXT NOT NULL,
    DocId   INTEGER NOT NULL REFERENCES Documents(DocId),
    SFANum  INTEGER NOT NULL
);

CREATE TABLE IF NOT EXISTS kMAPData (
    DataKey INTEGER NOT NULL REFERENCES MasterData(DataKey),
    Rank    INTEGER NOT NULL,
    Data    TEXT NOT NULL,
    LogProb REAL NOT NULL,
    PRIMARY KEY (DataKey, Rank)
);

CREATE TABLE IF NOT EXISTS FullSFAData (
    DataKey INTEGER PRIMARY KEY REFERENCES MasterData(DataKey),
    SFABlob BLOB NOT NULL
);

CREATE TABLE IF NOT EXISTS StaccatoData (
    DataKey  INTEGER NOT NULL REFERENCES MasterData(DataKey),
    ChunkNum INTEGER NOT NULL,
    Rank     INTEGER NOT NULL,
    Data     TEXT NOT NULL,
    LogProb  REAL NOT NULL,
    PRIMARY KEY (DataKey, ChunkNum, Rank)
);

CREATE TABLE IF NOT EXISTS StaccatoGraph (
    DataKey   INTEGER PRIMARY KEY REFERENCES MasterData(DataKey),
    GraphBlob BLOB NOT NULL
);

-- Compiled evaluation kernels (repro.sfa.kernel), one per line per
-- automaton approach.  Version tags the blob layout; readers ignore
-- rows from other versions and recompile from the SFA blob instead,
-- so old database files keep working after a format bump.
CREATE TABLE IF NOT EXISTS CompiledKernel (
    DataKey     INTEGER NOT NULL REFERENCES MasterData(DataKey),
    Approach    TEXT NOT NULL,
    Version     INTEGER NOT NULL,
    Fingerprint TEXT NOT NULL,
    KernelBlob  BLOB NOT NULL,
    PRIMARY KEY (DataKey, Approach)
);

CREATE TABLE IF NOT EXISTS GroundTruth (
    DataKey INTEGER PRIMARY KEY REFERENCES MasterData(DataKey),
    Data    TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS InvertedIndex (
    Term    TEXT NOT NULL,
    DataKey INTEGER NOT NULL REFERENCES MasterData(DataKey),
    U       INTEGER NOT NULL,
    V       INTEGER NOT NULL,
    Rank    INTEGER NOT NULL,
    Offset  INTEGER NOT NULL
);

CREATE INDEX IF NOT EXISTS idx_inverted_term ON InvertedIndex(Term);

CREATE TABLE IF NOT EXISTS IndexMeta (
    Key   TEXT PRIMARY KEY,
    Value TEXT NOT NULL
);
"""


def create_schema(conn: sqlite3.Connection) -> None:
    """Create every table (idempotent)."""
    with conn:
        conn.executescript(_DDL)
