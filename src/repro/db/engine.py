"""StaccatoDB: the RDBMS-integrated query engine.

This is the system a user of the paper's prototype touches: ingest scanned
documents (through the OCR channel) into SQLite, then ask ``LIKE`` /
regex queries against any of the storage approaches:

* ``"map"``      -- rank-0 string only (what Google Books keeps);
* ``"kmap"``     -- the k best strings per line;
* ``"fullsfa"``  -- the complete automaton, BLOB per line;
* ``"staccato"`` -- the chunked approximation (the contribution).

``search`` is the filescan plan (read every line's representation);
``indexed_search`` is the index plan of Section 4 (anchor lookup in the
inverted index, then evaluate only candidate lines, optionally on the
projected window).  Both return the ranked probabilistic relation of
:class:`repro.query.Answer` rows.
"""

from __future__ import annotations

import glob
import os
import re
import sqlite3
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable

from .. import counters
from ..automata.trie import DictionaryTrie
from ..indexing.anchors import anchor_for_query
from ..indexing.inverted import build_kmap_postings, build_sfa_postings
from ..indexing.postings import Posting
from ..indexing.projection import projected_match_probability
from ..ocr.corpus import Dataset
from ..ocr.engine import SimulatedOcrEngine
from ..query.answers import Answer, rank_answers
from ..query.eval_kernel import KernelEvaluator
from ..query.eval_sfa import match_probability
from ..query.eval_strings import match_probability_strings
from ..query.like import compile_like
from ..query.memo import KernelMemo, query_fingerprint
from ..sfa.kernel import compile_kernel, kernel_from_bytes
from ..sfa.model import SfaError
from . import storage
from .schema import create_schema

__all__ = [
    "StaccatoDB",
    "APPROACHES",
    "shard_path",
    "shard_paths",
    "discover_shard_paths",
]

APPROACHES = ("map", "kmap", "fullsfa", "staccato")

_trace_span = None


def _span(name: str, **attrs):
    """A service-trace span around engine work (no-op outside a trace).

    The service layer imports this module, so importing
    :mod:`repro.service.trace` at the top would be circular; the first
    traced call resolves it instead.  Outside a traced request the span
    helper is a cheap no-op, so standalone engine use (benchmarks,
    scripts) pays one ContextVar read per query.
    """
    global _trace_span
    if _trace_span is None:
        from ..service.trace import span as _service_span

        _trace_span = _service_span
    return _trace_span(name, **attrs)

#: File-name pattern of one shard inside a shard directory.
SHARD_FILE_FORMAT = "shard-{index:04d}.db"
_SHARD_FILE_RE = re.compile(r"^shard-(\d{4})\.db$")
_ALIAS_RE = re.compile(r"^[A-Za-z_][A-Za-z_0-9]*$")


def shard_path(shard_dir: str, index: int) -> str:
    """The canonical file path of shard ``index`` under ``shard_dir``."""
    if index < 0:
        raise ValueError("shard index must be >= 0")
    return os.path.join(shard_dir, SHARD_FILE_FORMAT.format(index=index))


def shard_paths(shard_dir: str, num_shards: int) -> list[str]:
    """Canonical paths of an N-shard layout (files need not exist yet)."""
    if num_shards < 1:
        raise ValueError("a sharded layout needs at least one shard")
    return [shard_path(shard_dir, i) for i in range(num_shards)]


def discover_shard_paths(shard_dir: str) -> list[str]:
    """Existing shard files under ``shard_dir``, in shard-index order."""
    found = []
    for path in glob.glob(os.path.join(shard_dir, "shard-*.db")):
        if _SHARD_FILE_RE.match(os.path.basename(path)):
            found.append(path)
    return sorted(found)


#: Default BFS depth for projected evaluation: matches can span at most a
#: few chunks beyond the anchor in the workloads we reproduce.
DEFAULT_WINDOW = 24

#: Filescans shorter than this stay in-process even with ``scan_procs``
#: set: below it, per-task pickling outweighs the freed GIL time.
DEFAULT_SCAN_SPILL_THRESHOLD = 64


def _scan_worker(
    args: tuple[str, int, int, str, str, list[int]]
) -> tuple[dict[int, float], dict[str, int]]:
    """One ``--scan-procs`` spill task: scan a key slice in a fresh process.

    Opens its own connection (SQLite handles don't cross fork) and
    returns the slice's probabilities plus the exact engine counters its
    work produced, which the parent folds back in -- so a spilled scan
    reports byte-identical counters to an in-process one.
    """
    path, k, m, pattern, approach, keys = args
    db = StaccatoDB(path, k=k, m=m)
    try:
        query = compile_like(pattern)
        with counters.collect() as counts:
            probs = db._scan_probabilities(pattern, query, approach, keys)
        return probs, dict(counts)
    finally:
        db.close()


class StaccatoDB:
    """Probabilistic OCR data management on top of SQLite."""

    def __init__(
        self,
        path: str = ":memory:",
        k: int = 25,
        m: int = 40,
        *,
        check_same_thread: bool = True,
        timeout: float = 30.0,
        kernel_memo: KernelMemo | None = None,
        scan_procs: int | None = None,
        scan_spill_threshold: int = DEFAULT_SCAN_SPILL_THRESHOLD,
    ) -> None:
        self.path = path
        self.conn = sqlite3.connect(
            path, check_same_thread=check_same_thread, timeout=timeout
        )
        self.k = k
        self.m = m
        self._trie: DictionaryTrie | None = None
        self._index_approach: str | None = None
        #: Cross-request memo, shared across a pool's connections so any
        #: reader benefits from any other reader's evaluations.
        self.kernel_memo = kernel_memo
        self.scan_procs = scan_procs
        self.scan_spill_threshold = scan_spill_threshold
        self._scan_pool: ProcessPoolExecutor | None = None
        create_schema(self.conn)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the underlying SQLite connection."""
        if self._scan_pool is not None:
            self._scan_pool.shutdown(wait=False, cancel_futures=True)
            self._scan_pool = None
        self.conn.close()

    def __enter__(self) -> "StaccatoDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def attach(self, path: str, alias: str) -> None:
        """ATTACH another StaccatoDB file (e.g. a sibling shard) as ``alias``.

        Cross-shard inspection can then address its tables as
        ``alias.MasterData`` etc. from this connection.
        """
        if not _ALIAS_RE.match(alias):
            raise ValueError(f"bad attach alias {alias!r}")
        self.conn.execute(f"ATTACH DATABASE ? AS {alias}", (path,))

    def detach(self, alias: str) -> None:
        """Undo :meth:`attach`."""
        if not _ALIAS_RE.match(alias):
            raise ValueError(f"bad attach alias {alias!r}")
        self.conn.execute(f"DETACH DATABASE {alias}")

    # ------------------------------------------------------------------
    def ingest(
        self,
        dataset: Dataset,
        ocr: SimulatedOcrEngine | None = None,
        approaches: tuple[str, ...] = ("kmap", "fullsfa", "staccato"),
        workers: int | None = None,
    ) -> int:
        """OCR and store ``dataset``; returns the number of lines."""
        ocr = ocr or SimulatedOcrEngine()
        count = storage.ingest_dataset(
            self.conn,
            dataset,
            ocr,
            k=self.k,
            m=self.m,
            approaches=approaches,
            workers=workers,
        )
        if self.kernel_memo is not None:
            # The shard's generation clock: entries computed against the
            # pre-batch data cannot land after this (put is fenced).
            self.kernel_memo.invalidate()
        return count

    @property
    def num_lines(self) -> int:
        """Number of ingested lines (SFAs)."""
        row = self.conn.execute("SELECT COUNT(*) FROM MasterData").fetchone()
        return row[0]

    def storage_bytes(self, approach: str) -> int:
        """Approximate bytes the approach's tables occupy."""
        return storage.approach_storage_bytes(self.conn, approach)

    # ------------------------------------------------------------------
    def _line_probability(self, like: str, approach: str, data_key: int) -> float:
        query = compile_like(like)
        return self._probability_with_query(query, approach, data_key)

    def _probability_with_query(self, query, approach: str, data_key: int) -> float:
        if approach == "map":
            strings = storage.load_kmap(self.conn, data_key, k=1)
            return match_probability_strings(strings, query)
        if approach == "kmap":
            strings = storage.load_kmap(self.conn, data_key)
            return match_probability_strings(strings, query)
        if approach == "fullsfa":
            return match_probability(storage.load_fullsfa(self.conn, data_key), query)
        if approach == "staccato":
            return match_probability(storage.load_staccato(self.conn, data_key), query)
        raise ValueError(f"unknown approach {approach!r}")

    # ------------------------------------------------------------------
    def _kernel_scan(
        self, pattern: str, query, approach: str, keys: list[int]
    ) -> dict[int, float]:
        """Batched filescan DP over the compiled kernels of ``keys``.

        Kernels come from the ``CompiledKernel`` table in one bulk read;
        lines without a current-version row (old database files, or a
        blob the codec rejects) are transparently recompiled from their
        ``SFA1`` blobs.  The cross-request memo is probed per (kernel
        fingerprint, query fingerprint) before any blob is even
        deserialized; the remaining lines run through one batched
        :class:`~repro.query.eval_kernel.KernelEvaluator` pass.

        Counters stay exact: ``dp_cells``/``dp_transitions`` are summed
        from the per-line results of the DP actually executed (memo hits
        did no DP work and add nothing beyond ``memo_hits``), and the
        batched totals equal the sum of per-line evaluations bit for
        bit.
        """
        stored = storage.load_kernel_blobs(self.conn, approach)
        memo = self.kernel_memo
        query_fp = query_fingerprint(pattern) if memo is not None else None
        generation = memo.generation if memo is not None else None
        probs: dict[int, float] = {}
        pending_keys: list[int] = []
        pending_fps: list[str] = []
        pending_kernels = []
        hits = misses = 0
        for data_key in keys:
            row = stored.get(data_key)
            kernel = None
            if row is None:
                kernel = self._recompile_kernel(approach, data_key)
                if kernel is None:
                    continue  # concurrent delete; not part of the relation
                fingerprint = kernel.fingerprint
            else:
                fingerprint = row[0]
            if memo is not None:
                value = memo.get(fingerprint, query_fp)
                if value is not None:
                    hits += 1
                    probs[data_key] = value[0]
                    continue
                misses += 1
            if kernel is None:
                try:
                    kernel = kernel_from_bytes(row[1])
                except SfaError:
                    # Corrupt blob despite a matching version tag: fall
                    # back to the SFA blob like a version mismatch.
                    kernel = self._recompile_kernel(approach, data_key)
                    if kernel is None:
                        continue
            pending_keys.append(data_key)
            pending_fps.append(fingerprint)
            pending_kernels.append(kernel)
        cells = transitions = 0
        if pending_kernels:
            evaluator = KernelEvaluator(query)
            for data_key, fingerprint, result in zip(
                pending_keys,
                pending_fps,
                evaluator.evaluate_batch(pending_kernels),
            ):
                probs[data_key] = result.probability
                cells += result.dp_cells
                transitions += result.dp_transitions
                if memo is not None:
                    memo.put(
                        fingerprint, query_fp, tuple(result), generation
                    )
        counters.add(
            dp_cells=cells,
            dp_transitions=transitions,
            memo_hits=hits,
            memo_misses=misses,
        )
        return probs

    def _recompile_kernel(self, approach: str, data_key: int):
        """Kernel fallback path: lower the stored ``SFA1`` blob now."""
        load = (
            storage.load_staccato
            if approach == "staccato"
            else storage.load_fullsfa
        )
        try:
            return compile_kernel(load(self.conn, data_key))
        except KeyError:
            return None

    def _scan_probabilities(
        self, pattern: str, query, approach: str, keys: list[int]
    ) -> dict[int, float]:
        """Per-line match probabilities for a filescan over ``keys``.

        Automaton approaches go through the batched kernel scan; the
        string approaches (map/kmap) evaluate per line as before.  Lines
        deleted concurrently are absent from the result.
        """
        if approach in ("staccato", "fullsfa"):
            return self._kernel_scan(pattern, query, approach, keys)
        probs: dict[int, float] = {}
        for data_key in keys:
            try:
                probs[data_key] = self._probability_with_query(
                    query, approach, data_key
                )
            except KeyError:
                continue
        return probs

    def _spilled_scan(
        self, pattern: str, approach: str, keys: list[int]
    ) -> dict[int, float]:
        """Route a long filescan through the process pool (``--scan-procs``).

        Keys are split into contiguous slices, one per process; each
        worker opens its own connection, scans its slice and ships back
        (probabilities, counters).  Folding the counters here keeps the
        parent's totals exactly equal to an in-process scan.
        """
        procs = self.scan_procs or 1
        if self._scan_pool is None:
            self._scan_pool = ProcessPoolExecutor(max_workers=procs)
        step = (len(keys) + procs - 1) // procs
        slices = [
            keys[i : i + step] for i in range(0, len(keys), step)
        ]
        futures = [
            self._scan_pool.submit(
                _scan_worker,
                (self.path, self.k, self.m, pattern, approach, part),
            )
            for part in slices
            if part
        ]
        probs: dict[int, float] = {}
        for future in futures:
            part_probs, part_counts = future.result()
            probs.update(part_probs)
            if part_counts:
                counters.add(**part_counts)
        return probs

    def search(
        self,
        like: str,
        approach: str = "staccato",
        num_ans: int | None = 100,
        data_keys: Iterable[int] | None = None,
    ) -> list[Answer]:
        """Filescan query plan: evaluate the predicate on every line."""
        query = compile_like(like)
        keys = (
            list(data_keys)
            if data_keys is not None
            else storage.all_data_keys(self.conn)
        )
        spill = (
            self.scan_procs is not None
            and self.scan_procs > 1
            and len(keys) >= self.scan_spill_threshold
            and self.path != ":memory:"
        )
        answers = []
        with _span("engine_scan", approach=approach, spilled=spill) as scan:
            # Collect the DP work done by this scan so the span can carry
            # exact per-request counters; collect() re-folds them into the
            # process aggregate on exit, so /metrics still sees everything.
            with counters.collect() as counts:
                if spill:
                    probs = self._spilled_scan(like, approach, keys)
                else:
                    probs = self._scan_probabilities(
                        like, query, approach, keys
                    )
                for data_key in keys:
                    prob = probs.get(data_key)
                    if prob is None or prob <= 0.0:
                        continue
                    try:
                        doc_id, line_no = storage.line_metadata(
                            self.conn, data_key
                        )
                    except KeyError:
                        # The line vanished between the key listing and its
                        # evaluation -- a concurrent delete committed (e.g. a
                        # rebalance moved it to another shard after copying it
                        # there).  It is no longer part of this file's
                        # relation; autocommit readers see each statement's
                        # latest state.
                        continue
                    answers.append(
                        Answer(
                            line_id=data_key,
                            doc_id=doc_id,
                            line_no=line_no,
                            probability=prob,
                        )
                    )
                counters.add(
                    lines_scanned=len(keys), lines_matched=len(answers)
                )
                if scan is not None:
                    scan.annotate(
                        lines=len(keys),
                        matches=len(answers),
                        counters=dict(counts),
                    )
        return rank_answers(answers, num_ans=num_ans)

    # ------------------------------------------------------------------
    def build_index(
        self, dictionary: Iterable[str], approach: str = "staccato"
    ) -> int:
        """Construct the dictionary inverted index (paper Section 4).

        Returns the number of postings inserted.  The index covers the
        chosen approach's representation; rebuilding replaces it.
        """
        if approach not in ("kmap", "staccato"):
            raise ValueError(
                "the dictionary index covers 'kmap' or 'staccato' data"
            )
        trie = DictionaryTrie(dictionary)
        rows: list[tuple[str, int, int, int, int, int]] = []
        for data_key in storage.all_data_keys(self.conn):
            if approach == "staccato":
                graph = storage.load_staccato(self.conn, data_key)
                postings = build_sfa_postings(graph, trie)
            else:
                strings = storage.load_kmap(self.conn, data_key)
                postings = build_kmap_postings(strings, trie)
            for term, term_postings in postings.items():
                rows.extend(
                    (term, data_key, p.u, p.v, p.rank, p.offset)
                    for p in term_postings
                )
        with self.conn:
            self.conn.execute("DELETE FROM InvertedIndex")
            self.conn.executemany(
                "INSERT INTO InvertedIndex (Term, DataKey, U, V, Rank, Offset)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                rows,
            )
            self.conn.execute(
                "INSERT OR REPLACE INTO IndexMeta (Key, Value) "
                "VALUES ('approach', ?)",
                (approach,),
            )
        self._trie = trie
        self._index_approach = approach
        return len(rows)

    def stored_index_approach(self) -> str | None:
        """The approach the persisted index was built over, if recorded."""
        row = self.conn.execute(
            "SELECT Value FROM IndexMeta WHERE Key = 'approach'"
        ).fetchone()
        return row[0] if row else None

    def load_index(self, approach: str | None = None) -> bool:
        """Rebuild the in-memory anchor trie from the stored index.

        ``build_index`` persists its postings (and which approach they
        were built over) but keeps the dictionary trie only on the
        instance that built it.  A pooled connection
        (:mod:`repro.service.pool`) opened later against the same file
        calls this to recover the trie from the ``InvertedIndex`` terms,
        so indexed plans work on every connection.  The recorded approach
        always wins -- a posting's ``(U, V)`` coordinates only mean
        anything against the representation that produced them -- so
        ``approach`` is just a fallback for databases predating the
        ``IndexMeta`` record.  Returns ``True`` when an index was found.
        """
        terms = [
            term
            for (term,) in self.conn.execute(
                "SELECT DISTINCT Term FROM InvertedIndex"
            )
        ]
        if not terms:
            return False
        self._trie = DictionaryTrie(terms)
        self._index_approach = (
            self.stored_index_approach() or approach or "staccato"
        )
        return True

    def index_covers(self, like: str, approach: str) -> bool:
        """True when ``indexed_search`` would really use the index plan
        (trie loaded for this approach and the query has a usable anchor),
        False when it would silently fall back to the filescan."""
        if self._trie is None or self._index_approach != approach:
            return False
        return anchor_for_query(like, self._trie) is not None

    def index_postings(self, term: str) -> dict[int, set[Posting]]:
        """Posting lists of one term, grouped by line (B-tree probe)."""
        rows = self.conn.execute(
            "SELECT DataKey, U, V, Rank, Offset FROM InvertedIndex "
            "WHERE Term = ?",
            (term.lower(),),
        ).fetchall()
        grouped: dict[int, set[Posting]] = {}
        for data_key, u, v, rank, offset in rows:
            grouped.setdefault(data_key, set()).add(
                Posting(u=u, v=v, rank=rank, offset=offset)
            )
        return grouped

    def index_selectivity(self, term: str) -> float:
        """Fraction of lines the term's postings touch (Figure 20)."""
        total = self.num_lines
        if total == 0:
            return 0.0
        row = self.conn.execute(
            "SELECT COUNT(DISTINCT DataKey) FROM InvertedIndex WHERE Term = ?",
            (term.lower(),),
        ).fetchone()
        return row[0] / total

    def indexed_search(
        self,
        like: str,
        approach: str = "staccato",
        num_ans: int | None = 100,
        use_projection: bool = True,
        window: int = DEFAULT_WINDOW,
    ) -> list[Answer]:
        """Index query plan: anchor lookup, then evaluate candidates only.

        Falls back to the filescan plan when the query has no usable left
        anchor or no index has been built (the paper's parser makes the
        same decision).
        """
        if not self.index_covers(like, approach):
            return self.search(like, approach=approach, num_ans=num_ans)
        with _span("engine_probe", approach=approach) as probe:
            anchor = anchor_for_query(like, self._trie)
            candidates = self.index_postings(anchor)
            postings_total = sum(len(p) for p in candidates.values())
            counters.add(
                postings_probed=postings_total,
                index_candidates=len(candidates),
            )
            if probe is not None:
                probe.annotate(
                    anchor=anchor,
                    candidates=len(candidates),
                    postings=postings_total,
                )
        if not candidates:
            return []
        query = compile_like(like)
        answers = []
        with _span(
            "engine_eval", projected=approach == "staccato" and use_projection
        ) as ev:
            with counters.collect() as counts:
                for data_key, postings in candidates.items():
                    try:
                        if approach == "staccato" and use_projection:
                            graph = storage.load_staccato(self.conn, data_key)
                            prob = projected_match_probability(
                                graph, query, postings, window
                            )
                        else:
                            prob = self._probability_with_query(
                                query, approach, data_key
                            )
                        if prob <= 0.0:
                            continue
                        doc_id, line_no = storage.line_metadata(
                            self.conn, data_key
                        )
                    except KeyError:
                        # Candidate deleted since the posting lookup (see the
                        # filescan plan's identical guard).
                        continue
                    answers.append(
                        Answer(
                            line_id=data_key,
                            doc_id=doc_id,
                            line_no=line_no,
                            probability=prob,
                        )
                    )
                counters.add(
                    lines_scanned=len(candidates),
                    lines_matched=len(answers),
                )
                if ev is not None:
                    ev.annotate(
                        matches=len(answers), counters=dict(counts)
                    )
        return rank_answers(answers, num_ans=num_ans)

    # ------------------------------------------------------------------
    def ground_truth_matches(self, like: str) -> set[int]:
        """Line ids whose clean text satisfies the query (for metrics)."""
        query = compile_like(like)
        rows = self.conn.execute("SELECT DataKey, Data FROM GroundTruth")
        return {key for key, text in rows if query.accepts(text)}
