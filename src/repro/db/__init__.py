"""RDBMS integration: schema, storage, engine and the SQL layer."""

from .engine import APPROACHES, StaccatoDB
from .planner import QueryPlan, choose_plan, execute_plan
from .schema import TABLES, create_schema
from .sql import ParsedSelect, SqlError, execute_select, parse_select
from .views import drop_view, list_views, materialize_view, refresh_view
from .storage import (
    all_data_keys,
    approach_storage_bytes,
    ingest_dataset,
    line_metadata,
    load_fullsfa,
    load_ground_truth,
    load_kmap,
    load_staccato,
)

__all__ = [
    "APPROACHES",
    "StaccatoDB",
    "QueryPlan",
    "choose_plan",
    "execute_plan",
    "TABLES",
    "create_schema",
    "ParsedSelect",
    "SqlError",
    "execute_select",
    "parse_select",
    "all_data_keys",
    "approach_storage_bytes",
    "ingest_dataset",
    "line_metadata",
    "load_fullsfa",
    "load_ground_truth",
    "load_kmap",
    "load_staccato",
    "drop_view",
    "list_views",
    "materialize_view",
    "refresh_view",
]
