"""Cost-based plan selection: index probe vs filescan.

Section 5.3's lesson is that the dictionary index helps only while the
anchor term is selective; Figure 20 shows selectivity saturating toward
100% at high (m, k), "rendering [the indexes] useless".  A real system
must therefore *choose* between the probe and the scan per query.  This
planner makes that choice the way a textbook optimizer would:

    cost(scan)  ~ N * c_line
    cost(probe) ~ c_lookup + sel * N * c_line

so the probe wins when the anchor's selectivity is below roughly
``1 - c_lookup / (N * c_line)`` -- i.e. almost always when selective, and
never when the posting list covers the corpus.  Selectivity comes from
the index itself (a COUNT(DISTINCT) probe), mirroring how an RDBMS uses
its statistics.

Since the filescan moved to the compiled-kernel batch evaluator
(:mod:`repro.query.eval_kernel`), ``c_line`` on the scan side is much
smaller than on the probe side, whose candidates still evaluate line by
line (the projected window DP).  The default threshold is deliberately
conservative about that asymmetry: an anchor has to be genuinely
selective before the probe's per-candidate cost beats the batched scan.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import counters
from ..indexing.anchors import anchor_for_query
from .engine import StaccatoDB

__all__ = ["QueryPlan", "choose_plan", "execute_plan"]

#: Selectivity above which the probe stops paying for itself (the probe
#: also pays the B-tree lookup and posting materialization).
DEFAULT_SELECTIVITY_THRESHOLD = 0.8


@dataclass(frozen=True, slots=True)
class QueryPlan:
    """The chosen access path for one query."""

    kind: str  # "index" | "scan"
    anchor: str | None
    selectivity: float | None
    reason: str


def choose_plan(
    db: StaccatoDB,
    like: str,
    threshold: float = DEFAULT_SELECTIVITY_THRESHOLD,
) -> QueryPlan:
    """Pick the access path for ``like`` against the current index."""
    plan = _choose_plan(db, like, threshold)
    if plan.kind == "index":
        counters.add(plan_index=1)
    else:
        counters.add(plan_scan=1)
    return plan


def _choose_plan(db: StaccatoDB, like: str, threshold: float) -> QueryPlan:
    if db._trie is None:
        return QueryPlan("scan", None, None, "no index built; batched filescan")
    anchor = anchor_for_query(like, db._trie)
    if anchor is None:
        return QueryPlan(
            "scan",
            None,
            None,
            "query is not left-anchored by a dictionary term; batched filescan",
        )
    selectivity = db.index_selectivity(anchor)
    if selectivity > threshold:
        return QueryPlan(
            "scan",
            anchor,
            selectivity,
            f"anchor '{anchor}' matches {selectivity:.0%} of lines "
            f"(> {threshold:.0%} threshold)",
        )
    return QueryPlan(
        "index",
        anchor,
        selectivity,
        f"anchor '{anchor}' selects {selectivity:.0%} of lines",
    )


def execute_plan(
    db: StaccatoDB,
    like: str,
    approach: str = "staccato",
    num_ans: int | None = 100,
    threshold: float = DEFAULT_SELECTIVITY_THRESHOLD,
):
    """Choose and run the best plan; returns ``(plan, answers)``."""
    plan = choose_plan(db, like, threshold=threshold)
    if plan.kind == "index":
        answers = db.indexed_search(like, approach=approach, num_ans=num_ans)
    else:
        answers = db.search(like, approach=approach, num_ans=num_ans)
    return plan, answers
