"""Ingest and load: moving OCR representations in and out of the RDBMS.

One line of one document becomes:

* a row in ``MasterData`` (its DataKey is the dataset-global line id);
* its ground-truth text in ``GroundTruth`` (the paper built manual ground
  truth; our simulated channel gives it exactly);
* per approach, the corresponding representation rows:
  k-MAP strings, the FullSFA blob, and/or the Staccato chunk strings plus
  chunk-graph blob (paper Table 5).

All inserts are batched with ``executemany`` inside transactions.
"""

from __future__ import annotations

import math
import sqlite3
from concurrent.futures import ProcessPoolExecutor
from functools import partial

from ..core.approximate import staccato_approximate
from ..core.kmap import build_kmap
from ..ocr.corpus import Dataset
from ..ocr.engine import SimulatedOcrEngine
from ..sfa import serialize
from ..sfa.kernel import KERNEL_VERSION, compile_kernel
from ..sfa.model import Sfa

__all__ = [
    "ingest_dataset",
    "load_fullsfa",
    "load_kmap",
    "load_staccato",
    "load_kernel_blobs",
    "load_ground_truth",
    "all_data_keys",
    "line_metadata",
    "approach_storage_bytes",
]

APPROACH_TABLES = {
    "map": ("kMAPData",),
    "kmap": ("kMAPData",),
    "fullsfa": ("FullSFAData",),
    "staccato": ("StaccatoData", "StaccatoGraph"),
}


def _log_prob(prob: float) -> float:
    return math.log(prob) if prob > 0.0 else -math.inf


def _line_representations(
    line: tuple[int, int, int, str],
    ocr: SimulatedOcrEngine,
    k: int,
    m: int,
    want_kmap: bool,
    want_fullsfa: bool,
    want_staccato: bool,
):
    """Build one line's representations (runs in worker processes too)."""
    line_id, doc_id, line_no, text = line
    sfa = ocr.recognize_line(text, line_seed=(doc_id, line_no))
    kmap_rows = []
    if want_kmap:
        doc = build_kmap(sfa, k)
        kmap_rows = [
            (line_id, rank, string, _log_prob(prob))
            for rank, (string, prob) in enumerate(doc.strings)
        ]
    fullsfa_row = (line_id, serialize.to_bytes(sfa)) if want_fullsfa else None
    staccato_rows = []
    graph_row = None
    kernel_rows = []
    if want_fullsfa:
        kernel_rows.append(_kernel_row(line_id, "fullsfa", sfa))
    if want_staccato:
        chunked = staccato_approximate(sfa, m=m, k=k)
        graph_row = (line_id, serialize.to_bytes(chunked))
        kernel_rows.append(_kernel_row(line_id, "staccato", chunked))
        for chunk_num, (u, v) in enumerate(sorted(chunked.edges)):
            staccato_rows.extend(
                (line_id, chunk_num, rank, e.string, _log_prob(e.prob))
                for rank, e in enumerate(chunked.emissions(u, v))
            )
    return kmap_rows, fullsfa_row, staccato_rows, graph_row, kernel_rows


def _kernel_row(
    line_id: int, approach: str, sfa: Sfa
) -> tuple[int, str, int, str, bytes]:
    """One ``CompiledKernel`` insert: lower the SFA at construction time."""
    kernel = compile_kernel(sfa)
    return (
        line_id,
        approach,
        KERNEL_VERSION,
        kernel.fingerprint,
        serialize.kernel_to_bytes(kernel),
    )


def ingest_dataset(
    conn: sqlite3.Connection,
    dataset: Dataset,
    ocr: SimulatedOcrEngine,
    k: int = 25,
    m: int = 40,
    approaches: tuple[str, ...] = ("kmap", "fullsfa", "staccato"),
    workers: int | None = None,
) -> int:
    """OCR every line of ``dataset`` and store the chosen representations.

    Returns the number of lines ingested.  Each call is one batch: every
    insert happens inside a single transaction (atomic per batch), and
    DataKeys are offset past any existing rows so repeated batches append
    rather than collide.  The ``map`` approach is served
    by the rank-0 rows of ``kMAPData``, so requesting ``"map"`` ensures at
    least k >= 1 strings are stored.  ``workers`` fans the per-line
    representation building out over a process pool -- construction is
    embarrassingly parallel across SFAs, exactly how the paper ran it on
    Condor (Section 5.2).
    """
    unknown = set(approaches) - set(APPROACH_TABLES)
    if unknown:
        raise ValueError(f"unknown approaches: {sorted(unknown)}")
    doc_rows = [
        (doc.doc_id, doc.name, doc.year, doc.loss) for doc in dataset.documents
    ]
    # Batch ingestion appends: a dataset's line ids start at 0, so shift
    # them past the highest DataKey already stored.  A fresh database gets
    # offset 0, preserving the line_id == DataKey identity.
    (offset,) = conn.execute(
        "SELECT COALESCE(MAX(DataKey) + 1, 0) FROM MasterData"
    ).fetchone()
    lines = [
        (line_id + offset, doc_id, line_no, text)
        for line_id, doc_id, line_no, text in dataset.lines()
    ]
    master_rows = [
        (line_id, f"{dataset.name}-{doc_id}", doc_id, line_no)
        for line_id, doc_id, line_no, _ in lines
    ]
    truth_rows = [(line_id, text) for line_id, _, _, text in lines]
    build = partial(
        _line_representations,
        ocr=ocr,
        k=k,
        m=m,
        want_kmap="kmap" in approaches or "map" in approaches,
        want_fullsfa="fullsfa" in approaches,
        want_staccato="staccato" in approaches,
    )
    if workers and workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            built = list(pool.map(build, lines, chunksize=8))
    else:
        built = [build(line) for line in lines]
    kmap_rows = []
    fullsfa_rows = []
    staccato_rows = []
    graph_rows = []
    kernel_rows = []
    for line_kmap, fullsfa_row, line_staccato, graph_row, line_kernels in built:
        kmap_rows.extend(line_kmap)
        if fullsfa_row is not None:
            fullsfa_rows.append(fullsfa_row)
        staccato_rows.extend(line_staccato)
        if graph_row is not None:
            graph_rows.append(graph_row)
        kernel_rows.extend(line_kernels)
    with conn:
        conn.executemany(
            "INSERT OR REPLACE INTO Documents (DocId, DocName, Year, Loss) "
            "VALUES (?, ?, ?, ?)",
            doc_rows,
        )
        conn.executemany(
            "INSERT INTO MasterData (DataKey, DocName, DocId, SFANum) "
            "VALUES (?, ?, ?, ?)",
            master_rows,
        )
        conn.executemany(
            "INSERT INTO GroundTruth (DataKey, Data) VALUES (?, ?)", truth_rows
        )
        if kmap_rows:
            conn.executemany(
                "INSERT INTO kMAPData (DataKey, Rank, Data, LogProb) "
                "VALUES (?, ?, ?, ?)",
                kmap_rows,
            )
        if fullsfa_rows:
            conn.executemany(
                "INSERT INTO FullSFAData (DataKey, SFABlob) VALUES (?, ?)",
                fullsfa_rows,
            )
        if staccato_rows:
            conn.executemany(
                "INSERT INTO StaccatoData (DataKey, ChunkNum, Rank, Data, LogProb)"
                " VALUES (?, ?, ?, ?, ?)",
                staccato_rows,
            )
            conn.executemany(
                "INSERT INTO StaccatoGraph (DataKey, GraphBlob) VALUES (?, ?)",
                graph_rows,
            )
        if kernel_rows:
            conn.executemany(
                "INSERT INTO CompiledKernel "
                "(DataKey, Approach, Version, Fingerprint, KernelBlob) "
                "VALUES (?, ?, ?, ?, ?)",
                kernel_rows,
            )
    return len(master_rows)


def all_data_keys(conn: sqlite3.Connection) -> list[int]:
    """Every ingested line id, in order."""
    rows = conn.execute("SELECT DataKey FROM MasterData ORDER BY DataKey")
    return [key for (key,) in rows]


def line_metadata(conn: sqlite3.Connection, data_key: int) -> tuple[int, int]:
    """``(DocId, SFANum)`` for one line."""
    row = conn.execute(
        "SELECT DocId, SFANum FROM MasterData WHERE DataKey = ?", (data_key,)
    ).fetchone()
    if row is None:
        raise KeyError(f"no line with DataKey {data_key}")
    return row


def load_fullsfa(conn: sqlite3.Connection, data_key: int) -> Sfa:
    """Retrieve and deserialize the FullSFA blob of one line."""
    row = conn.execute(
        "SELECT SFABlob FROM FullSFAData WHERE DataKey = ?", (data_key,)
    ).fetchone()
    if row is None:
        raise KeyError(f"no FullSFA blob for DataKey {data_key}")
    return serialize.from_bytes(row[0])


def load_staccato(conn: sqlite3.Connection, data_key: int) -> Sfa:
    """Retrieve and deserialize the Staccato chunk graph of one line."""
    row = conn.execute(
        "SELECT GraphBlob FROM StaccatoGraph WHERE DataKey = ?", (data_key,)
    ).fetchone()
    if row is None:
        raise KeyError(f"no Staccato graph for DataKey {data_key}")
    return serialize.from_bytes(row[0])


def load_kernel_blobs(
    conn: sqlite3.Connection, approach: str
) -> dict[int, tuple[str, bytes]]:
    """Every stored compiled kernel of one approach, in one query.

    Returns ``{DataKey: (fingerprint, blob)}`` for rows whose blob
    version matches this build's :data:`~repro.sfa.kernel.KERNEL_VERSION`.
    Rows from other versions -- or lines that predate the kernel table
    entirely -- are simply absent; the scan path recompiles those lines
    from their ``SFA1`` blobs, so old database files stay queryable.
    """
    rows = conn.execute(
        "SELECT DataKey, Fingerprint, KernelBlob FROM CompiledKernel "
        "WHERE Approach = ? AND Version = ?",
        (approach, KERNEL_VERSION),
    )
    return {key: (fingerprint, blob) for key, fingerprint, blob in rows}


def load_kmap(
    conn: sqlite3.Connection, data_key: int, k: int | None = None
) -> list[tuple[str, float]]:
    """The ranked k-MAP strings of one line (optionally truncated to k)."""
    rows = conn.execute(
        "SELECT Data, LogProb FROM kMAPData WHERE DataKey = ? ORDER BY Rank",
        (data_key,),
    ).fetchall()
    if not rows:
        raise KeyError(f"no k-MAP strings for DataKey {data_key}")
    if k is not None:
        rows = rows[:k]
    return [(text, math.exp(log_prob)) for text, log_prob in rows]


def load_ground_truth(conn: sqlite3.Connection, data_key: int) -> str:
    """The clean ground-truth text of one line."""
    row = conn.execute(
        "SELECT Data FROM GroundTruth WHERE DataKey = ?", (data_key,)
    ).fetchone()
    if row is None:
        raise KeyError(f"no ground truth for DataKey {data_key}")
    return row[0]


def approach_storage_bytes(conn: sqlite3.Connection, approach: str) -> int:
    """Approximate storage footprint of one approach's tables (used by the
    Table 2 / Figure 20 size reports)."""
    if approach in ("map", "kmap"):
        row = conn.execute(
            "SELECT COALESCE(SUM(LENGTH(Data) + 16), 0) FROM kMAPData"
        ).fetchone()
        return row[0]
    if approach == "fullsfa":
        row = conn.execute(
            "SELECT COALESCE(SUM(LENGTH(SFABlob)), 0) FROM FullSFAData"
        ).fetchone()
        return row[0]
    if approach == "staccato":
        strings = conn.execute(
            "SELECT COALESCE(SUM(LENGTH(Data) + 16), 0) FROM StaccatoData"
        ).fetchone()[0]
        graphs = conn.execute(
            "SELECT COALESCE(SUM(LENGTH(GraphBlob)), 0) FROM StaccatoGraph"
        ).fetchone()[0]
        return strings + graphs
    raise ValueError(f"unknown approach {approach!r}")
