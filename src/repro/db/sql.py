"""A small SQL layer for single-table select-project queries.

The paper's interface promise is that "enterprise users can ask their
existing queries directly" -- e.g. Figure 1(C):

    SELECT DocId, Loss FROM Claims
    WHERE Year = 2010 AND DocData LIKE '%Ford%';

This module parses exactly that class of queries (projection, conjunctive
WHERE with comparisons on scalar document columns and LIKE on the OCR
column ``DocData``) and evaluates it against a :class:`StaccatoDB`.  The
output is a probabilistic relation: the projected columns plus a
``Probability`` column.  Per-document probability combines the document's
line probabilities as independent events:
``P(doc) = 1 - prod(1 - p_line)``.

Beyond the paper's prototype, the layer also supports *expected
aggregates* over the probabilistic relation -- the direction the paper's
Section 7 names as future work ("using aggregation with a probabilistic
RDBMS"): ``COUNT(*)`` returns the expected number of qualifying
documents, ``SUM(col)`` the expected sum ``sum_d P(d) * col(d)`` (both
exact by linearity of expectation), and ``AVG(col)`` the ratio of those
two expectations (the standard first-order approximation of E[avg]).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .engine import StaccatoDB

__all__ = [
    "SqlError",
    "ParsedSelect",
    "parse_select",
    "execute_select",
    "shard_select",
    "shard_select_rows",
    "merge_shard_rows",
    "aggregate_full_rows",
]

DOC_COLUMNS = {"docid", "docname", "year", "loss"}
#: Canonical spellings of the scalar document columns, keyed lowercase.
CANONICAL_COLUMNS = {
    "docid": "DocId",
    "docname": "DocName",
    "year": "Year",
    "loss": "Loss",
}
OCR_COLUMN = "docdata"
_COMPARATORS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class SqlError(ValueError):
    """Raised on unsupported or malformed SQL."""


AGGREGATE_FUNCTIONS = {"sum", "count", "avg"}


@dataclass(slots=True)
class ParsedSelect:
    """The parsed form of a supported SELECT statement."""

    columns: list[str]
    table: str
    scalar_predicates: list[tuple[str, str, object]] = field(default_factory=list)
    like_patterns: list[str] = field(default_factory=list)
    aggregates: list[tuple[str, str]] = field(default_factory=list)
    order_by: tuple[str, bool] | None = None  # (column, descending)
    limit: int | None = None

    @property
    def is_aggregate(self) -> bool:
        """True when the projection is made of aggregate functions."""
        return bool(self.aggregates)


_TOKEN = re.compile(
    r"""\s*(?:
        (?P<string>'(?:[^']|'')*')
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<op><>|!=|<=|>=|=|<|>|,|\*|\(|\))
      | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    )""",
    re.VERBOSE,
)


def _tokenize(sql: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    text = sql.strip().rstrip(";")
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            raise SqlError(f"cannot tokenize SQL at: {text[pos:pos + 20]!r}")
        pos = match.end()
        kind = match.lastgroup
        assert kind is not None
        tokens.append((kind, match.group(kind)))
    return tokens


class _TokenStream:
    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> tuple[str, str] | None:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def take(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise SqlError("unexpected end of SQL")
        self.pos += 1
        return token

    def expect_word(self, word: str) -> None:
        kind, value = self.take()
        if kind != "word" or value.lower() != word:
            raise SqlError(f"expected {word.upper()}, got {value!r}")

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.tokens)


def _unquote(literal: str) -> str:
    return literal[1:-1].replace("''", "'")


def parse_select(sql: str) -> ParsedSelect:
    """Parse a single-table select-project (or expected-aggregate) query."""
    stream = _TokenStream(_tokenize(sql))
    stream.expect_word("select")
    columns: list[str] = []
    aggregates: list[tuple[str, str]] = []
    while True:
        kind, value = stream.take()
        if kind == "op" and value == "*":
            columns.append("*")
        elif kind == "word" and (
            value.lower() in AGGREGATE_FUNCTIONS
            and stream.peek() == ("op", "(")
        ):
            stream.take()  # '('
            arg_kind, arg = stream.take()
            if arg_kind == "op" and arg == "*":
                argument = "*"
            elif arg_kind == "word":
                argument = arg
            else:
                raise SqlError(f"bad aggregate argument {arg!r}")
            closing = stream.take()
            if closing != ("op", ")"):
                raise SqlError(f"unclosed aggregate {value}(")
            func = value.lower()
            if func == "count" and argument != "*":
                raise SqlError("only COUNT(*) is supported")
            if func in ("sum", "avg") and argument.lower() not in (
                "loss", "year", "docid"
            ):
                raise SqlError(f"cannot aggregate column {argument!r}")
            aggregates.append((func, argument))
        elif kind == "word":
            columns.append(value)
        else:
            raise SqlError(f"bad projection column {value!r}")
        nxt = stream.peek()
        if nxt is not None and nxt == ("op", ","):
            stream.take()
            continue
        break
    if aggregates and columns:
        raise SqlError("cannot mix aggregates with plain projection columns")
    stream.expect_word("from")
    kind, table = stream.take()
    if kind != "word":
        raise SqlError(f"bad table name {table!r}")
    parsed = ParsedSelect(columns=columns, table=table, aggregates=aggregates)
    nxt = stream.peek()
    if nxt is not None and nxt[0] == "word" and nxt[1].lower() == "where":
        stream.take()
        while True:
            kind, column = stream.take()
            if kind != "word":
                raise SqlError(f"bad predicate column {column!r}")
            kind, op = stream.take()
            if kind == "word" and op.lower() == "like":
                kind, literal = stream.take()
                if kind != "string":
                    raise SqlError("LIKE needs a quoted pattern")
                if column.lower() != OCR_COLUMN:
                    raise SqlError(
                        f"LIKE is supported on the OCR column DocData, "
                        f"not {column!r}"
                    )
                parsed.like_patterns.append(_unquote(literal))
            elif kind == "op" and op in _COMPARATORS:
                kind, literal = stream.take()
                if kind == "string":
                    value: object = _unquote(literal)
                elif kind == "number":
                    value = float(literal) if "." in literal else int(literal)
                else:
                    raise SqlError(f"bad comparison literal {literal!r}")
                if column.lower() not in DOC_COLUMNS:
                    raise SqlError(f"unknown scalar column {column!r}")
                parsed.scalar_predicates.append((column, op, value))
            else:
                raise SqlError(f"unsupported operator {op!r}")
            nxt = stream.peek()
            if nxt is None or nxt[0] != "word" or nxt[1].lower() != "and":
                break
            stream.take()
    _parse_trailing_clauses(stream, parsed)
    if not stream.exhausted:
        raise SqlError(f"unexpected trailing tokens near {stream.peek()!r}")
    return parsed


def _parse_trailing_clauses(stream: _TokenStream, parsed: ParsedSelect) -> None:
    """``ORDER BY col [ASC|DESC]`` and ``LIMIT n``."""
    nxt = stream.peek()
    if nxt is not None and nxt[0] == "word" and nxt[1].lower() == "order":
        stream.take()
        stream.expect_word("by")
        kind, column = stream.take()
        if kind != "word":
            raise SqlError(f"bad ORDER BY column {column!r}")
        if column.lower() not in DOC_COLUMNS | {"probability"}:
            raise SqlError(f"cannot ORDER BY {column!r}")
        descending = False
        direction = stream.peek()
        if direction is not None and direction[0] == "word" and direction[
            1
        ].lower() in ("asc", "desc"):
            stream.take()
            descending = direction[1].lower() == "desc"
        parsed.order_by = (column, descending)
    nxt = stream.peek()
    if nxt is not None and nxt[0] == "word" and nxt[1].lower() == "limit":
        stream.take()
        kind, literal = stream.take()
        if kind != "number" or "." in literal:
            raise SqlError(f"bad LIMIT value {literal!r}")
        parsed.limit = int(literal)


def execute_select(
    db: StaccatoDB,
    sql: str,
    approach: str = "staccato",
    num_ans: int | None = 100,
    parsed: ParsedSelect | None = None,
) -> list[dict[str, object]]:
    """Run a select-project query, returning a probabilistic relation.

    Rows are per *document* (as in the Figure 1(C) claims query): the
    projected columns plus ``Probability``, sorted by descending
    probability.  ``parsed`` overrides the parse of ``sql`` -- the shard
    router passes the widened per-shard plan of :func:`shard_select`
    here so every shard evaluates the same predicates but returns the
    mergeable full relation.
    """
    if parsed is None:
        parsed = parse_select(sql)
    where = " AND ".join(
        f"{col} {'!=' if op == '<>' else op} ?"
        for col, op, _ in parsed.scalar_predicates
    )
    params = tuple(value for _, _, value in parsed.scalar_predicates)
    doc_sql = "SELECT DocId, DocName, Year, Loss FROM Documents"
    if where:
        doc_sql += f" WHERE {where}"
    docs = {
        row[0]: {"DocId": row[0], "DocName": row[1], "Year": row[2], "Loss": row[3]}
        for row in db.conn.execute(doc_sql, params)
    }
    if not docs:
        if parsed.is_aggregate:
            return [
                {
                    "COUNT(*)"
                    if func == "count"
                    else f"{func.upper()}({CANONICAL_COLUMNS[arg.lower()]})": 0.0
                    for func, arg in parsed.aggregates
                }
            ]
        return []

    # Combine the LIKE predicates: each yields per-line probabilities that
    # aggregate per document as independent events.
    doc_probs: dict[int, float] = {doc_id: 1.0 for doc_id in docs}
    if parsed.like_patterns:
        keys = [
            key
            for (key,) in db.conn.execute(
                "SELECT DataKey FROM MasterData WHERE DocId IN ({})".format(
                    ",".join("?" * len(docs))
                ),
                tuple(docs),
            )
        ]
        for pattern in parsed.like_patterns:
            answers = db.search(pattern, approach=approach, num_ans=None, data_keys=keys)
            miss_prob = {doc_id: 1.0 for doc_id in docs}
            for answer in answers:
                if answer.doc_id in miss_prob:
                    miss_prob[answer.doc_id] *= 1.0 - answer.probability
            for doc_id in docs:
                doc_probs[doc_id] *= 1.0 - miss_prob[doc_id]

    if parsed.is_aggregate:
        result: dict[str, object] = {}
        expected_count = sum(doc_probs.values())
        for func, argument in parsed.aggregates:
            if func == "count":
                result["COUNT(*)"] = expected_count
                continue
            lookup = {name.lower(): name for name in next(iter(docs.values()))}
            actual = lookup[argument.lower()]
            expected_sum = sum(
                doc_probs[doc_id] * float(row[actual])  # type: ignore[arg-type]
                for doc_id, row in docs.items()
            )
            if func == "sum":
                result[f"SUM({actual})"] = expected_sum
            else:
                result[f"AVG({actual})"] = (
                    expected_sum / expected_count if expected_count else 0.0
                )
        return [result]

    projected = []
    for doc_id, row in docs.items():
        prob = doc_probs[doc_id]
        if prob <= 0.0:
            continue
        if parsed.columns == ["*"]:
            out = dict(row)
        else:
            lookup = {name.lower(): name for name in row}
            out = {}
            for col in parsed.columns:
                actual = lookup.get(col.lower())
                if actual is None:
                    raise SqlError(f"unknown projection column {col!r}")
                out[actual] = row[actual]
        out["Probability"] = prob
        projected.append((doc_id, out))

    if parsed.order_by is not None:
        column, descending = parsed.order_by
        if column.lower() == "probability":
            projected.sort(
                key=lambda item: item[1]["Probability"], reverse=descending
            )
        else:
            lookup = {name.lower(): name for name in ("DocId", "DocName", "Year", "Loss")}
            actual = lookup[column.lower()]
            projected.sort(
                key=lambda item: docs[item[0]][actual],  # type: ignore[index]
                reverse=descending,
            )
    else:
        projected.sort(
            key=lambda item: (-float(item[1]["Probability"]), item[0])
        )
    rows_out = [out for _, out in projected]
    if parsed.limit is not None:
        rows_out = rows_out[: parsed.limit]
    if num_ans is not None:
        rows_out = rows_out[:num_ans]
    return rows_out


# ----------------------------------------------------------------------
# Sharded execution: each shard holds a disjoint set of documents, so a
# select-project query distributes as "run everywhere, merge".  The
# per-shard plan must return enough to merge losslessly: the full scalar
# row (the ORDER BY column may not be projected) with no LIMIT/NumAns
# cutoff, and for aggregates the *base* expectations (COUNT/SUM) that
# AVG is a ratio of -- per-shard averages do not combine.
# ----------------------------------------------------------------------
def shard_select(parsed: ParsedSelect) -> ParsedSelect:
    """The widened plan one shard runs so the router can merge exactly."""
    if parsed.is_aggregate:
        base: list[tuple[str, str]] = []
        for func, argument in parsed.aggregates:
            if func == "avg":
                needed = [("count", "*"), ("sum", argument)]
            else:
                needed = [(func, argument)]
            for agg in needed:
                if agg not in base:
                    base.append(agg)
        aggregates, columns = base, []
    else:
        aggregates, columns = [], ["*"]
    return ParsedSelect(
        columns=columns,
        table=parsed.table,
        scalar_predicates=list(parsed.scalar_predicates),
        like_patterns=list(parsed.like_patterns),
        aggregates=aggregates,
        order_by=None,
        limit=None,
    )


def shard_select_rows(parsed: ParsedSelect) -> ParsedSelect:
    """The rebalance-safe per-shard plan: always full document rows.

    While a shard rebalance is mid-flight a document's rows may briefly
    exist on two shards (copied to the target, not yet deleted from the
    source).  Per-shard *scalar* aggregates cannot be de-duplicated
    after the fact, so during a move the router asks every shard for
    the full per-document relation instead, de-duplicates by DocId
    (copies are byte-identical), and computes aggregates itself with
    :func:`aggregate_full_rows`.
    """
    return ParsedSelect(
        columns=["*"],
        table=parsed.table,
        scalar_predicates=list(parsed.scalar_predicates),
        like_patterns=list(parsed.like_patterns),
        aggregates=[],
        order_by=None,
        limit=None,
    )


def aggregate_full_rows(
    parsed: ParsedSelect, rows: list[dict[str, object]]
) -> list[dict[str, object]]:
    """Expected aggregates recomputed at the router from full rows.

    Mirrors the aggregate arm of :func:`execute_select`: the expected
    COUNT is the sum of document probabilities, expected SUM weights
    each document's column by its probability, AVG is their ratio.
    """
    expected_count = sum(float(row["Probability"]) for row in rows)  # type: ignore[arg-type]
    result: dict[str, object] = {}
    for func, argument in parsed.aggregates:
        if func == "count":
            result["COUNT(*)"] = expected_count
            continue
        actual = CANONICAL_COLUMNS[argument.lower()]
        expected_sum = sum(
            float(row["Probability"]) * float(row[actual])  # type: ignore[arg-type]
            for row in rows
        )
        if func == "sum":
            result[f"SUM({actual})"] = expected_sum
        else:
            result[f"AVG({actual})"] = (
                expected_sum / expected_count if expected_count else 0.0
            )
    return [result]


def _aggregate_key(func: str, argument: str) -> str:
    if func == "count":
        return "COUNT(*)"
    return f"{func.upper()}({CANONICAL_COLUMNS[argument.lower()]})"


def merge_shard_rows(
    parsed: ParsedSelect,
    shard_rows: list[list[dict[str, object]]],
    num_ans: int | None = 100,
) -> list[dict[str, object]]:
    """Merge per-shard :func:`shard_select` relations into the final one.

    Documents are disjoint across shards, so expected aggregates add by
    linearity and row merging is a concatenate-sort-project.  The result
    matches ``execute_select`` over one database holding the union,
    provided documents were ingested in DocId order there (the single
    database breaks scalar ORDER BY ties by insertion order; the merge
    breaks them by DocId).
    """
    if parsed.is_aggregate:
        totals: dict[str, float] = {}
        for rows in shard_rows:
            if not rows:
                continue
            (row,) = rows
            for key, value in row.items():
                totals[key] = totals.get(key, 0.0) + float(value)  # type: ignore[arg-type]
        result: dict[str, object] = {}
        expected_count = totals.get("COUNT(*)", 0.0)
        for func, argument in parsed.aggregates:
            if func == "count":
                result["COUNT(*)"] = expected_count
            elif func == "sum":
                result[_aggregate_key(func, argument)] = totals.get(
                    _aggregate_key("sum", argument), 0.0
                )
            else:
                expected_sum = totals.get(_aggregate_key("sum", argument), 0.0)
                result[_aggregate_key("avg", argument)] = (
                    expected_sum / expected_count if expected_count else 0.0
                )
        return [result]

    merged = [dict(row) for rows in shard_rows for row in rows]
    merged.sort(key=lambda row: row["DocId"])  # type: ignore[arg-type, return-value]
    if parsed.order_by is not None:
        column, descending = parsed.order_by
        if column.lower() == "probability":
            merged.sort(
                key=lambda row: row["Probability"],  # type: ignore[arg-type, return-value]
                reverse=descending,
            )
        else:
            actual = CANONICAL_COLUMNS[column.lower()]
            merged.sort(
                key=lambda row: row[actual],  # type: ignore[arg-type, return-value]
                reverse=descending,
            )
    else:
        merged.sort(
            key=lambda row: (-float(row["Probability"]), row["DocId"])  # type: ignore[arg-type, return-value]
        )

    rows_out: list[dict[str, object]] = []
    for row in merged:
        if parsed.columns == ["*"]:
            out = dict(row)
        else:
            out = {}
            for col in parsed.columns:
                actual = CANONICAL_COLUMNS.get(col.lower())
                if actual is None or actual not in row:
                    raise SqlError(f"unknown projection column {col!r}")
                out[actual] = row[actual]
            out["Probability"] = row["Probability"]
        rows_out.append(out)
    if parsed.limit is not None:
        rows_out = rows_out[: parsed.limit]
    if num_ans is not None:
        rows_out = rows_out[:num_ans]
    return rows_out
