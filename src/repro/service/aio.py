"""The asyncio serving front end (``serve --backend asyncio``).

The paper's central serving tradeoff means a production mix of
sub-millisecond index probes and multi-second filescans.  Under the
thread-per-request backend every slow filescan -- and every idle
keep-alive connection -- pins a whole OS thread.  This front end keeps
connections on an event loop (a coroutine each, thousands are cheap)
and runs the blocking service calls on a **bounded**
:class:`~concurrent.futures.ThreadPoolExecutor` via
``loop.run_in_executor``: ``--max-inflight`` threads do the database
work while any number of queued or idle requests cost only memory.

The wire contract is identical to :mod:`repro.service.server` because
every decision that shapes a response -- routing, framing limits,
error codes, ``(status, payload)`` normalization, metrics -- is made by
the shared :mod:`repro.service.http_common` core.  Only the transport
differs: stdlib ``asyncio.start_server`` speaking HTTP/1.1 with
keep-alive, no new dependencies.

:class:`AsyncHTTPServer` runs its event loop in a dedicated thread so
the blocking entry points (:func:`repro.service.server.start_service`,
``serve_forever``) drive either backend the same way.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.client import responses as _REASONS

from . import trace
from .http_common import (
    UNTRACED_ENDPOINTS,
    HttpResponse,
    body_length,
    decode_json,
    dispatch,
    incomplete_body,
    resolve,
    respond,
    split_path,
    split_query,
    unread_body,
)
from .validation import ApiError

__all__ = ["AsyncHTTPServer", "DEFAULT_MAX_INFLIGHT"]

#: Default executor width: how many blocking service calls may run at
#: once.  Everything beyond it queues as a pending future, not a thread.
DEFAULT_MAX_INFLIGHT = 8

#: Per-read timeout (request line, headers, body), mirroring the thread
#: backend's socket timeout: a client that stalls mid-request must not
#: hold its framing state forever.
READ_TIMEOUT_S = 60.0


class AsyncHTTPServer:
    """An asyncio HTTP/1.1 server over one Query/ShardedQueryService.

    The event loop runs in a dedicated daemon thread (``start()``); the
    public surface mirrors what :class:`~repro.service.server.
    RunningService` needs from the threaded server: ``server_address``,
    ``shutdown()`` and ``server_close()``.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        verbose: bool = False,
        timeout: float = READ_TIMEOUT_S,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.service = service
        self.verbose = verbose
        self.timeout = timeout
        self.max_inflight = max_inflight
        self.server_address: tuple[str, int] = (host, port)
        self._requested = (host, port)
        self._executor = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="staccato-aio"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> threading.Thread:
        """Run the loop in a daemon thread; returns once the port is bound."""
        thread = threading.Thread(
            target=self._run, name="staccato-aio-loop", daemon=True
        )
        self._thread = thread
        thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("asyncio server failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                "asyncio server failed to bind"
            ) from self._startup_error
        return thread

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
        finally:
            self._started.set()
            # Drop queued work; in-flight calls finish on their own.
            self._executor.shutdown(wait=False, cancel_futures=True)

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        host, port = self._requested
        server = await asyncio.start_server(self._serve_connection, host, port)
        self.server_address = server.sockets[0].getsockname()[:2]
        self._started.set()
        # asyncio.run cancels the per-connection tasks start_server
        # spawned when this coroutine returns, closing every socket.
        async with server:
            await self._stop.wait()

    def shutdown(self) -> None:
        """Stop accepting and serving; callable from any thread."""
        loop, stop = self._loop, self._stop
        if loop is None or stop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(stop.set)
        except RuntimeError:
            pass  # loop already closing

    def server_close(self) -> None:
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)

    # ------------------------------------------------------------------
    # One connection (keep-alive loop)
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        try:
            while True:
                request = await self._read_head(reader)
                if request is None:
                    return  # clean EOF / idle timeout between requests
                method, target, version, headers = request
                keep_alive = self._keep_alive(version, headers)
                response, suppress_body = await self._process(
                    method, target, headers, reader
                )
                if self.verbose:
                    print(f'{peer} "{method} {target}" {response.status}')
                keep_alive = keep_alive and not response.close
                self._write(writer, response, keep_alive, suppress_body)
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            pass  # client went away or stalled; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_head(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, str, dict[str, str]] | None:
        """Read and parse one request line plus headers; None on EOF."""
        try:
            line = await asyncio.wait_for(reader.readline(), self.timeout)
        except asyncio.TimeoutError:
            return None  # idle keep-alive connection timed out
        except ValueError:
            return None  # request line beyond the stream limit
        if not line or not line.strip():
            return None
        try:
            method, target, version = line.decode("latin-1").split()
        except ValueError:
            return None  # malformed request line; just drop the link
        headers: dict[str, str] = {}
        while True:
            try:
                raw = await asyncio.wait_for(reader.readline(), self.timeout)
            except (asyncio.TimeoutError, ValueError):
                return None
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return method, target, version, headers

    @staticmethod
    def _keep_alive(version: str, headers: dict[str, str]) -> bool:
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    # ------------------------------------------------------------------
    # One request
    # ------------------------------------------------------------------
    async def _process(
        self,
        method: str,
        target: str,
        headers: dict[str, str],
        reader: asyncio.StreamReader,
    ) -> tuple[HttpResponse, bool]:
        """Route, frame, dispatch; returns (response, suppress_body).

        Matches the thread backend decision for decision: the same
        ApiError at the same stage produces the same payload under the
        same metrics endpoint label.
        """
        started = time.perf_counter()
        declared = headers.get("content-length")
        try:
            routed = resolve(
                method,
                split_path(target),
                getattr(self.service, "EXTRA_ROUTES", None),
            )
        except ApiError as exc:
            # An unread request body would desynchronize keep-alive
            # framing, so close after answering (the thread backend
            # marks close_connection the same way).  A HEAD response
            # suppresses the *response* body only; its request body,
            # if declared, is still unread.
            response = respond(
                self.service, "unknown", exc.status, exc.to_payload(),
                started, close=unread_body(declared),
            )
            return response, method == "HEAD"
        tracer = getattr(self.service, "tracer", None)
        root = None
        if tracer is not None and routed.endpoint not in UNTRACED_ENDPOINTS:
            # The per-connection task has its own contextvars context,
            # so installing the root here is task-local; the executor
            # hop in _call re-attaches it explicitly.
            root = tracer.begin_request(
                routed.endpoint, method, target,
                headers.get(trace.TRACE_HEADER.lower()),
                parent_span_id=headers.get(trace.PARENT_SPAN_HEADER.lower()),
            )
        try:
            payload: object = None
            close = False
            if routed.with_body:
                try:
                    with trace.span("read_body"):
                        payload = await self._read_json(reader, declared)
                except ApiError as exc:
                    response = respond(
                        self.service, routed.endpoint, exc.status,
                        exc.to_payload(), started,
                        close=exc.close_connection,  # framing: body unread
                    )
                    return response, False
            elif unread_body(declared):
                close = True  # GET/DELETE body left unread: framing desync
            status, result = await self._call(
                routed, payload, split_query(target)
            )
            return respond(
                self.service, routed.endpoint, status, result, started,
                close=close,
            ), False
        finally:
            if root is not None:
                tracer.release(root)

    async def _call(
        self, routed, payload: object, query: dict[str, str]
    ) -> tuple[int, dict]:
        """Run the blocking service call on the bounded executor.

        Context variables do not follow ``run_in_executor``, so the
        current span is captured here and re-attached in the worker;
        a ``queue_wait`` span measures how long the call sat behind
        the ``max_inflight`` bound before a worker picked it up.
        """
        assert self._loop is not None
        parent = trace.current_span()
        queue_span = None
        if parent is not None:
            queue_span = trace.Span("queue_wait", parent=parent)
            parent.children.append(queue_span)

        def run() -> tuple[int, dict]:
            if queue_span is not None:
                queue_span.finish()
            with trace.attach(parent), trace.span("handler"):
                return dispatch(self.service, routed, payload, query)

        return await self._loop.run_in_executor(self._executor, run)

    async def _read_json(
        self, reader: asyncio.StreamReader, declared: str | None
    ) -> object:
        length = body_length(declared)
        try:
            raw = await asyncio.wait_for(
                reader.readexactly(length), self.timeout
            )
        except asyncio.IncompleteReadError as exc:
            raise incomplete_body(len(exc.partial), length) from None
        except asyncio.TimeoutError:
            raise incomplete_body(0, length) from None
        return decode_json(raw)

    # ------------------------------------------------------------------
    @staticmethod
    def _write(
        writer: asyncio.StreamWriter,
        response: HttpResponse,
        keep_alive: bool,
        suppress_body: bool,
    ) -> None:
        reason = _REASONS.get(response.status, "")
        head = [f"HTTP/1.1 {response.status} {reason}"]
        head += [f"{name}: {value}" for name, value in response.headers]
        head.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
        writer.write("\r\n".join(head).encode("latin-1") + b"\r\n\r\n")
        if not suppress_body:  # a HEAD response states length, sends none
            writer.write(response.body)
