"""The StaccatoDB query service: a concurrent JSON-over-HTTP API.

The paper stores OCR transducer approximations in an RDBMS so
applications can query them like any other relation; this subsystem is
the serving tier that promise implies -- a stdlib-only threaded HTTP
server (no dependencies beyond ``http.server``) in front of one
StaccatoDB file.  Start it with::

    python -m repro serve --db /tmp/ca.db --port 8080

or in-process (tests, examples)::

    from repro.service import start_service
    running = start_service("/tmp/ca.db", port=0)   # ephemeral port
    ...
    running.stop()

HTTP API (all bodies and responses are JSON):

``GET /health``
    Liveness probe: ``{"status": "ok", "lines": N, ...}``.

``GET /stats``
    Operational snapshot: per-endpoint request counts and latency
    percentiles, cache hit/miss/eviction counters, pool occupancy and
    per-approach storage bytes.

``POST /ingest``
    Batch document ingestion, atomic per batch (one transaction).
    Body: ``{"dataset": "name", "documents": [{"doc_id": 1, "name":
    "...", "year": 2010, "loss": 1234.5, "lines": ["...", ...]},
    ...], "ocr_seed": 0, "approaches": ["kmap", "fullsfa",
    "staccato"]}``.  DataKeys are offset past existing rows, so
    repeated batches append.  A committed batch invalidates the
    query-result cache.

``POST /search``
    LIKE/regex query against any approach.  Body: ``{"pattern":
    "%Ford%", "approach": "staccato", "plan": "filescan" | "indexed" |
    "auto", "num_ans": 100}``.  Response: the ranked probabilistic
    relation (``answers`` rows with ``line_id``/``doc_id``/``line_no``/
    ``probability``) plus ``cached`` and the plan actually used.

``POST /sql``
    The probabilistic SELECT surface of :mod:`repro.db.sql`.  Body:
    ``{"query": "SELECT DocId, Loss FROM Claims WHERE DocData LIKE
    '%Ford%'", "approach": "staccato", "num_ans": 100}``.

Errors come back as ``{"error": {"code": ..., "message": ...}}`` with
a 4xx/5xx status.

Architecture: reads fan out over a :class:`~repro.service.pool.
ConnectionPool` of ``check_same_thread=False`` SQLite connections (one
lock per connection); writes serialize through a single writer
connection in WAL mode; identical queries are served from a
thread-safe LRU :class:`~repro.service.cache.QueryCache` keyed on
``(db, pattern, approach, plan, num_ans)``; and a
:class:`~repro.service.metrics.ServiceMetrics` registry feeds
``/stats``.
"""

from .app import QueryService
from .cache import QueryCache
from .metrics import ServiceMetrics
from .pool import ConnectionPool, PoolClosed
from .server import RunningService, build_server, serve_forever, start_service
from .validation import ApiError

__all__ = [
    "QueryService",
    "QueryCache",
    "ServiceMetrics",
    "ConnectionPool",
    "PoolClosed",
    "ApiError",
    "RunningService",
    "build_server",
    "serve_forever",
    "start_service",
]
