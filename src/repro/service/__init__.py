"""The StaccatoDB query service: a concurrent JSON-over-HTTP API.

The paper stores OCR transducer approximations in an RDBMS so
applications can query them like any other relation; this subsystem is
the serving tier that promise implies -- a stdlib-only HTTP server (no
dependencies beyond the standard library) in front of one StaccatoDB
file, or a shard router over many (see :mod:`repro.service.shards`).
Two interchangeable front ends speak the same wire contract (routing,
framing and payloads live in :mod:`repro.service.http_common`): the
default thread-per-request backend (``http.server``) and an asyncio
event-loop backend (:mod:`repro.service.aio`) that runs blocking
service calls on a bounded executor, so idle keep-alive connections
and queued slow filescans cost coroutines, not threads.  Start it
with::

    python -m repro serve --db /tmp/ca.db --port 8080
    python -m repro serve --db /tmp/ca.db --backend asyncio --max-inflight 16
    python -m repro serve --shards 4 --shard-dir /tmp/shards --port 8080

or in-process (tests, examples)::

    from repro.service import start_service, start_sharded_service
    running = start_service("/tmp/ca.db", port=0)   # ephemeral port
    cluster = start_sharded_service("/tmp/shards", num_shards=2, port=0)
    ...
    running.stop()

HTTP API (all bodies and responses are JSON):

``GET /health``
    Liveness probe: ``{"status": "ok", "lines": N, ...}``.

``GET /stats``
    Operational snapshot: per-endpoint request counts and latency
    percentiles, cache hit/miss/eviction counters, pool occupancy and
    per-approach storage bytes.

``POST /ingest``
    Batch document ingestion, atomic per batch (one transaction).
    Body: ``{"dataset": "name", "documents": [{"doc_id": 1, "name":
    "...", "year": 2010, "loss": 1234.5, "lines": ["...", ...]},
    ...], "ocr_seed": 0, "approaches": ["kmap", "fullsfa",
    "staccato"]}``.  DataKeys are offset past existing rows, so
    repeated batches append.  A committed batch invalidates the
    query-result cache.

``POST /search``
    LIKE/regex query against any approach.  Body: ``{"pattern":
    "%Ford%", "approach": "staccato", "plan": "filescan" | "indexed" |
    "auto", "num_ans": 100}``.  Response: the ranked probabilistic
    relation (``answers`` rows with ``line_id``/``doc_id``/``line_no``/
    ``probability``) plus ``cached`` and the plan actually used.

``POST /sql``
    The probabilistic SELECT surface of :mod:`repro.db.sql`.  Body:
    ``{"query": "SELECT DocId, Loss FROM Claims WHERE DocData LIKE
    '%Ford%'", "approach": "staccato", "num_ans": 100}``.

``POST /index``
    Build/rebuild the dictionary inverted index over HTTP and broadcast
    ``load_index`` to the reader pool(s).  Body: ``{"terms": ["public",
    "law", ...], "approach": "staccato"}``.

On a sharded service (``serve --shards N``) ``/search``/``/sql`` fan
out over all shards (or a ``"shards": [0, 2]`` scope) and merge the
ranked relations; ``/ingest`` routes documents to their owning shard by
DocId range.  With ``--replicas R`` each shard keeps R read copies
(writes re-apply to every copy in lockstep): reads round-robin over the
healthy replicas, a failing replica trips a circuit breaker and its
query retries transparently on a sibling, and ``POST /replicas``
attaches/detaches copies at runtime.  See :mod:`repro.service.shards`,
:mod:`repro.service.replicas` and ``docs/API.md``.

``POST /jobs`` / ``GET /jobs`` / ``GET /jobs/<id>`` / ``DELETE
/jobs/<id>``
    The background job engine (:mod:`repro.service.jobs`): submit work
    by type (``rebalance`` moves a DocId range between live shards,
    ``rebuild_index`` is the index rebuild off the request path,
    ``cache_snapshot`` serializes the result cache for ``serve
    --warm-start``), poll status/progress, cancel cooperatively.  Jobs
    survive restarts via a JSON journal next to the database.

Errors come back as ``{"error": {"code": ..., "message": ...}}`` with
a 4xx/5xx status.

Architecture: reads fan out over a :class:`~repro.service.pool.
ConnectionPool` of ``check_same_thread=False`` SQLite connections (one
lock per connection); writes serialize through a single writer
connection in WAL mode; identical queries are served from a
thread-safe LRU :class:`~repro.service.cache.QueryCache` keyed on
``(db, pattern, approach, plan, num_ans)``; and a
:class:`~repro.service.metrics.ServiceMetrics` registry feeds
``/stats``.
"""

from .app import QueryService
from .cache import QueryCache
from .jobs import Job, JobCancelled, JobEngine, JobType
from .metrics import ServiceMetrics
from .pool import ConnectionPool, PoolClosed
from .replicas import (
    CircuitBreaker,
    ReplicaSet,
    ReplicaUnavailable,
    ordered_locks,
    replica_path,
)
from .aio import AsyncHTTPServer
from .server import (
    BACKENDS,
    RunningService,
    build_server,
    serve_forever,
    start_service,
    start_sharded_service,
    start_worker_service,
)
from .shards import (
    RoutingTable,
    ShardedPool,
    ShardedQueryService,
    shard_for_doc,
)
from .workers import ShardWorkerService, WorkerRouterService
from .validation import ApiError

__all__ = [
    "QueryService",
    "ShardedQueryService",
    "ShardedPool",
    "shard_for_doc",
    "RoutingTable",
    "CircuitBreaker",
    "ReplicaSet",
    "ReplicaUnavailable",
    "replica_path",
    "ordered_locks",
    "Job",
    "JobCancelled",
    "JobEngine",
    "JobType",
    "QueryCache",
    "ServiceMetrics",
    "ConnectionPool",
    "PoolClosed",
    "ApiError",
    "AsyncHTTPServer",
    "BACKENDS",
    "RunningService",
    "build_server",
    "serve_forever",
    "start_service",
    "start_sharded_service",
    "start_worker_service",
    "ShardWorkerService",
    "WorkerRouterService",
]
