"""Thread-safe LRU cache for query results.

Query evaluation is the expensive path of the service (every line's
representation is scanned or probed), while the stored relations only
change on ingest.  That makes results perfectly cacheable between
batches: the cache is keyed on the full query identity --
``(kind, db path, pattern/query, approach, plan, num_ans)`` -- and the
whole cache is invalidated whenever a batch lands (ingest is rare and
changes every filescan's universe, so per-key invalidation would buy
nothing).

Counters (hits / misses / evictions / invalidations) feed the
``/stats`` endpoint via :class:`repro.service.metrics.ServiceMetrics`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

from . import trace

__all__ = ["QueryCache", "key_to_json", "key_from_json"]


def key_to_json(key: Any) -> Any:
    """A cache key (nested tuples of scalars) as JSON-safe nested lists."""
    if isinstance(key, tuple):
        return [key_to_json(part) for part in key]
    return key


def key_from_json(obj: Any) -> Any:
    """Invert :func:`key_to_json`: every list becomes a tuple again."""
    if isinstance(obj, list):
        return tuple(key_from_json(part) for part in obj)
    return obj


class QueryCache:
    """An LRU mapping from query keys to result payloads.

    All operations take the internal lock, so one instance can be shared
    by every handler thread.  ``capacity <= 0`` disables caching (every
    ``get`` is a miss, ``put`` is a no-op) while keeping the counters
    meaningful.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._generation = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.warm_loaded = 0

    @property
    def generation(self) -> int:
        """Bumped by every invalidation; see :meth:`put`."""
        with self._lock:
            return self._generation

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable) -> Any | None:
        """The cached value, marking it most recently used; None on miss."""
        with trace.span("cache_probe") as probe:
            with self._lock:
                if key in self._data:
                    self._data.move_to_end(key)
                    self.hits += 1
                    if probe is not None:
                        probe.annotate(hit=True)
                    return self._data[key]
                self.misses += 1
            if probe is not None:
                probe.annotate(hit=False)
            return None

    def put(
        self, key: Hashable, value: Any, generation: int | None = None
    ) -> None:
        """Store a result, evicting least-recently-used entries over capacity.

        ``generation`` closes the compute/invalidate race: a reader that
        snapshotted :attr:`generation` before evaluating passes it here,
        and the put becomes a no-op if an invalidation landed in between
        -- otherwise a result computed against pre-batch data could be
        cached *after* the batch's invalidation and served stale forever.
        """
        if self.capacity <= 0:
            return
        with self._lock:
            if generation is not None and generation != self._generation:
                return
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def invalidate(self) -> None:
        """Drop every entry (called after each ingest batch)."""
        with self._lock:
            self._data.clear()
            self._generation += 1
            self.invalidations += 1

    def invalidate_where(self, predicate) -> int:
        """Drop only the entries whose key satisfies ``predicate``.

        The sharded service keys entries with the shard scope they were
        computed over, so an ingest routed to one shard evicts only the
        results that depended on it; returns the number dropped.  Each
        dropped entry counts toward ``invalidations`` -- counting 1 per
        sweep regardless of what it dropped would make the ``/stats``
        hit-rate impossible to interpret against eviction volume.  The
        global generation is *not* bumped -- untouched entries stay
        servable -- so callers relying on generation fencing must encode
        per-shard generations in their keys instead.
        """
        with self._lock:
            doomed = [key for key in self._data if predicate(key)]
            for key in doomed:
                del self._data[key]
            self.invalidations += len(doomed)
            return len(doomed)

    # ------------------------------------------------------------------
    def export_entries(self) -> list[tuple[Hashable, Any]]:
        """Snapshot every entry, LRU-first, for the ``cache_snapshot`` job.

        Keys are the tuple keys the services build (strings, ints, None
        and nested tuples only), so the caller can serialize them as
        nested JSON arrays and restore with :meth:`load_entries`.
        """
        with self._lock:
            return list(self._data.items())

    def load_entries(self, entries: list[tuple[Hashable, Any]]) -> int:
        """Warm-start: pre-populate from a snapshot, counting what landed.

        The caller has already dropped stale-generation entries; this
        only enforces capacity (newest-listed entries win, matching the
        LRU-first export order) and keeps the ``warm_loaded`` counter
        ``/stats`` reports.
        """
        if self.capacity <= 0:
            return 0
        loaded = 0
        with self._lock:
            for key, value in entries:
                self._data[key] = value
                self._data.move_to_end(key)
                loaded += 1
                while len(self._data) > self.capacity:
                    self._data.popitem(last=False)
            self.warm_loaded += loaded
        return loaded

    def stats(self) -> dict[str, float | int]:
        """Counter snapshot for the ``/stats`` endpoint."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "size": len(self._data),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / lookups if lookups else 0.0,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "warm_loaded": self.warm_loaded,
            }
