"""Service metrics: request counters and latency percentiles.

One registry per service instance.  Every handled request records its
endpoint, outcome and wall-clock latency; ``snapshot`` condenses that
into the ``/stats`` payload -- per-endpoint counts, error counts and
p50/p90/p99/mean latency in milliseconds.  Latencies are kept in a
bounded ring per endpoint so a long-lived server's memory stays flat and
the percentiles track recent behaviour rather than all history.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque

__all__ = ["ServiceMetrics", "percentile"]

#: Latency samples retained per endpoint.
DEFAULT_WINDOW = 2048


def percentile(values: list[float], q: float) -> float:
    """The q-th percentile (0 < q <= 100) by nearest-rank on sorted data."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


class ServiceMetrics:
    """Thread-safe request/latency registry for the query service."""

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self._lock = threading.Lock()
        self._window = window
        self._counts: dict[str, int] = {}
        self._errors: dict[str, int] = {}
        self._latencies: dict[str, deque[float]] = {}
        # Per-shard sub-request observations, keyed (shard index, endpoint).
        self._shard_counts: dict[tuple[int, str], int] = {}
        self._shard_errors: dict[tuple[int, str], int] = {}
        self._shard_latencies: dict[tuple[int, str], deque[float]] = {}
        # Per-replica attempts, keyed (shard index, replica index, endpoint).
        self._replica_counts: dict[tuple[int, int, str], int] = {}
        self._replica_errors: dict[tuple[int, int, str], int] = {}
        self._replica_latencies: dict[tuple[int, int, str], deque[float]] = {}
        # Background jobs, keyed by job type.
        self._job_counts: dict[str, int] = {}
        self._job_errors: dict[str, int] = {}
        self._job_latencies: dict[str, deque[float]] = {}
        self.started_at = time.monotonic()

    def observe(self, endpoint: str, seconds: float, error: bool = False) -> None:
        """Record one handled request."""
        with self._lock:
            self._counts[endpoint] = self._counts.get(endpoint, 0) + 1
            if error:
                self._errors[endpoint] = self._errors.get(endpoint, 0) + 1
            ring = self._latencies.setdefault(
                endpoint, deque(maxlen=self._window)
            )
            ring.append(seconds)

    def observe_shard(
        self, shard: int, endpoint: str, seconds: float, error: bool = False
    ) -> None:
        """Record one shard's leg of a fanned-out request.

        A sharded ``/search`` is one request at the service level but N
        sub-requests at the storage level; keeping the legs separate lets
        ``/stats`` expose skew (one hot or slow shard) that the merged
        endpoint latency hides.
        """
        key = (shard, endpoint)
        with self._lock:
            self._shard_counts[key] = self._shard_counts.get(key, 0) + 1
            if error:
                self._shard_errors[key] = self._shard_errors.get(key, 0) + 1
            ring = self._shard_latencies.setdefault(
                key, deque(maxlen=self._window)
            )
            ring.append(seconds)

    def observe_replica(
        self,
        shard: int,
        replica: int,
        endpoint: str,
        seconds: float,
        error: bool = False,
    ) -> None:
        """Record one replica's attempt at serving a shard leg.

        The failover path may try several replicas for one leg, so these
        are *attempt* counts, not request counts: a replica accumulating
        errors here is exactly the skew ``/stats`` should make visible
        (and the leg the client saw still succeeded on a sibling).
        """
        key = (shard, replica, endpoint)
        with self._lock:
            self._replica_counts[key] = self._replica_counts.get(key, 0) + 1
            if error:
                self._replica_errors[key] = self._replica_errors.get(key, 0) + 1
            ring = self._replica_latencies.setdefault(
                key, deque(maxlen=self._window)
            )
            ring.append(seconds)

    def observe_job(
        self, job_type: str, seconds: float, error: bool = False
    ) -> None:
        """Record one background job's run (worker time, not queue wait).

        Jobs are not HTTP requests -- a rebalance may outlive thousands
        of them -- so they get their own block in ``snapshot`` instead of
        skewing the endpoint percentiles.
        """
        with self._lock:
            self._job_counts[job_type] = self._job_counts.get(job_type, 0) + 1
            if error:
                self._job_errors[job_type] = self._job_errors.get(job_type, 0) + 1
            ring = self._job_latencies.setdefault(
                job_type, deque(maxlen=self._window)
            )
            ring.append(seconds)

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self.started_at

    @staticmethod
    def _latency_block(samples: list[float]) -> dict[str, float]:
        millis = [s * 1000.0 for s in samples]
        return {
            "mean": sum(millis) / len(millis) if millis else 0.0,
            "p50": percentile(millis, 50),
            "p90": percentile(millis, 90),
            "p99": percentile(millis, 99),
        }

    def snapshot(self) -> dict[str, object]:
        """The ``/stats`` view: totals plus per-endpoint breakdown."""
        with self._lock:
            endpoints: dict[str, object] = {}
            for endpoint, count in sorted(self._counts.items()):
                endpoints[endpoint] = {
                    "count": count,
                    "errors": self._errors.get(endpoint, 0),
                    "latency_ms": self._latency_block(
                        list(self._latencies.get(endpoint, ()))
                    ),
                }
            result: dict[str, object] = {
                "total": sum(self._counts.values()),
                "total_errors": sum(self._errors.values()),
                "endpoints": endpoints,
            }
            if self._shard_counts:
                shards: dict[str, dict[str, object]] = {}
                for (shard, endpoint), count in sorted(self._shard_counts.items()):
                    shards.setdefault(str(shard), {})[endpoint] = {
                        "count": count,
                        "errors": self._shard_errors.get((shard, endpoint), 0),
                        "latency_ms": self._latency_block(
                            list(self._shard_latencies.get((shard, endpoint), ()))
                        ),
                    }
                result["shards"] = shards
            if self._replica_counts:
                replicas: dict[str, dict[str, dict[str, object]]] = {}
                for (shard, replica, endpoint), count in sorted(
                    self._replica_counts.items()
                ):
                    key = (shard, replica, endpoint)
                    replicas.setdefault(str(shard), {}).setdefault(
                        str(replica), {}
                    )[endpoint] = {
                        "count": count,
                        "errors": self._replica_errors.get(key, 0),
                        "latency_ms": self._latency_block(
                            list(self._replica_latencies.get(key, ()))
                        ),
                    }
                result["replicas"] = replicas
            if self._job_counts:
                jobs: dict[str, object] = {}
                for job_type, count in sorted(self._job_counts.items()):
                    jobs[job_type] = {
                        "count": count,
                        "errors": self._job_errors.get(job_type, 0),
                        "latency_ms": self._latency_block(
                            list(self._job_latencies.get(job_type, ()))
                        ),
                    }
                result["jobs"] = jobs
            return result
