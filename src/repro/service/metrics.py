"""Service metrics: request counters and latency percentiles.

One registry per service instance.  Every handled request records its
endpoint, outcome and wall-clock latency; ``snapshot`` condenses that
into the ``/stats`` payload -- per-endpoint counts, error counts and
p50/p90/p99/mean latency in milliseconds.  Latencies are kept in a
bounded ring per endpoint so a long-lived server's memory stays flat and
the percentiles track recent behaviour rather than all history.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque

from .. import counters as engine_counters

__all__ = ["ServiceMetrics", "percentile", "PROMETHEUS_BUCKETS_MS"]

#: Latency samples retained per endpoint.
DEFAULT_WINDOW = 2048

#: Cumulative histogram bounds (milliseconds) for the Prometheus
#: exposition -- log-ish spacing from sub-ms cache hits to multi-second
#: filescans, plus the implicit +Inf bucket.
PROMETHEUS_BUCKETS_MS = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


def percentile(values: list[float], q: float) -> float:
    """The q-th percentile (0 < q <= 100) by nearest-rank on sorted data."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


class ServiceMetrics:
    """Thread-safe request/latency registry for the query service."""

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self._lock = threading.Lock()
        self._window = window
        self._counts: dict[str, int] = {}
        self._errors: dict[str, int] = {}
        self._latencies: dict[str, deque[float]] = {}
        # Per-shard sub-request observations, keyed (shard index, endpoint).
        self._shard_counts: dict[tuple[int, str], int] = {}
        self._shard_errors: dict[tuple[int, str], int] = {}
        self._shard_latencies: dict[tuple[int, str], deque[float]] = {}
        # Per-replica attempts, keyed (shard index, replica index, endpoint).
        self._replica_counts: dict[tuple[int, int, str], int] = {}
        self._replica_errors: dict[tuple[int, int, str], int] = {}
        self._replica_latencies: dict[tuple[int, int, str], deque[float]] = {}
        # Background jobs, keyed by job type.
        self._job_counts: dict[str, int] = {}
        self._job_errors: dict[str, int] = {}
        self._job_latencies: dict[str, deque[float]] = {}
        # Named lifecycle events with no latency of their own (worker
        # restarts, hedged reads, router deadlines): bare counters.
        self._events: dict[str, int] = {}
        self.started_at = time.monotonic()

    def observe(self, endpoint: str, seconds: float, error: bool = False) -> None:
        """Record one handled request."""
        with self._lock:
            self._counts[endpoint] = self._counts.get(endpoint, 0) + 1
            if error:
                self._errors[endpoint] = self._errors.get(endpoint, 0) + 1
            ring = self._latencies.setdefault(
                endpoint, deque(maxlen=self._window)
            )
            ring.append(seconds)

    def observe_shard(
        self, shard: int, endpoint: str, seconds: float, error: bool = False
    ) -> None:
        """Record one shard's leg of a fanned-out request.

        A sharded ``/search`` is one request at the service level but N
        sub-requests at the storage level; keeping the legs separate lets
        ``/stats`` expose skew (one hot or slow shard) that the merged
        endpoint latency hides.
        """
        key = (shard, endpoint)
        with self._lock:
            self._shard_counts[key] = self._shard_counts.get(key, 0) + 1
            if error:
                self._shard_errors[key] = self._shard_errors.get(key, 0) + 1
            ring = self._shard_latencies.setdefault(
                key, deque(maxlen=self._window)
            )
            ring.append(seconds)

    def observe_replica(
        self,
        shard: int,
        replica: int,
        endpoint: str,
        seconds: float,
        error: bool = False,
    ) -> None:
        """Record one replica's attempt at serving a shard leg.

        The failover path may try several replicas for one leg, so these
        are *attempt* counts, not request counts: a replica accumulating
        errors here is exactly the skew ``/stats`` should make visible
        (and the leg the client saw still succeeded on a sibling).
        """
        key = (shard, replica, endpoint)
        with self._lock:
            self._replica_counts[key] = self._replica_counts.get(key, 0) + 1
            if error:
                self._replica_errors[key] = self._replica_errors.get(key, 0) + 1
            ring = self._replica_latencies.setdefault(
                key, deque(maxlen=self._window)
            )
            ring.append(seconds)

    def observe_job(
        self, job_type: str, seconds: float, error: bool = False
    ) -> None:
        """Record one background job's run (worker time, not queue wait).

        Jobs are not HTTP requests -- a rebalance may outlive thousands
        of them -- so they get their own block in ``snapshot`` instead of
        skewing the endpoint percentiles.
        """
        with self._lock:
            self._job_counts[job_type] = self._job_counts.get(job_type, 0) + 1
            if error:
                self._job_errors[job_type] = self._job_errors.get(job_type, 0) + 1
            ring = self._job_latencies.setdefault(
                job_type, deque(maxlen=self._window)
            )
            ring.append(seconds)

    def event(self, name: str, count: int = 1) -> None:
        """Count one occurrence of a named lifecycle event.

        Used by the worker-process router for the things that are not
        requests: a worker subprocess restarting after a crash, a read
        leg getting hedged, a per-request deadline firing.  Exposed in
        ``/stats`` under ``events`` and in the Prometheus text as
        ``<prefix>_events_total{event="..."}``.
        """
        with self._lock:
            self._events[name] = self._events.get(name, 0) + count

    def event_count(self, name: str) -> int:
        with self._lock:
            return self._events.get(name, 0)

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self.started_at

    @staticmethod
    def _latency_block(samples: list[float]) -> dict[str, float]:
        millis = [s * 1000.0 for s in samples]
        return {
            "mean": sum(millis) / len(millis) if millis else 0.0,
            "p50": percentile(millis, 50),
            "p90": percentile(millis, 90),
            "p95": percentile(millis, 95),
            "p99": percentile(millis, 99),
        }

    def snapshot(self) -> dict[str, object]:
        """The ``/stats`` view: totals plus per-endpoint breakdown."""
        with self._lock:
            endpoints: dict[str, object] = {}
            for endpoint, count in sorted(self._counts.items()):
                endpoints[endpoint] = {
                    "count": count,
                    "errors": self._errors.get(endpoint, 0),
                    "latency_ms": self._latency_block(
                        list(self._latencies.get(endpoint, ()))
                    ),
                }
            result: dict[str, object] = {
                "total": sum(self._counts.values()),
                "total_errors": sum(self._errors.values()),
                "uptime_s": self.uptime_s,
                "endpoints": endpoints,
            }
            if self._shard_counts:
                shards: dict[str, dict[str, object]] = {}
                for (shard, endpoint), count in sorted(self._shard_counts.items()):
                    shards.setdefault(str(shard), {})[endpoint] = {
                        "count": count,
                        "errors": self._shard_errors.get((shard, endpoint), 0),
                        "latency_ms": self._latency_block(
                            list(self._shard_latencies.get((shard, endpoint), ()))
                        ),
                    }
                result["shards"] = shards
            if self._replica_counts:
                replicas: dict[str, dict[str, dict[str, object]]] = {}
                for (shard, replica, endpoint), count in sorted(
                    self._replica_counts.items()
                ):
                    key = (shard, replica, endpoint)
                    replicas.setdefault(str(shard), {}).setdefault(
                        str(replica), {}
                    )[endpoint] = {
                        "count": count,
                        "errors": self._replica_errors.get(key, 0),
                        "latency_ms": self._latency_block(
                            list(self._replica_latencies.get(key, ()))
                        ),
                    }
                result["replicas"] = replicas
            if self._job_counts:
                jobs: dict[str, object] = {}
                for job_type, count in sorted(self._job_counts.items()):
                    jobs[job_type] = {
                        "count": count,
                        "errors": self._job_errors.get(job_type, 0),
                        "latency_ms": self._latency_block(
                            list(self._job_latencies.get(job_type, ()))
                        ),
                    }
                result["jobs"] = jobs
            if self._events:
                result["events"] = dict(sorted(self._events.items()))
            # Engine-work counters are process-global (the engine has no
            # handle on a service instance), so every registry reports
            # the same totals: exact per process, which is also exactly
            # what each worker subprocess should report.
            result["engine"] = engine_counters.global_snapshot()
            return result

    # ------------------------------------------------------------------
    # Prometheus text exposition (format 0.0.4), zero-dependency.
    # ------------------------------------------------------------------
    @staticmethod
    def _escape_label(value: object) -> str:
        return (
            str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )

    @classmethod
    def _labels(cls, pairs: list[tuple[str, object]]) -> str:
        inner = ",".join(
            f'{name}="{cls._escape_label(value)}"' for name, value in pairs
        )
        return "{" + inner + "}" if inner else ""

    @classmethod
    def _histogram_lines(
        cls,
        out: list[str],
        family: str,
        labels: list[tuple[str, object]],
        samples: "deque[float] | list[float]",
    ) -> None:
        millis = sorted(s * 1000.0 for s in samples)
        cumulative = 0
        position = 0
        for bound in PROMETHEUS_BUCKETS_MS:
            while position < len(millis) and millis[position] <= bound:
                position += 1
            cumulative = position
            le = labels + [("le", f"{bound:g}")]
            out.append(f"{family}_bucket{cls._labels(le)} {cumulative}")
        le = labels + [("le", "+Inf")]
        out.append(f"{family}_bucket{cls._labels(le)} {len(millis)}")
        out.append(f"{family}_sum{cls._labels(labels)} {sum(millis):.6f}")
        out.append(f"{family}_count{cls._labels(labels)} {len(millis)}")

    def render_prometheus(self, prefix: str = "staccato") -> str:
        """Render the registry in the Prometheus text format.

        Counters are lifetime totals.  The ``*_duration_ms`` histograms
        are computed from the same bounded per-key sample window the
        percentiles use (:data:`DEFAULT_WINDOW` most recent samples),
        so their ``_count``/``_sum`` are *windowed*, not monotonic --
        fine for scrape-time dashboards of recent latency, but rate()
        over them is meaningless; use the ``*_total`` counters for
        rates.  The whole text is rendered under one lock, so every
        line is a consistent cut of the registry.
        """
        with self._lock:
            out: list[str] = []

            def family(
                name: str,
                help_text: str,
                counts: dict,
                errors: dict,
                latencies: dict,
                label_names: tuple[str, ...],
            ) -> None:
                def pairs(key: object) -> list[tuple[str, object]]:
                    parts = key if isinstance(key, tuple) else (key,)
                    return list(zip(label_names, parts))

                if counts:
                    out.append(f"# HELP {prefix}_{name}_total {help_text}")
                    out.append(f"# TYPE {prefix}_{name}_total counter")
                    for key, count in sorted(counts.items()):
                        out.append(
                            f"{prefix}_{name}_total"
                            f"{self._labels(pairs(key))} {count}"
                        )
                    out.append(
                        f"# HELP {prefix}_{name}_errors_total "
                        f"Errors among {name}."
                    )
                    out.append(f"# TYPE {prefix}_{name}_errors_total counter")
                    for key in sorted(counts):
                        out.append(
                            f"{prefix}_{name}_errors_total"
                            f"{self._labels(pairs(key))} "
                            f"{errors.get(key, 0)}"
                        )
                if latencies:
                    out.append(
                        f"# HELP {prefix}_{name}_duration_ms "
                        f"Latency of {name} (windowed: last "
                        f"{self._window} samples per series)."
                    )
                    out.append(f"# TYPE {prefix}_{name}_duration_ms histogram")
                    for key, ring in sorted(latencies.items()):
                        self._histogram_lines(
                            out,
                            f"{prefix}_{name}_duration_ms",
                            pairs(key),
                            ring,
                        )

            family(
                "requests",
                "Handled requests per endpoint.",
                self._counts,
                self._errors,
                self._latencies,
                ("endpoint",),
            )
            family(
                "shard_requests",
                "Per-shard legs of fanned-out requests.",
                self._shard_counts,
                self._shard_errors,
                self._shard_latencies,
                ("shard", "endpoint"),
            )
            family(
                "replica_attempts",
                "Per-replica attempts (failover may retry).",
                self._replica_counts,
                self._replica_errors,
                self._replica_latencies,
                ("shard", "replica", "endpoint"),
            )
            family(
                "jobs",
                "Background job runs per type.",
                self._job_counts,
                self._job_errors,
                self._job_latencies,
                ("type",),
            )
            engine = engine_counters.global_snapshot()
            for name in sorted(engine):
                out.append(
                    f"# HELP {prefix}_engine_{name}_total "
                    f"{engine_counters.COUNTER_NAMES[name]}"
                )
                out.append(f"# TYPE {prefix}_engine_{name}_total counter")
                out.append(f"{prefix}_engine_{name}_total {engine[name]}")
            if self._events:
                out.append(
                    f"# HELP {prefix}_events_total "
                    "Lifecycle events (worker restarts, hedges, deadlines)."
                )
                out.append(f"# TYPE {prefix}_events_total counter")
                for name, count in sorted(self._events.items()):
                    out.append(
                        f"{prefix}_events_total"
                        f"{self._labels([('event', name)])} {count}"
                    )
            out.append(
                f"# HELP {prefix}_uptime_seconds Service uptime in seconds."
            )
            out.append(f"# TYPE {prefix}_uptime_seconds gauge")
            out.append(f"{prefix}_uptime_seconds {self.uptime_s:.3f}")
            return "\n".join(out) + "\n"
