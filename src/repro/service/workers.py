"""Multi-process shard workers behind a thin fan-out router.

The in-process shard router of :mod:`repro.service.shards` runs every
shard leg inside one Python process, so N shards share one GIL: a
filescan-heavy mix gains concurrency but little parallelism.  This
module promotes each shard to a **worker subprocess** that owns its
StaccatoDB file (plus replicas) outright, while the front end becomes a
thin router that only validates, fans out over local HTTP, and merges:

* :class:`ShardWorkerService` -- the service one worker process runs.
  It *is* a single-shard :class:`~repro.service.shards.
  ShardedQueryService` (same wire contract, byte-identical leg
  semantics), with sidecar files (routing table, job journal, cache
  snapshot) pointed at a private directory so N workers sharing a
  ``shard_dir`` never clobber each other.  An ``EXTRA_ROUTES`` table
  adds the private ``/worker/*`` RPC surface the router needs (owner
  probes, widened SQL legs, rebalance phases, metadata) without
  touching the public route tables.
* ``python -m repro.service.workers`` -- the worker entry point: bind
  an ephemeral port, publish it through an atomic **port file**
  handshake, serve until SIGTERM, then drain gracefully (stop
  accepting, finish every in-flight request, close the database).
* :class:`WorkerHandle` / :class:`WorkerPool` -- the router's view of
  one worker: spawn, readiness, a keep-alive connection pool,
  deadline-aware requests, and a supervisor thread that restarts a
  crashed worker (bumping the shard's generation: a killed worker may
  have committed a batch whose acknowledgement was lost).
* :class:`WorkerRouterService` -- the drop-in replacement for
  ``ShardedQueryService`` the transports serve unchanged
  (``serve --shards N --worker-procs``).  It reuses the in-process
  router's routing table, pending-move bookkeeping, placement registry
  and cache machinery (it subclasses ``ShardedQueryService`` for
  exactly those parts) but every shard leg travels over HTTP with a
  **per-request deadline** (a worker that does not answer in time is a
  503 ``deadline_exceeded``, with a matching trace span and metrics
  event) and optional **hedged reads** (a second attempt races a slow
  first one).  Traced legs propagate ``X-Trace-Id`` and
  ``X-Parent-Span-Id`` over the hop; the worker serializes its span
  subtree into the response envelope and the router grafts it under
  the leg's span, so ``GET /traces/<id>`` shows one stitched tree
  across processes.

Failure contract: reads retry freely across worker restarts within
their deadline (they are idempotent); an ingest leg is retried only
when the connection was provably never established (refused) --
StaccatoDB ingests are atomic per batch, so a mid-request crash means
the batch either fully committed or fully rolled back, and the restart
path bumps the shard's generation to evict any cache entry that could
mask a committed-but-unacknowledged batch.
"""

from __future__ import annotations

import argparse
import contextlib
import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Mapping, Sequence

from ..db.engine import shard_path, shard_paths
from ..db.sql import (
    SqlError,
    aggregate_full_rows,
    execute_select,
    merge_shard_rows,
    parse_select,
    shard_select,
    shard_select_rows,
)
from ..automata.regex import RegexError
from ..query.answers import Answer
from . import trace
from .app import answer_row, check_pattern
from .cache import QueryCache
from .jobs import Job, JobCancelled, JobEngine, atomic_write_json
from .metrics import ServiceMetrics
from .profiler import SamplingProfiler
from .replicas import DEFAULT_COOLDOWN_S, ReplicaUnavailable, ordered_locks
from .shards import (
    DEFAULT_RANGE_WIDTH,
    JOBS_JOURNAL_FILE,
    _MoveGate,
    _OWNER_PROBE_BATCH,
    RoutingTable,
    ShardedQueryService,
    merge_ranked,
)
from .trace import Tracer
from .validation import (
    ApiError,
    validate_index,
    validate_rebalance_params,
    validate_replicas,
    validate_search,
    validate_sql,
)

__all__ = [
    "DEFAULT_DEADLINE_S",
    "DEFAULT_WRITE_DEADLINE_S",
    "DEFAULT_HEDGE_DELAY_S",
    "WORKER_SIDECAR_DIR",
    "ShardWorkerService",
    "WorkerHandle",
    "WorkerPool",
    "WorkerRouterService",
    "main",
]

#: Router-side deadline for read legs (search/sql/probes/health).  A
#: worker that does not answer in time -- wedged, paused, overloaded --
#: is a 503 ``deadline_exceeded``, never an indefinite hang.
DEFAULT_DEADLINE_S = 30.0

#: Deadline for write legs.  Ingest batches and index builds are real
#: work (OCR transduction, postings); they get a far wider budget than
#: the interactive reads.
DEFAULT_WRITE_DEADLINE_S = 600.0

#: How long a read leg waits before racing a second, hedged attempt.
DEFAULT_HEDGE_DELAY_S = 0.5

#: How long the router waits for a spawned worker to publish its port
#: file and answer ``/health``.
WORKER_READY_TIMEOUT_S = 60.0

#: Everything worker-private under the shard directory lives here: the
#: per-worker sidecar directories, port files, and crash logs.
WORKER_SIDECAR_DIR = "workers"

#: Idle keep-alive connections retained per worker.
_POOL_IDLE_CAP = 8

#: Supervisor poll interval for crashed workers.
_SUPERVISE_INTERVAL_S = 0.25

_JSON_HEADERS = {"Content-Type": "application/json"}

#: The ``src`` root the spawned worker needs on PYTHONPATH to import
#: ``repro`` (the router may itself run from an installed checkout).
_SRC_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)


def worker_port_file(shard_dir: str, index: int) -> str:
    """Where worker ``index`` publishes its bound port and pid."""
    return os.path.join(
        shard_dir, WORKER_SIDECAR_DIR, f"worker-{index:04d}.json"
    )


def worker_log_file(shard_dir: str, index: int) -> str:
    return os.path.join(
        shard_dir, WORKER_SIDECAR_DIR, f"worker-{index:04d}.log"
    )


# ======================================================================
# The worker-process service
# ======================================================================
class ShardWorkerService(ShardedQueryService):
    """One shard of a larger layout, served as a standalone process.

    A worker is simply a single-shard ``ShardedQueryService`` whose
    shard file is ``shard-<index>.db`` of the *shared* layout and whose
    sidecar files live in a private per-worker directory.  The public
    endpoints therefore behave exactly like one in-process shard leg --
    ``/search`` returns the shard's top-``num_ans`` ranked answers,
    ``/ingest`` applies one atomic batch under the shard write lock --
    which is what makes the subprocess topology byte-equivalent after
    the router's merge.
    """

    #: The private RPC surface the router drives (transports read this
    #: off the service instance; the public route tables are untouched).
    EXTRA_ROUTES = {
        ("GET", "/worker/meta"): "worker_meta",
        ("POST", "/worker/sql"): "worker_sql",
        ("POST", "/worker/probe"): "worker_probe",
        ("POST", "/worker/rebalance"): "worker_rebalance",
    }

    def __init__(self, shard_dir: str, shard_index: int, **kwargs) -> None:
        if shard_index < 0:
            raise ValueError("shard_index must be >= 0")
        self.worker_shard = shard_index
        kwargs.setdefault("workers", 1)
        super().__init__(
            shard_dir,
            1,
            paths=[shard_path(shard_dir, shard_index)],
            sidecar_dir=os.path.join(
                shard_dir, WORKER_SIDECAR_DIR, f"shard-{shard_index:04d}"
            ),
            **kwargs,
        )
        # The inherited fan-out executor is sized num_shards (= 1 here),
        # which would serialize every concurrent router request through a
        # single thread.  Shard scans spend their time inside SQLite with
        # the GIL released, so give the handler threads real slots.
        self._executor.shutdown(wait=False)
        self._executor = ThreadPoolExecutor(
            max_workers=16, thread_name_prefix="shard-fanout"
        )

    # ------------------------------------------------------------------
    def worker_meta(self) -> dict[str, object]:
        """Cheap metadata probe: lines + index fingerprint + pid."""
        try:
            lines, digest = self._lines_and_index(0)
        except ReplicaUnavailable:
            lines, digest = None, None
        return {
            "shard": self.worker_shard,
            "pid": os.getpid(),
            "lines": lines,
            "index": digest,
        }

    def worker_sql(self, payload: object) -> dict[str, object]:
        """One shard's widened SQL leg (full rows, no cutoff).

        Mirrors the in-process router's leg: ``rows`` selects the
        full-row plan used while a rebalance is in flight (the router
        de-duplicates by DocId and recomputes aggregates itself).
        """
        if not isinstance(payload, Mapping):
            raise ApiError(400, "request body must be a JSON object")
        query = payload.get("query")
        if not isinstance(query, str) or not query.strip():
            raise ApiError(400, "'query' must be a non-empty string")
        approach = payload.get("approach", "staccato")
        full_rows = bool(payload.get("rows"))
        try:
            parsed = parse_select(query)
        except SqlError as exc:
            raise ApiError(400, str(exc), code="sql_error") from exc
        base = shard_select_rows(parsed) if full_rows else shard_select(parsed)

        def evaluate(db) -> list[dict[str, object]]:
            try:
                return execute_select(
                    db, query, approach=approach, num_ans=None, parsed=base
                )
            except (SqlError, RegexError) as exc:
                raise ApiError(400, str(exc), code="sql_error") from exc

        try:
            rows = self._replica_read(0, "sql", evaluate)
        except ReplicaUnavailable as exc:
            raise self._shard_unavailable(self.worker_shard, exc) from exc
        return {"shard": self.worker_shard, "count": len(rows), "rows": rows}

    def worker_probe(self, payload: object) -> dict[str, object]:
        """Which of ``doc_ids`` this shard already holds.

        ``relation`` picks the table: ``master`` (committed lines; the
        ingest owner probe) or ``documents`` (the rebalance re-dispatch
        check of ``_split_moved``).
        """
        if not isinstance(payload, Mapping):
            raise ApiError(400, "request body must be a JSON object")
        doc_ids = payload.get("doc_ids")
        if not isinstance(doc_ids, list) or not all(
            isinstance(d, int) and not isinstance(d, bool) for d in doc_ids
        ):
            raise ApiError(400, "'doc_ids' must be a list of integers")
        relation = payload.get("relation", "master")
        if relation not in ("master", "documents"):
            raise ApiError(400, "'relation' must be 'master' or 'documents'")
        select = (
            "SELECT DISTINCT DocId FROM MasterData"
            if relation == "master"
            else "SELECT DocId FROM Documents"
        )
        ids = sorted(set(doc_ids))

        def probe(db) -> set[int]:
            found: set[int] = set()
            for at in range(0, len(ids), _OWNER_PROBE_BATCH):
                batch = ids[at : at + _OWNER_PROBE_BATCH]
                marks = ",".join("?" * len(batch))
                found.update(
                    row[0]
                    for row in db.conn.execute(
                        f"{select} WHERE DocId IN ({marks})", batch
                    )
                )
            return found

        try:
            present = self._replica_read(0, "ingest", probe)
        except ReplicaUnavailable as exc:
            raise self._shard_unavailable(self.worker_shard, exc) from exc
        return {"shard": self.worker_shard, "present": sorted(present)}

    def worker_rebalance(self, payload: object) -> dict[str, object]:
        """One phase of a cross-process rebalance, on this shard.

        ``snapshot`` lists the documents in a range (source side),
        ``copy`` pulls them in from the source *file* (target side; one
        verified transaction per replica via SQLite ATTACH -- the
        router holds both workers' write locks, so the source file
        cannot change under the copy), ``delete`` drops them.  Copy and
        delete bump this worker's own generation and evict its local
        cache, exactly like the in-process phases.
        """
        if not isinstance(payload, Mapping):
            raise ApiError(400, "request body must be a JSON object")
        action = payload.get("action")
        shard = self.pool.shard(0)
        if action == "snapshot":
            lo, hi = payload.get("doc_lo"), payload.get("doc_hi")
            if not isinstance(lo, int) or not isinstance(hi, int):
                raise ApiError(
                    400, "snapshot needs integer 'doc_lo' and 'doc_hi'"
                )
            with shard.write_lock:
                source_copy = next(
                    (
                        r
                        for r in shard.replicas.replicas()
                        if not r.stale and os.path.exists(r.path)
                    ),
                    None,
                )
                if source_copy is None:
                    raise ApiError(
                        503,
                        f"shard {self.worker_shard} has no live replica "
                        "to move from",
                        code="shard_unavailable",
                    )
                docs = [
                    row[0]
                    for row in source_copy.writer.conn.execute(
                        "SELECT DocId FROM Documents "
                        "WHERE DocId BETWEEN ? AND ? ORDER BY DocId",
                        (lo, hi),
                    )
                ]
                lines = source_copy.writer.conn.execute(
                    "SELECT COUNT(*) FROM MasterData "
                    "WHERE DocId BETWEEN ? AND ?",
                    (lo, hi),
                ).fetchone()[0]
                path = os.path.abspath(source_copy.path)
            return {
                "shard": self.worker_shard,
                "docs": docs,
                "lines": lines,
                "source_path": path,
            }
        if action in ("copy", "delete"):
            doc_ids = payload.get("doc_ids")
            if not isinstance(doc_ids, list) or not all(
                isinstance(d, int) and not isinstance(d, bool)
                for d in doc_ids
            ):
                raise ApiError(400, "'doc_ids' must be a list of integers")
            try:
                if action == "copy":
                    source_path = payload.get("source_path")
                    expect_lines = payload.get("expect_lines")
                    if not isinstance(source_path, str) or not isinstance(
                        expect_lines, int
                    ):
                        raise ApiError(
                            400,
                            "copy needs 'source_path' and integer "
                            "'expect_lines'",
                        )
                    with shard.write_lock:
                        copied = shard.replicas.apply_write(
                            lambda replica: self._rebalance_copy(
                                replica, source_path, doc_ids, expect_lines
                            )
                        )
                    affected: dict[str, object] = {"copied": copied}
                else:
                    with shard.write_lock:
                        shard.replicas.apply_write(
                            lambda replica: self._rebalance_delete(
                                replica, doc_ids
                            )
                        )
                    affected = {"deleted": len(doc_ids)}
            except ReplicaUnavailable as exc:
                raise self._shard_unavailable(self.worker_shard, exc) from exc
            self.pool.bump({0})
            self._invalidate_shards({0})
            return {"shard": self.worker_shard, **affected}
        raise ApiError(400, f"unknown rebalance action {action!r}")


# ======================================================================
# The worker-process entry point
# ======================================================================
def run_worker(args: argparse.Namespace) -> int:
    """Serve one shard until SIGTERM/SIGINT, then drain gracefully."""
    # Imported here, not at module top: the *router* side of this module
    # is imported by repro.service.server, which would otherwise cycle.
    from .server import ServiceHTTPServer, ServiceRequestHandler

    class WorkerRequestHandler(ServiceRequestHandler):
        # An idle keep-alive connection parks its (non-daemonic) handler
        # thread in readline(), and the drain below joins every handler
        # thread -- so bound the idle read.  In-flight handlers are
        # computing, not reading, and never hit this.
        timeout = 5.0

    class WorkerHTTPServer(ServiceHTTPServer):
        # Graceful drain: non-daemonic handler threads are tracked and
        # joined by server_close(), so in-flight requests always finish
        # before the process exits.
        daemon_threads = False

        def __init__(self, address, service) -> None:
            super().__init__(address, service)
            self.RequestHandlerClass = WorkerRequestHandler

    service = ShardWorkerService(
        args.shard_dir,
        args.shard_index,
        replicas=args.replicas,
        k=args.k,
        m=args.m,
        pool_size=args.pool_size,
        cache_size=args.cache_size,
        index_approach=args.index_approach,
        replica_cooldown_s=args.replica_cooldown,
        trace_enabled=not args.no_trace,
        profile_hz=args.profile_hz,
        scan_procs=args.scan_procs,
    )
    server = WorkerHTTPServer((args.host, args.port), service)
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    thread = threading.Thread(
        target=server.serve_forever,
        name=f"shard-worker-{args.shard_index}",
        daemon=True,
    )
    thread.start()

    # A SIGKILLed router never runs WorkerPool.terminate(), so without a
    # watchdog its workers would outlive it forever (re-parented to
    # init, still bound to their ports).  Poll the parent pid: when it
    # changes, the router is gone and this worker drains itself.
    parent = os.getppid()

    def _watch_parent() -> None:
        while not stop.wait(1.0):
            if os.getppid() != parent:
                stop.set()

    if parent > 1:
        threading.Thread(
            target=_watch_parent, name="parent-watchdog", daemon=True
        ).start()
    # The port file is the readiness handshake: written atomically only
    # once the socket is bound and the serve loop is running.
    atomic_write_json(
        args.port_file,
        {
            "port": server.server_address[1],
            "pid": os.getpid(),
            "shard": args.shard_index,
        },
    )
    try:
        stop.wait()
    finally:
        server.shutdown()  # stop accepting new connections
        server.server_close()  # join every in-flight handler (drain)
        service.close()
        with contextlib.suppress(OSError):
            os.remove(args.port_file)
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.workers",
        description="Serve one shard of a layout as a worker process.",
    )
    parser.add_argument("--shard-dir", required=True)
    parser.add_argument("--shard-index", type=int, required=True)
    parser.add_argument("--port-file", required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--replicas", type=int, default=1)
    parser.add_argument("--k", type=int, default=25)
    parser.add_argument("--m", type=int, default=40)
    parser.add_argument("--pool-size", type=int, default=2)
    parser.add_argument("--cache-size", type=int, default=256)
    parser.add_argument("--index-approach", default="staccato")
    parser.add_argument(
        "--replica-cooldown", type=float, default=DEFAULT_COOLDOWN_S
    )
    parser.add_argument("--no-trace", action="store_true")
    parser.add_argument("--profile-hz", type=float, default=0.0)
    parser.add_argument("--scan-procs", type=int, default=None)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    return run_worker(_build_parser().parse_args(argv))


# ======================================================================
# Router side: one worker's lifecycle + connections
# ======================================================================
class WorkerDeadline(Exception):
    """The per-request deadline expired before the worker answered."""


class WorkerUnavailable(Exception):
    """The worker connection failed and the request may not be retried."""


class _NoDelayConnection(http.client.HTTPConnection):
    """An ``HTTPConnection`` with Nagle's algorithm disabled.

    Request bodies and retried requests on a kept-alive socket must not
    wait on the peer's delayed ACK; pair with the server side's
    ``disable_nagle_algorithm`` or a reused connection costs ~40ms per
    round trip.
    """

    def connect(self) -> None:
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class _ConnectionPool:
    """Keep-alive ``http.client`` connections to one worker port."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._lock = threading.Lock()
        self._idle: list[http.client.HTTPConnection] = []
        self._closed = False

    def acquire(self, fresh: bool = False) -> http.client.HTTPConnection:
        if not fresh:
            with self._lock:
                if self._idle:
                    return self._idle.pop()
        return _NoDelayConnection(self.host, self.port, timeout=10)

    def release(self, conn: http.client.HTTPConnection) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < _POOL_IDLE_CAP:
                self._idle.append(conn)
                return
        conn.close()

    def close_all(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()


class WorkerHandle:
    """One worker subprocess, as the router sees it.

    Owns the spawn command, the port-file readiness handshake, the
    connection pool, and the per-request deadline/retry policy.  A
    handle survives its process: :meth:`respawn` starts a fresh
    subprocess on a fresh port and requests that were waiting on
    readiness pick the new one up.
    """

    def __init__(
        self,
        shard_dir: str,
        index: int,
        spawn_flags: Sequence[str],
        ready_timeout_s: float = WORKER_READY_TIMEOUT_S,
    ) -> None:
        self.shard_dir = shard_dir
        self.index = index
        self.spawn_flags = list(spawn_flags)
        self.ready_timeout_s = ready_timeout_s
        self.port_file = worker_port_file(shard_dir, index)
        self.log_file = worker_log_file(shard_dir, index)
        self.proc: subprocess.Popen | None = None
        self.port: int | None = None
        self.restarts = 0
        self.draining = False
        self._conns: _ConnectionPool | None = None
        self._ready = threading.Event()
        self._log_handle = None

    # ------------------------------------------------------------------
    @property
    def pid(self) -> int | None:
        return self.proc.pid if self.proc is not None else None

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def describe(self) -> dict[str, object]:
        return {
            "shard": self.index,
            "pid": self.pid,
            "port": self.port,
            "alive": self.alive,
            "ready": self._ready.is_set(),
            "restarts": self.restarts,
            "draining": self.draining,
        }

    # ------------------------------------------------------------------
    def spawn(self) -> None:
        os.makedirs(os.path.dirname(self.port_file), exist_ok=True)
        with contextlib.suppress(OSError):
            os.remove(self.port_file)
        self._log_handle = open(self.log_file, "ab")
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            _SRC_ROOT + os.pathsep + existing if existing else _SRC_ROOT
        )
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service.workers",
                "--shard-dir",
                self.shard_dir,
                "--shard-index",
                str(self.index),
                "--port-file",
                self.port_file,
                *self.spawn_flags,
            ],
            stdout=self._log_handle,
            stderr=subprocess.STDOUT,
            env=env,
        )
        self._await_ready()

    def _await_ready(self) -> None:
        deadline = time.monotonic() + self.ready_timeout_s
        port: int | None = None
        while time.monotonic() < deadline:
            if self.proc is None or self.proc.poll() is not None:
                raise RuntimeError(
                    f"worker {self.index} exited during startup "
                    f"(rc={self.proc.returncode if self.proc else '?'}); "
                    f"see {self.log_file}"
                )
            try:
                with open(self.port_file, "r", encoding="utf-8") as handle:
                    data = json.load(handle)
                if data.get("pid") == self.proc.pid:
                    port = int(data["port"])
                    break
            except (OSError, json.JSONDecodeError, ValueError, TypeError,
                    KeyError):
                pass
            time.sleep(0.02)
        if port is None:
            self._kill_quietly()
            raise RuntimeError(
                f"worker {self.index} did not publish its port within "
                f"{self.ready_timeout_s:.0f}s; see {self.log_file}"
            )
        self.port = port
        self._conns = _ConnectionPool("127.0.0.1", port)
        # Confirm the serve loop answers before declaring readiness.
        while time.monotonic() < deadline:
            try:
                status, _ = self._one_request("GET", "/health", None, 2.0)
                if status == 200:
                    self._ready.set()
                    return
            except (OSError, http.client.HTTPException, WorkerDeadline):
                pass
            time.sleep(0.05)
        self._kill_quietly()
        raise RuntimeError(
            f"worker {self.index} bound port {port} but never answered "
            f"/health; see {self.log_file}"
        )

    def respawn(self) -> None:
        """Replace a dead process with a fresh one (supervisor path)."""
        self._ready.clear()
        if self._conns is not None:
            self._conns.close_all()
        if self._log_handle is not None:
            with contextlib.suppress(OSError):
                self._log_handle.close()
        self.restarts += 1
        self.spawn()

    def _kill_quietly(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            with contextlib.suppress(ProcessLookupError):
                self.proc.kill()
            with contextlib.suppress(Exception):
                self.proc.wait(timeout=5)

    def terminate(self, drain_timeout_s: float = 15.0) -> None:
        """SIGTERM the worker and wait for its graceful drain."""
        self.draining = True
        self._ready.clear()
        # Close the pooled keep-alive connections *before* waiting: the
        # worker's drain joins their handler threads, which only leave
        # readline() on EOF (or their idle timeout).
        if self._conns is not None:
            self._conns.close_all()
        if self.proc is not None and self.proc.poll() is None:
            with contextlib.suppress(ProcessLookupError):
                self.proc.terminate()
            try:
                self.proc.wait(timeout=drain_timeout_s)
            except subprocess.TimeoutExpired:
                self._kill_quietly()
        if self._log_handle is not None:
            with contextlib.suppress(OSError):
                self._log_handle.close()
        with contextlib.suppress(OSError):
            os.remove(self.port_file)

    # ------------------------------------------------------------------
    def _one_request(
        self,
        method: str,
        path: str,
        body: bytes | None,
        timeout_s: float,
        conn: http.client.HTTPConnection | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> tuple[int, object]:
        """One attempt on one connection; raises on transport failure."""
        pool = self._conns
        owned = conn is None
        if conn is None:
            if pool is None:
                raise ConnectionRefusedError("worker has no port yet")
            conn = pool.acquire(fresh=True)
        if conn.sock is not None:
            conn.sock.settimeout(timeout_s)
        else:
            conn.timeout = timeout_s
        if headers is None:
            headers = _JSON_HEADERS if body else {}
        try:
            conn.request(method, path, body=body, headers=dict(headers))
            response = conn.getresponse()
            data = response.read()
            will_close = response.will_close
            status = response.status
        except Exception:
            conn.close()
            raise
        if owned or will_close:
            conn.close()
        elif pool is not None:
            pool.release(conn)
        try:
            payload = json.loads(data) if data else None
        except json.JSONDecodeError:
            payload = data.decode("utf-8", "replace")
        return status, payload

    def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        *,
        deadline: float,
        idempotent: bool,
        fresh: bool = False,
        headers: Mapping[str, str] | None = None,
    ) -> tuple[int, object]:
        """One request with deadline, readiness wait, and retry policy.

        Idempotent requests retry on any connection-level failure until
        the deadline (a restart mid-request is invisible to the
        client).  Non-idempotent requests run on a *fresh* connection
        and retry only when the connection was refused -- the one case
        where the request provably never reached the worker; any other
        failure raises :class:`WorkerUnavailable`, because an ingest
        batch may have committed before the crash and a blind re-send
        would duplicate its rows.
        """
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerDeadline(
                    f"worker {self.index} did not answer before the deadline"
                )
            if not self._ready.wait(timeout=min(remaining, 0.25)):
                if self.draining:
                    raise WorkerUnavailable(
                        f"worker {self.index} is shutting down"
                    )
                continue  # restarting; re-check the deadline and wait on
            pool = self._conns
            if pool is None:
                continue
            conn = None
            if idempotent and not fresh:
                conn = pool.acquire()
            try:
                return self._one_request(
                    method, path, body, remaining, conn=conn, headers=headers
                )
            except (socket.timeout, TimeoutError) as exc:
                raise WorkerDeadline(str(exc) or "socket timeout") from exc
            except (OSError, http.client.HTTPException) as exc:
                if idempotent or isinstance(exc, ConnectionRefusedError):
                    time.sleep(0.05)
                    continue
                raise WorkerUnavailable(
                    f"{type(exc).__name__}: {exc}"
                ) from exc


class WorkerPool:
    """Spawn, supervise and address the full set of shard workers."""

    def __init__(
        self,
        shard_dir: str,
        num_shards: int,
        spawn_flags: Sequence[str],
        metrics: ServiceMetrics,
        on_restart=None,
        ready_timeout_s: float = WORKER_READY_TIMEOUT_S,
    ) -> None:
        self.metrics = metrics
        self.on_restart = on_restart
        self.handles = [
            WorkerHandle(
                shard_dir, index, spawn_flags, ready_timeout_s=ready_timeout_s
            )
            for index in range(num_shards)
        ]
        self._closed = False
        # Spawn concurrently: each worker pays its own DB/replica
        # startup, and N of those in sequence would dominate boot time.
        with ThreadPoolExecutor(
            max_workers=num_shards, thread_name_prefix="worker-spawn"
        ) as spawner:
            errors = [
                error
                for error in spawner.map(
                    lambda h: self._try_spawn(h), self.handles
                )
                if error is not None
            ]
        if errors:
            self.close()
            raise errors[0]
        self._stop = threading.Event()
        self._supervisor = threading.Thread(
            target=self._supervise, name="worker-supervisor", daemon=True
        )
        self._supervisor.start()

    @staticmethod
    def _try_spawn(handle: WorkerHandle) -> Exception | None:
        try:
            handle.spawn()
            return None
        except Exception as exc:  # noqa: BLE001 - re-raised by __init__
            return exc

    # ------------------------------------------------------------------
    def handle(self, index: int) -> WorkerHandle:
        return self.handles[index]

    def describe(self) -> dict[str, dict[str, object]]:
        return {
            str(handle.index): handle.describe() for handle in self.handles
        }

    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        """Restart crashed workers; a SIGSTOPped worker is *not* dead
        (its process still exists), so only the request deadline guards
        against a wedged one."""
        while not self._stop.wait(_SUPERVISE_INTERVAL_S):
            for handle in self.handles:
                if self._closed or handle.draining:
                    continue
                if handle.proc is None or handle.proc.poll() is None:
                    continue
                self.metrics.event("worker_restart")
                try:
                    handle.respawn()
                except Exception:  # noqa: BLE001 - retried next tick
                    self.metrics.event("worker_restart_failed")
                    continue
                if self.on_restart is not None:
                    with contextlib.suppress(Exception):
                        self.on_restart(handle.index)

    def close(self) -> None:
        self._closed = True
        stop = getattr(self, "_stop", None)
        if stop is not None:
            stop.set()
            self._supervisor.join(timeout=5)
        with ThreadPoolExecutor(
            max_workers=max(1, len(self.handles)),
            thread_name_prefix="worker-drain",
        ) as drainer:
            list(drainer.map(lambda h: h.terminate(), self.handles))


class _RouterGenerations:
    """Duck-types the ``ShardedPool`` generation surface for the router.

    The router is the sole write path, so its counters advance exactly
    like the in-process router's; a worker restart also bumps (the
    dead process may have committed a batch whose acknowledgement was
    lost, and any cached result computed before it must stop matching).
    """

    def __init__(self, num_shards: int) -> None:
        self._lock = threading.Lock()
        self._generations = [0] * num_shards

    def generations(self, scope: Sequence[int]) -> tuple[int, ...]:
        with self._lock:
            return tuple(self._generations[i] for i in scope)

    def bump(self, scope) -> None:
        with self._lock:
            for i in scope:
                self._generations[i] += 1

    def resume_generations(self, generations) -> None:
        with self._lock:
            for i, generation in enumerate(generations):
                if generation is None:
                    continue
                self._generations[i] = max(
                    self._generations[i], int(generation)
                )


# ======================================================================
# The fan-out router over worker subprocesses
# ======================================================================
class WorkerRouterService(ShardedQueryService):
    """``ShardedQueryService``'s wire contract over worker subprocesses.

    Subclasses the in-process router for the parts that are storage-
    independent -- the routing table and its atomic publish, pending-
    move bookkeeping, the placement registry, cache keying/invalidation,
    fan-out executors, the jobs/observability APIs -- and replaces every
    shard leg with an HTTP call to that shard's worker.  ``__init__``
    deliberately does NOT call ``super().__init__``: the base would
    open every shard file in-process, and the workers own those files.
    """

    def __init__(  # noqa: PLR0913 - mirrors ShardedQueryService
        self,
        shard_dir: str,
        num_shards: int,
        k: int = 25,
        m: int = 40,
        pool_size: int = 2,
        cache_size: int = 256,
        index_approach: str = "staccato",
        range_width: int = DEFAULT_RANGE_WIDTH,
        replicas: int = 1,
        replica_cooldown_s: float = DEFAULT_COOLDOWN_S,
        workers: int = 2,
        trace_enabled: bool = True,
        trace_ring: int = trace.DEFAULT_TRACE_RING,
        slow_query_ms: float | None = None,
        slow_log_path: str | None = None,
        access_log_path: str | None = None,
        profile_hz: float = 0.0,
        deadline_s: float = DEFAULT_DEADLINE_S,
        write_deadline_s: float = DEFAULT_WRITE_DEADLINE_S,
        hedge_delay_s: float | None = DEFAULT_HEDGE_DELAY_S,
        worker_ready_timeout_s: float = WORKER_READY_TIMEOUT_S,
        scan_procs: int | None = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("a sharded service needs at least one shard")
        os.makedirs(shard_dir, exist_ok=True)
        self.shard_dir = shard_dir
        self.sidecar_dir = shard_dir
        self.num_shards = num_shards
        self.range_width = range_width
        self.index_approach = index_approach
        self.num_replicas = replicas
        self.paths = shard_paths(shard_dir, num_shards)
        self.deadline_s = float(deadline_s)
        self.write_deadline_s = float(write_deadline_s)
        self.hedge_delay_s = hedge_delay_s
        self.cache = QueryCache(cache_size)
        self.metrics = ServiceMetrics()
        self.tracer = Tracer(
            enabled=trace_enabled,
            ring=trace_ring,
            slow_query_ms=slow_query_ms,
            slow_log_path=slow_log_path,
            access_log_path=access_log_path,
        )
        self._rr_lock = threading.Lock()
        self._rr_next = 0
        self._placements: "OrderedDict[int, int]" = OrderedDict()
        # Unlike the in-process router (whose shard legs are GIL-bound
        # scans, so num_shards threads suffice), these legs just wait on
        # worker sockets -- size the fan-out for concurrent requests or
        # every in-flight client serializes through num_shards threads.
        self._executor = ThreadPoolExecutor(
            max_workers=max(16, 4 * num_shards),
            thread_name_prefix="worker-fanout",
        )
        self._write_executor = ThreadPoolExecutor(
            max_workers=num_shards, thread_name_prefix="worker-writes"
        )
        # Hedged reads need somewhere to park both attempts: the primary
        # occupies one slot for its full (possibly wedged) duration.
        self._hedge_executor = ThreadPoolExecutor(
            max_workers=max(32, 8 * num_shards),
            thread_name_prefix="worker-hedge",
        )
        self._routing_lock = threading.Lock()
        self._inflight_lock = threading.Lock()
        self._inflight: dict[tuple, threading.Event] = {}
        self._routing = RoutingTable.load(shard_dir, num_shards, range_width)
        self._move_gate = _MoveGate()
        self._pending_moves = self._load_pending_moves()
        for pending in self._pending_moves:
            self._move_gate.register(pending)
        self._rebalance_after_copy = None
        self.pool = _RouterGenerations(num_shards)
        # Router-level write locks: a worker serializes its *own* writes,
        # but a rebalance needs its multi-request critical section (and
        # mutual exclusion against ingest/index legs) enforced here.
        self._worker_locks = [
            threading.Lock() for _ in range(num_shards)
        ]
        self.profiler = SamplingProfiler(hz=profile_hz)
        self.profiler.start()
        spawn_flags = [
            "--replicas", str(replicas),
            "--k", str(k),
            "--m", str(m),
            "--pool-size", str(pool_size),
            "--cache-size", str(cache_size),
            "--index-approach", index_approach,
            "--replica-cooldown", str(replica_cooldown_s),
            "--profile-hz", str(profile_hz),
        ]
        if not trace_enabled:
            spawn_flags.append("--no-trace")
        if scan_procs is not None:
            spawn_flags.extend(["--scan-procs", str(scan_procs)])
        try:
            self._workers = WorkerPool(
                shard_dir,
                num_shards,
                spawn_flags,
                self.metrics,
                on_restart=self._worker_restarted,
                ready_timeout_s=worker_ready_timeout_s,
            )
        except Exception:
            self.profiler.stop()
            self._executor.shutdown(wait=False)
            self._write_executor.shutdown(wait=False)
            self._hedge_executor.shutdown(wait=False)
            self.tracer.close()
            raise
        self.jobs = JobEngine(
            self,
            os.path.join(shard_dir, JOBS_JOURNAL_FILE),
            workers=workers,
            metrics=self.metrics,
            tracer=self.tracer,
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.profiler.stop()
        self.jobs.shutdown()
        self._executor.shutdown(wait=True)
        self._write_executor.shutdown(wait=True)
        # Hedge legs may be parked on a wedged worker until their
        # deadline; do not wait for them (their sockets die with the
        # workers below).
        self._hedge_executor.shutdown(wait=False, cancel_futures=True)
        self._workers.close()
        self.tracer.close()

    def _worker_restarted(self, index: int) -> None:
        """A worker came back from a crash: its file may hold a batch
        committed after the last acknowledged write, so cached results
        for the shard can no longer be trusted."""
        self.pool.bump({index})
        self._invalidate_shards({index})

    # ------------------------------------------------------------------
    # The one RPC path every leg goes through
    # ------------------------------------------------------------------
    def _singleflight(self, key: tuple) -> threading.Event | None:
        """Coalesce identical concurrent cache misses onto one fan-out.

        Returns an :class:`~threading.Event` when the caller is the
        leader (it must fan out and then call
        :meth:`_singleflight_done`); returns None after waiting for an
        in-flight leader, in which case the caller re-probes the cache
        and falls back to its own fan-out on a miss (leader failed, or
        the cache is disabled/was invalidated).
        """
        with self._inflight_lock:
            event = self._inflight.get(key)
            if event is None:
                event = threading.Event()
                self._inflight[key] = event
                return event
        event.wait(self.deadline_s)
        return None

    def _singleflight_done(self, key: tuple, event: threading.Event) -> None:
        with self._inflight_lock:
            if self._inflight.get(key) is event:
                del self._inflight[key]
        event.set()

    def _call_worker(
        self,
        index: int,
        method: str,
        path: str,
        body: Mapping[str, object] | None = None,
        *,
        endpoint: str,
        idempotent: bool,
        deadline: float | None = None,
        hedge: bool = False,
    ) -> dict[str, object]:
        """One worker RPC: deadline, tracing, metrics, error mapping.

        A worker's structured error passes through with its status and
        code intact (so a worker-side 400/503 reads exactly like the
        in-process leg's).  Deadline expiry maps to the 503
        ``deadline_exceeded`` contract with a matching trace span and
        metrics event; an unretryable connection failure maps to 503
        ``shard_unavailable``.

        When the router request is traced, the leg propagates the trace
        id plus this span's id over the hop (``X-Trace-Id`` /
        ``X-Parent-Span-Id``); the worker answers with its own span
        subtree in the response envelope, which is grafted under this
        leg's span -- so ``GET /traces/<id>`` on the router shows one
        stitched tree across processes.  Untraced requests send neither
        header and the worker builds no tree at all.
        """
        if deadline is None:
            deadline = time.monotonic() + (
                self.deadline_s if idempotent else self.write_deadline_s
            )
        handle = self._workers.handle(index)
        span = trace.current_span()
        raw = None if body is None else json.dumps(body).encode("utf-8")
        headers: dict[str, str] | None = None
        if span is not None:
            headers = dict(_JSON_HEADERS) if raw else {}
            root = trace.current_root()
            if root is not None and root.trace_id:
                headers[trace.TRACE_HEADER] = root.trace_id
            headers[trace.PARENT_SPAN_HEADER] = span.span_id
        started = time.perf_counter()
        try:
            if hedge and idempotent and self.hedge_delay_s is not None:
                status, payload = self._hedged_request(
                    handle, method, path, raw, deadline, headers=headers
                )
            else:
                status, payload = handle.request(
                    method, path, raw, deadline=deadline,
                    idempotent=idempotent, headers=headers,
                )
        except WorkerDeadline as exc:
            self.metrics.event("deadline_exceeded")
            self.metrics.observe_shard(
                index, endpoint, time.perf_counter() - started, error=True
            )
            with trace.span("deadline_exceeded", shard=index):
                pass
            raise ApiError(
                503,
                f"shard {index} worker did not answer within its deadline: "
                f"{exc}",
                code="deadline_exceeded",
            ) from exc
        except WorkerUnavailable as exc:
            self.metrics.observe_shard(
                index, endpoint, time.perf_counter() - started, error=True
            )
            raise ApiError(
                503,
                f"shard {index} worker unavailable: {exc}",
                code="shard_unavailable",
            ) from exc
        if isinstance(payload, dict) and "trace" in payload:
            worker_trace = payload.pop("trace", None)
            if span is not None and isinstance(worker_trace, Mapping):
                subtree = worker_trace.get("spans")
                if isinstance(subtree, Mapping):
                    span.graft(subtree, worker=index)
        if status >= 400:
            self.metrics.observe_shard(
                index, endpoint, time.perf_counter() - started, error=True
            )
            error = payload.get("error") if isinstance(payload, dict) else None
            if isinstance(error, Mapping) and "message" in error:
                raise ApiError(
                    status,
                    str(error.get("message")),
                    code=str(error.get("code", "worker_error")),
                )
            raise ApiError(
                502,
                f"shard {index} worker answered {status} with an "
                "unexpected body",
                code="worker_error",
            )
        self.metrics.observe_shard(
            index, endpoint, time.perf_counter() - started
        )
        return payload if isinstance(payload, dict) else {}

    def _hedged_request(
        self,
        handle: WorkerHandle,
        method: str,
        path: str,
        raw: bytes | None,
        deadline: float,
        headers: Mapping[str, str] | None = None,
    ) -> tuple[int, object]:
        """Race a second attempt against a slow first one; first answer
        wins.  Both attempts share the request deadline; the loser's
        connection is simply closed when it eventually finishes."""
        primary = self._hedge_executor.submit(
            handle.request, method, path, raw,
            deadline=deadline, idempotent=True, headers=headers,
        )
        delay = min(self.hedge_delay_s, max(0.0, deadline - time.monotonic()))
        done, _ = wait([primary], timeout=delay)
        if done:
            return primary.result()
        self.metrics.event("hedged_request")
        backup = self._hedge_executor.submit(
            handle.request, method, path, raw,
            deadline=deadline, idempotent=True, fresh=True, headers=headers,
        )
        pending = {primary, backup}
        error: Exception | None = None
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                try:
                    return future.result()
                except Exception as exc:  # noqa: BLE001 - re-raised below
                    error = exc
        assert error is not None
        raise error

    # ------------------------------------------------------------------
    # Seams the inherited machinery calls into
    # ------------------------------------------------------------------
    def _worker_meta(self, index: int) -> dict[str, object]:
        try:
            meta = self._call_worker(
                index, "GET", "/worker/meta", endpoint="stats",
                idempotent=True,
            )
        except ApiError as exc:
            raise ReplicaUnavailable(str(exc)) from exc
        if meta.get("lines") is None:
            raise ReplicaUnavailable(
                f"shard {index} worker has no live replica"
            )
        return meta

    def _shard_lines(self, index: int) -> int:
        return self._worker_meta(index)["lines"]

    def _lines_and_index(self, index: int):
        meta = self._worker_meta(index)
        return meta["lines"], meta.get("index")

    def _existing_owners(self, doc_ids: Sequence[int]) -> dict[int, int]:
        if self.num_shards == 1 or not doc_ids:
            return {}
        ids = sorted(set(doc_ids))
        deadline = time.monotonic() + self.deadline_s
        body = {"doc_ids": ids, "relation": "master"}

        def leg(index: int) -> set[int]:
            result = self._call_worker(
                index, "POST", "/worker/probe", body, endpoint="ingest",
                idempotent=True, deadline=deadline,
            )
            return set(result.get("present", ()))

        owners: dict[int, int] = {}
        for index, present in enumerate(
            self._fan_out(range(self.num_shards), leg)
        ):
            for doc_id in present:
                owners.setdefault(doc_id, index)
        return owners

    # ------------------------------------------------------------------
    # Ingest (the shared ingest() body drives these two overrides)
    # ------------------------------------------------------------------
    def _split_moved_remote(self, index: int, docs):
        """The worker-topology twin of ``_split_moved``: the presence
        probe travels over the worker's ``/worker/probe`` RPC."""
        routing = self.routing
        stay, overridden = [], []
        for doc in docs:
            override = routing.override_owner(doc.doc_id)
            if override is None or override == index:
                stay.append(doc)
            else:
                overridden.append(doc)
        if not overridden:
            return stay, []
        result = self._call_worker(
            index,
            "POST",
            "/worker/probe",
            {
                "doc_ids": [doc.doc_id for doc in overridden],
                "relation": "documents",
            },
            endpoint="ingest",
            idempotent=True,
        )
        present = set(result.get("present", ()))
        moved = [doc for doc in overridden if doc.doc_id not in present]
        stay.extend(doc for doc in overridden if doc.doc_id in present)
        return stay, moved

    def _ingest_leg(self, groups, request):
        def leg(index: int):
            docs = groups[index]
            with self._worker_locks[index]:
                stay, moved = self._split_moved_remote(index, docs)
                if stay:
                    body: dict[str, object] = {
                        "dataset": request.dataset.name,
                        "documents": [
                            {
                                "doc_id": doc.doc_id,
                                "name": doc.name,
                                "year": doc.year,
                                "loss": doc.loss,
                                "lines": list(doc.lines),
                            }
                            for doc in stay
                        ],
                        "ocr_seed": request.ocr_seed,
                        "approaches": list(request.approaches),
                        "route": "range",
                    }
                    if request.workers is not None:
                        body["workers"] = request.workers
                    result = self._call_worker(
                        index, "POST", "/ingest", body, endpoint="ingest",
                        idempotent=False,
                    )
                    count = int(result.get("ingested_lines", 0))
                    total = int(result.get("total_lines", 0))
                else:
                    count = 0
                    try:
                        total = self._shard_lines(index)
                    except ReplicaUnavailable as exc:
                        raise self._shard_unavailable(index, exc) from exc
            return index, count, total, moved

        return leg

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def search(self, payload: object) -> dict[str, object]:
        with trace.span("validate"):
            request = validate_search(payload)
            scope = self._scope(request.shards)
            check_pattern(request.pattern)
        key = (
            "search",
            scope,
            self.pool.generations(scope),
            request.pattern,
            request.approach,
            request.plan,
            request.num_ans,
        )
        cached = self.cache.get(key)
        if cached is not None:
            return {**cached, "cached": True}
        flight = self._singleflight(key)
        if flight is None:
            cached = self.cache.get(key)
            if cached is not None:
                return {**cached, "cached": True}
        try:
            started = time.perf_counter()
            deadline = time.monotonic() + self.deadline_s
            body = {
                "pattern": request.pattern,
                "approach": request.approach,
                "plan": request.plan,
                "num_ans": request.num_ans,
            }

            def leg(index: int) -> tuple[int, str, list[Answer]]:
                result = self._call_worker(
                    index, "POST", "/search", body, endpoint="search",
                    idempotent=True, deadline=deadline, hedge=True,
                )
                answers = [
                    Answer(
                        line_id=row["line_id"],
                        doc_id=row["doc_id"],
                        line_no=row["line_no"],
                        probability=row["probability"],
                    )
                    for row in result.get("answers", ())
                ]
                return index, result.get("plan", "filescan"), answers

            with self._move_gate.read():
                with trace.span("router", shards=len(scope)):
                    results = self._fan_out(scope, leg)
            with trace.span("merge"):
                merged = merge_ranked(
                    [(index, answers) for index, _, answers in results],
                    request.num_ans,
                )
            labels = {label for _, label, _ in results}
            result = {
                "pattern": request.pattern,
                "approach": request.approach,
                "plan": labels.pop() if len(labels) == 1 else "mixed",
                "plans": {str(index): label for index, label, _ in results},
                "shards": list(scope),
                "count": len(merged),
                "answers": [
                    {**answer_row(answer), "shard": shard}
                    for shard, answer in merged
                ],
                "elapsed_s": time.perf_counter() - started,
            }
            self.cache.put(key, result)
        finally:
            if flight is not None:
                self._singleflight_done(key, flight)
        return {**result, "cached": False}

    def sql(self, payload: object) -> dict[str, object]:
        with trace.span("validate"):
            request = validate_sql(payload)
            scope = self._scope(request.shards)
        key = (
            "sql",
            scope,
            self.pool.generations(scope),
            request.query,
            request.approach,
            request.num_ans,
        )
        cached = self.cache.get(key)
        if cached is not None:
            return {**cached, "cached": True}
        try:
            parsed = parse_select(request.query)
        except SqlError as exc:
            raise ApiError(400, str(exc), code="sql_error") from exc
        flight = self._singleflight(key)
        if flight is None:
            cached = self.cache.get(key)
            if cached is not None:
                return {**cached, "cached": True}
        try:
            started = time.perf_counter()
            deadline = time.monotonic() + self.deadline_s
            scope_set = set(scope)
            with self._move_gate.read() as moves:
                move_safe = any(
                    m_src in scope_set and m_dst in scope_set
                    for _, _, m_src, m_dst in moves
                )
                body = {
                    "query": request.query,
                    "approach": request.approach,
                    "rows": move_safe,
                }

                def leg(index: int) -> list[dict[str, object]]:
                    result = self._call_worker(
                        index, "POST", "/worker/sql", body, endpoint="sql",
                        idempotent=True, deadline=deadline, hedge=True,
                    )
                    return result.get("rows", [])

                with trace.span("router", shards=len(scope)):
                    shard_rows = self._fan_out(scope, leg)
            try:
                with trace.span("merge"):
                    if move_safe:
                        seen_docs: set[object] = set()
                        deduped: list[dict[str, object]] = []
                        for rows_ in shard_rows:
                            for row in rows_:
                                if row["DocId"] in seen_docs:
                                    continue
                                seen_docs.add(row["DocId"])
                                deduped.append(row)
                        if parsed.is_aggregate:
                            rows = aggregate_full_rows(parsed, deduped)
                        else:
                            rows = merge_shard_rows(
                                parsed, [deduped], num_ans=request.num_ans
                            )
                    else:
                        rows = merge_shard_rows(
                            parsed, shard_rows, num_ans=request.num_ans
                        )
            except SqlError as exc:
                raise ApiError(400, str(exc), code="sql_error") from exc
            result = {
                "query": request.query,
                "approach": request.approach,
                "shards": list(scope),
                "count": len(rows),
                "rows": rows,
                "elapsed_s": time.perf_counter() - started,
            }
            self.cache.put(key, result)
        finally:
            if flight is not None:
                self._singleflight_done(key, flight)
        return {**result, "cached": False}

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def index(self, payload: object) -> dict[str, object]:
        request = validate_index(payload)
        scope = self._scope(request.shards)
        started = time.perf_counter()
        # ``wait`` keeps the worker-side call synchronous: POST /index is
        # the ``rebuild_index`` job endpoint, and the router's own job
        # runner is already the one holding a worker slot for the build.
        body = {
            "terms": list(request.terms),
            "approach": request.approach,
            "wait": True,
        }

        def leg(index: int) -> tuple[int, int, bool]:
            with self._worker_locks[index]:
                result = self._call_worker(
                    index, "POST", "/index", body, endpoint="index",
                    idempotent=False,
                )
            shards = result.get("shards")
            block = shards.get("0", {}) if isinstance(shards, dict) else {}
            return (
                index,
                int(block.get("postings", 0)),
                bool(block.get("reloaded", False)),
            )

        results, error = self._fan_out_writes(scope, leg)
        touched = {index for index, _, _ in results}
        self.pool.bump(touched)
        evicted = self._invalidate_shards(touched)
        if error is not None:
            raise error
        return {
            "approach": request.approach,
            "terms": len(request.terms),
            "postings": sum(postings for _, postings, _ in results),
            "shards": {
                str(index): {"postings": postings, "reloaded": reloaded}
                for index, postings, reloaded in results
            },
            "evicted_cache_entries": evicted,
            "elapsed_s": time.perf_counter() - started,
        }

    def replicas(self, payload: object) -> dict[str, object]:
        request = validate_replicas(payload)
        if request.shard >= self.num_shards:
            raise ApiError(
                400,
                f"unknown shard {request.shard}; this service has "
                f"{self.num_shards} shards (0..{self.num_shards - 1})",
                code="unknown_shard",
            )
        started = time.perf_counter()
        body: dict[str, object] = {"action": request.action, "shard": 0}
        if request.replica is not None:
            body["replica"] = request.replica
        with self._worker_locks[request.shard]:
            try:
                result = self._call_worker(
                    request.shard, "POST", "/replicas", body,
                    endpoint="replicas", idempotent=False,
                )
            except ApiError as exc:
                # The worker knows itself as shard 0; its error text must
                # name the global shard the client addressed.
                raise ApiError(
                    exc.status,
                    exc.message.replace(
                        "shard 0", f"shard {request.shard}", 1
                    ),
                    code=exc.code,
                ) from exc
        result = dict(result)
        # The worker knows itself as shard 0; restore the global index
        # (and the router's own timing) for the client-facing payload.
        result["shard"] = request.shard
        result["elapsed_s"] = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    # Rebalance across processes
    # ------------------------------------------------------------------
    def job_rebalance(self, job: Job, params) -> dict[str, object]:
        """Move one DocId range between two *worker* shards.

        Phase-for-phase the in-process rebalance (announce, snapshot,
        copy+verify, swap, delete, invalidate), with the copy executed
        by the target worker via SQLite ATTACH of the source shard
        *file* -- the router holds both workers' write locks, so no
        write can land on either side mid-move.
        """
        request = validate_rebalance_params(params, self.num_shards)
        lo, hi = request.doc_lo, request.doc_hi
        src, dst = request.source, request.target
        job.check_cancelled()
        move = (lo, hi, src, dst)
        self._move_gate.begin(move)
        moved_docs: list[int] = []
        moved_lines = 0
        evicted = 0
        delete_incomplete = False
        converged = False
        copy_landed = False

        def rebalance_rpc(index: int, body: dict) -> dict[str, object]:
            return self._call_worker(
                index, "POST", "/worker/rebalance", body,
                endpoint="rebalance", idempotent=False,
            )

        try:
            with ordered_locks(
                (src, self._worker_locks[src]), (dst, self._worker_locks[dst])
            ):
                job.update(progress=0.1)
                snapshot = rebalance_rpc(
                    src, {"action": "snapshot", "doc_lo": lo, "doc_hi": hi}
                )
                moved_docs = list(snapshot.get("docs", ()))
                moved_lines = int(snapshot.get("lines", 0))
                source_path = snapshot.get("source_path")
                job.update(
                    progress=0.2, docs=len(moved_docs), lines=moved_lines
                )
                job.check_cancelled()
                copied_docs: list[int] = []
                if moved_docs:
                    self._record_pending_move(move)
                    copied = rebalance_rpc(
                        dst,
                        {
                            "action": "copy",
                            "source_path": source_path,
                            "doc_ids": moved_docs,
                            "expect_lines": moved_lines,
                        },
                    )
                    copied_docs = list(copied.get("copied", ()))
                    copy_landed = True
                job.update(progress=0.6)
                if self._rebalance_after_copy is not None:
                    self._rebalance_after_copy(job)
                if job.cancel_requested:
                    if copied_docs:
                        try:
                            rebalance_rpc(
                                dst,
                                {"action": "delete", "doc_ids": copied_docs},
                            )
                        except ApiError as exc:
                            delete_incomplete = True
                            raise ApiError(
                                503 if exc.status == 503 else 500,
                                f"rebalance {job.id} was cancelled but "
                                f"could not roll the copies back off "
                                f"shard {dst}: {exc.message}; re-submit the "
                                "same rebalance to converge (forward)",
                                code="rebalance_incomplete",
                            ) from exc
                    raise JobCancelled(
                        f"rebalance {job.id} cancelled after copy; "
                        "target rolled back, routing unchanged"
                    )
                self._publish_routing(self.routing.with_move(lo, hi, dst))
                job.update(progress=0.75)
                if moved_docs:
                    try:
                        self._move_gate.barrier()
                        rebalance_rpc(
                            src, {"action": "delete", "doc_ids": moved_docs}
                        )
                    except Exception as exc:
                        delete_incomplete = True
                        status = (
                            503
                            if isinstance(exc, ApiError) and exc.status == 503
                            else 500
                        )
                        message = (
                            exc.message if isinstance(exc, ApiError) else str(exc)
                        )
                        raise ApiError(
                            status,
                            f"rebalance switched ownership of "
                            f"[{lo}, {hi}] to shard {dst} but could not "
                            f"delete the moved rows from shard {src}: "
                            f"{message}; re-submit the same rebalance once "
                            f"the shard is writable to converge",
                            code="rebalance_incomplete",
                        ) from exc
                job.update(progress=0.9)
            with self._rr_lock:
                for doc_id in moved_docs:
                    self._placements.pop(doc_id, None)
            converged = True
        finally:
            if copy_landed:
                self.pool.bump({src, dst})
                evicted = self._invalidate_shards({src, dst})
            if not delete_incomplete:
                self._finish_move(move, converged)
        job.update(progress=1.0, evicted_cache_entries=evicted)
        return {
            "doc_lo": lo,
            "doc_hi": hi,
            "source": src,
            "target": dst,
            "moved_docs": len(moved_docs),
            "moved_lines": moved_lines,
            "evicted_cache_entries": evicted,
        }

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def health(self) -> dict[str, object]:
        deadline = time.monotonic() + self.deadline_s

        def leg(index: int):
            try:
                return self._call_worker(
                    index, "GET", "/health", endpoint="health",
                    idempotent=True, deadline=deadline,
                )
            except ApiError:
                return None

        results = self._fan_out(tuple(range(self.num_shards)), leg)
        per_shard: dict[str, int | None] = {}
        replica_health: dict[str, dict[str, int]] = {}
        degraded = False
        for index, shard_health in enumerate(results):
            if shard_health is None:
                per_shard[str(index)] = None
                replica_health[str(index)] = {"healthy": 0, "attached": 0}
                degraded = True
                continue
            lines = (shard_health.get("shard_lines") or {}).get("0")
            per_shard[str(index)] = lines
            if shard_health.get("status") != "ok" or lines is None:
                degraded = True
            replica_health[str(index)] = (
                shard_health.get("replicas") or {}
            ).get("0", {"healthy": 0, "attached": 0})
        return {
            "status": "degraded" if degraded else "ok",
            "db": self.shard_dir,
            "num_shards": self.num_shards,
            "lines": sum(n for n in per_shard.values() if n is not None),
            "shard_lines": per_shard,
            "replicas": replica_health,
            "workers": self._workers.describe(),
            "uptime_s": self.metrics.uptime_s,
        }

    @staticmethod
    def _reindex_labels(node, index: int):
        """The worker knows itself as shard 0; its pool/replica labels
        must name the global shard in the client-facing payload (the
        in-process router's labels do, and /stats readers key on them).
        """
        if isinstance(node, dict):
            return {
                key: (
                    f"shard-{index}/{value[len('shard-0/'):]}"
                    if key == "label"
                    and isinstance(value, str)
                    and value.startswith("shard-0/")
                    else WorkerRouterService._reindex_labels(value, index)
                )
                for key, value in node.items()
            }
        if isinstance(node, list):
            return [
                WorkerRouterService._reindex_labels(item, index)
                for item in node
            ]
        return node

    def stats(self) -> dict[str, object]:
        def leg(index: int):
            try:
                return self._call_worker(
                    index, "GET", "/stats", endpoint="stats", idempotent=True
                )
            except ApiError:
                return None

        results = self._fan_out(tuple(range(self.num_shards)), leg)
        shard_stats: list[dict[str, object]] = []
        for index, worker_stats in enumerate(results):
            entry: dict[str, object] = {
                "index": index,
                "path": self.paths[index],
                "generation": self.pool.generations((index,))[0],
            }
            blocks = (
                worker_stats.get("shards")
                if isinstance(worker_stats, dict)
                else None
            )
            block = blocks[0] if isinstance(blocks, list) and blocks else {}
            for field in (
                "pool", "replicas", "lines", "storage_bytes", "kernel_memo"
            ):
                entry[field] = self._reindex_labels(block.get(field), index)
            # Engine-work counters are per *process*: the worker's DP and
            # probe work shows up in its own /stats (requests.engine),
            # which the router surfaces per shard here.
            requests_block = (
                worker_stats.get("requests")
                if isinstance(worker_stats, dict)
                else None
            )
            entry["engine"] = (
                requests_block.get("engine")
                if isinstance(requests_block, dict)
                else None
            )
            shard_stats.append(entry)
        return {
            "db": {
                "shard_dir": self.shard_dir,
                "num_shards": self.num_shards,
                "range_width": self.range_width,
                "num_replicas": self.num_replicas,
                "lines": sum(
                    s["lines"] for s in shard_stats if s["lines"] is not None
                ),
            },
            "shards": shard_stats,
            "routing": self.routing.to_json(),
            "cache": self.cache.stats(),
            "jobs": self.jobs.stats(),
            "requests": self.metrics.snapshot(),
            "workers": self._workers.describe(),
            "uptime_s": self.metrics.uptime_s,
        }

    def traces_get(self, trace_id: str):
        """One span tree by id, looking through to the workers.

        Requests the router handled live in its own ring (stitched, so
        worker subtrees are already inside).  A trace id minted *by a
        worker* -- e.g. read off a worker log line -- lives only in that
        worker's ring, which is unreachable from outside the machine;
        proxy the lookup so the router's ``/traces/<id>`` is a superset
        of every process's ring.
        """
        record = self.tracer.get(trace_id)
        if record is not None:
            return record
        deadline = time.monotonic() + self.deadline_s
        probed: list[int] = []
        for handle in self._workers.handles:
            probed.append(handle.index)
            try:
                status, payload = handle.request(
                    "GET",
                    f"/traces/{trace_id}",
                    deadline=deadline,
                    idempotent=True,
                )
            except (WorkerDeadline, WorkerUnavailable):
                continue
            if status == 200 and isinstance(payload, dict):
                return {**payload, "worker": handle.index}
        raise ApiError(
            404,
            f"unknown trace {trace_id!r} (ring keeps the last "
            f"{self.tracer.ring_size})",
            "unknown_trace",
            hint=(
                "not in the router ring; shard workers "
                f"{probed} were probed and do not hold it either"
            ),
        )


if __name__ == "__main__":
    sys.exit(main())
