"""QueryService: the transport-independent core of the query service.

One instance owns everything the HTTP layer needs:

* a :class:`~repro.service.pool.ConnectionPool` of readers;
* a single writer connection behind a write lock (SQLite allows one
  writer; serializing batches in-process avoids busy-retry storms);
* the :class:`~repro.service.cache.QueryCache`, invalidated after every
  committed batch;
* the :class:`~repro.service.metrics.ServiceMetrics` registry.

Methods mirror the endpoints 1:1 (``ingest``/``search``/``sql``/
``stats``/``health``) and speak plain dicts, so tests can exercise the
full service logic without a socket, and the HTTP handler stays a thin
JSON shim.
"""

from __future__ import annotations

import threading
import time

from ..db.engine import APPROACHES, StaccatoDB
from ..db.planner import execute_plan
from ..db.sql import SqlError, execute_select
from ..ocr.engine import SimulatedOcrEngine
from ..query.answers import Answer
from .cache import QueryCache
from .metrics import ServiceMetrics
from .pool import ConnectionPool
from .validation import (
    ApiError,
    validate_ingest,
    validate_search,
    validate_sql,
)

__all__ = ["QueryService"]


def _answer_row(answer: Answer) -> dict[str, object]:
    return {
        "line_id": answer.line_id,
        "doc_id": answer.doc_id,
        "line_no": answer.line_no,
        "probability": answer.probability,
    }


class QueryService:
    """The StaccatoDB query service over one database file."""

    def __init__(
        self,
        path: str,
        k: int = 25,
        m: int = 40,
        pool_size: int = 4,
        cache_size: int = 256,
        index_approach: str = "staccato",
    ) -> None:
        if path == ":memory:":
            raise ValueError(
                "the service needs a database file shared across "
                "connections; ':memory:' databases are per-connection"
            )
        self.path = path
        self.index_approach = index_approach
        # The writer goes first so a fresh file gets its schema (and WAL
        # mode, letting pooled readers proceed during a batch commit)
        # before any reader connects.
        self._writer = StaccatoDB(path, k=k, m=m, check_same_thread=False)
        try:
            self._writer.conn.execute("PRAGMA journal_mode=WAL")
        except Exception:
            pass  # e.g. filesystems without mmap/locking; rollback mode works
        self._write_lock = threading.Lock()
        self.pool = ConnectionPool(
            path, size=pool_size, k=k, m=m, index_approach=index_approach
        )
        self.cache = QueryCache(cache_size)
        self.metrics = ServiceMetrics()

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.pool.close()
        self._writer.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def ingest(self, payload: object) -> dict[str, object]:
        """Ingest one batch of documents; atomic, invalidates the cache."""
        request = validate_ingest(payload)
        ocr = SimulatedOcrEngine(seed=request.ocr_seed)
        started = time.perf_counter()
        with self._write_lock:
            count = self._writer.ingest(
                request.dataset,
                ocr,
                approaches=request.approaches,
                workers=request.workers,
            )
            total = self._writer.num_lines
        # The committed batch changes every query's universe: drop all
        # cached results so readers never serve pre-batch answers.
        self.cache.invalidate()
        return {
            "dataset": request.dataset.name,
            "ingested_lines": count,
            "total_lines": total,
            "elapsed_s": time.perf_counter() - started,
        }

    # ------------------------------------------------------------------
    def search(self, payload: object) -> dict[str, object]:
        """LIKE/regex search, served from cache when possible."""
        request = validate_search(payload)
        key = (
            "search",
            self.path,
            request.pattern,
            request.approach,
            request.plan,
            request.num_ans,
        )
        cached = self.cache.get(key)
        if cached is not None:
            return {**cached, "cached": True}
        generation = self.cache.generation
        started = time.perf_counter()
        with self.pool.acquire() as db:
            if request.plan == "auto":
                plan, answers = execute_plan(
                    db,
                    request.pattern,
                    approach=request.approach,
                    num_ans=request.num_ans,
                )
                plan_label = f"auto:{plan.kind}"
            elif request.plan == "indexed":
                answers = db.indexed_search(
                    request.pattern,
                    approach=request.approach,
                    num_ans=request.num_ans,
                )
                plan_label = (
                    "indexed"
                    if db.index_covers(request.pattern, request.approach)
                    else "indexed:filescan-fallback"
                )
            else:
                answers = db.search(
                    request.pattern,
                    approach=request.approach,
                    num_ans=request.num_ans,
                )
                plan_label = "filescan"
        result = {
            "pattern": request.pattern,
            "approach": request.approach,
            "plan": plan_label,
            "count": len(answers),
            "answers": [_answer_row(a) for a in answers],
            "elapsed_s": time.perf_counter() - started,
        }
        self.cache.put(key, result, generation=generation)
        return {**result, "cached": False}

    # ------------------------------------------------------------------
    def sql(self, payload: object) -> dict[str, object]:
        """The probabilistic SELECT surface of :mod:`repro.db.sql`."""
        request = validate_sql(payload)
        key = ("sql", self.path, request.query, request.approach, request.num_ans)
        cached = self.cache.get(key)
        if cached is not None:
            return {**cached, "cached": True}
        generation = self.cache.generation
        started = time.perf_counter()
        with self.pool.acquire() as db:
            try:
                rows = execute_select(
                    db,
                    request.query,
                    approach=request.approach,
                    num_ans=request.num_ans,
                )
            except SqlError as exc:
                raise ApiError(400, str(exc), code="sql_error") from exc
        result = {
            "query": request.query,
            "approach": request.approach,
            "count": len(rows),
            "rows": rows,
            "elapsed_s": time.perf_counter() - started,
        }
        self.cache.put(key, result, generation=generation)
        return {**result, "cached": False}

    # ------------------------------------------------------------------
    def health(self) -> dict[str, object]:
        """Liveness: the database answers a trivial query."""
        with self.pool.acquire() as db:
            lines = db.num_lines
        return {
            "status": "ok",
            "db": self.path,
            "lines": lines,
            "uptime_s": self.metrics.uptime_s,
        }

    def stats(self) -> dict[str, object]:
        """Operational snapshot: db, cache, pool and request metrics."""
        with self.pool.acquire() as db:
            lines = db.num_lines
            storage = {a: db.storage_bytes(a) for a in APPROACHES}
        return {
            "db": {"path": self.path, "lines": lines, "storage_bytes": storage},
            "cache": self.cache.stats(),
            "pool": self.pool.stats(),
            "requests": self.metrics.snapshot(),
            "uptime_s": self.metrics.uptime_s,
        }
