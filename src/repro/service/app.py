"""QueryService: the transport-independent core of the query service.

One instance owns everything the HTTP layer needs:

* a :class:`~repro.service.pool.ConnectionPool` of readers;
* a single writer connection behind a write lock (SQLite allows one
  writer; serializing batches in-process avoids busy-retry storms);
* the :class:`~repro.service.cache.QueryCache`, invalidated after every
  committed batch;
* the :class:`~repro.service.metrics.ServiceMetrics` registry.

Methods mirror the endpoints 1:1 (``ingest``/``search``/``sql``/
``stats``/``health``) and speak plain dicts, so tests can exercise the
full service logic without a socket, and the HTTP handler stays a thin
JSON shim.
"""

from __future__ import annotations

import json
import os
import threading
import time

from ..automata.regex import RegexError
from ..db.engine import APPROACHES, StaccatoDB
from ..db.planner import execute_plan
from ..db.sql import SqlError, execute_select
from ..ocr.engine import SimulatedOcrEngine
from ..query.answers import Answer
from ..query.like import compile_like
from ..query.memo import KernelMemo
from . import trace
from .cache import QueryCache, key_from_json, key_to_json
from .jobs import Job, JobEngine, JobsApi, atomic_write_json
from .metrics import ServiceMetrics
from .pool import ConnectionPool
from .profiler import SamplingProfiler
from .trace import ObservabilityApi, Tracer
from .validation import (
    ApiError,
    SearchRequest,
    validate_index,
    validate_ingest,
    validate_search,
    validate_sql,
)

__all__ = [
    "QueryService",
    "run_search_plan",
    "answer_row",
    "check_pattern",
]


def check_pattern(pattern: str) -> None:
    """Reject an uncompilable pattern up front, as a structured 400.

    Compilation is deterministic, so letting a bad pattern reach the
    evaluation path would fail *every* replica it touches -- on the
    sharded service that would trip circuit breakers and 503 healthy
    shards over what is purely a client mistake.
    """
    try:
        compile_like(pattern)
    except RegexError as exc:
        raise ApiError(400, str(exc), code="bad_pattern") from exc


def index_fingerprint(db: StaccatoDB) -> list:
    """A cheap digest of the persisted dictionary index.

    Line counts alone cannot tell a warm start that ``POST /index`` ran
    between snapshot and restart -- a rebuild changes plan labels and
    projected evaluations without touching ``MasterData``.  The digest
    covers the postings (count plus key/offset sums) and the ``IndexMeta``
    record; a rebuild over different terms or approach changes it, while
    an identical rebuild (deterministic postings) legitimately keeps
    cached results valid.  Shaped as nested lists so it JSON round-trips
    comparably.
    """
    totals = db.conn.execute(
        "SELECT COUNT(*), COALESCE(SUM(DataKey), 0), COALESCE(SUM(Offset), 0) "
        "FROM InvertedIndex"
    ).fetchone()
    meta = db.conn.execute(
        "SELECT Key, Value FROM IndexMeta ORDER BY Key"
    ).fetchall()
    return [list(totals), [list(row) for row in meta]]


def answer_row(answer: Answer) -> dict[str, object]:
    """One :class:`Answer` as the JSON row the API returns."""
    return {
        "line_id": answer.line_id,
        "doc_id": answer.doc_id,
        "line_no": answer.line_no,
        "probability": answer.probability,
    }


def run_search_plan(
    db: StaccatoDB, request: SearchRequest
) -> tuple[str, list[Answer]]:
    """Execute one search request's plan against one database.

    Shared by the single-database service and every shard leg of the
    sharded service; returns the plan label actually used plus the
    ranked answers.
    """
    with trace.span("plan", requested=request.plan) as plan_span:
        if request.plan == "auto":
            plan, answers = execute_plan(
                db,
                request.pattern,
                approach=request.approach,
                num_ans=request.num_ans,
            )
            label = f"auto:{plan.kind}"
        elif request.plan == "indexed":
            answers = db.indexed_search(
                request.pattern,
                approach=request.approach,
                num_ans=request.num_ans,
            )
            label = (
                "indexed"
                if db.index_covers(request.pattern, request.approach)
                else "indexed:filescan-fallback"
            )
        else:
            answers = db.search(
                request.pattern,
                approach=request.approach,
                num_ans=request.num_ans,
            )
            label = "filescan"
        if plan_span is not None:
            plan_span.annotate(plan=label, answers=len(answers))
    return label, answers


def reject_shard_scope(shards: tuple[int, ...] | None) -> None:
    """Single-database services cannot honour a ``shards`` scope."""
    if shards is not None:
        raise ApiError(
            400,
            "this service is not sharded; remove the 'shards' field "
            "or query a service started with --shards",
            code="not_sharded",
        )


class QueryService(JobsApi, ObservabilityApi):
    """The StaccatoDB query service over one database file."""

    def __init__(
        self,
        path: str,
        k: int = 25,
        m: int = 40,
        pool_size: int = 4,
        cache_size: int = 256,
        index_approach: str = "staccato",
        workers: int = 2,
        trace_enabled: bool = True,
        trace_ring: int = trace.DEFAULT_TRACE_RING,
        slow_query_ms: float | None = None,
        slow_log_path: str | None = None,
        access_log_path: str | None = None,
        profile_hz: float = 0.0,
        scan_procs: int | None = None,
    ) -> None:
        if path == ":memory:":
            raise ValueError(
                "the service needs a database file shared across "
                "connections; ':memory:' databases are per-connection"
            )
        self.path = path
        self.index_approach = index_approach
        # One kernel memo for this database: shared by the writer (whose
        # ingests bump its generation clock) and every pooled reader.
        self.kernel_memo = KernelMemo()
        # The writer goes first so a fresh file gets its schema (and WAL
        # mode, letting pooled readers proceed during a batch commit)
        # before any reader connects.
        self._writer = StaccatoDB(
            path,
            k=k,
            m=m,
            check_same_thread=False,
            kernel_memo=self.kernel_memo,
        )
        try:
            self._writer.conn.execute("PRAGMA journal_mode=WAL")
        except Exception:
            pass  # e.g. filesystems without mmap/locking; rollback mode works
        self._write_lock = threading.Lock()
        self.pool = ConnectionPool(
            path,
            size=pool_size,
            k=k,
            m=m,
            index_approach=index_approach,
            kernel_memo=self.kernel_memo,
            scan_procs=scan_procs,
        )
        self.cache = QueryCache(cache_size)
        self.metrics = ServiceMetrics()
        self.tracer = Tracer(
            enabled=trace_enabled,
            ring=trace_ring,
            slow_query_ms=slow_query_ms,
            slow_log_path=slow_log_path,
            access_log_path=access_log_path,
        )
        self.jobs = JobEngine(
            self,
            f"{path}.jobs.json",
            workers=workers,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self.profiler = SamplingProfiler(hz=profile_hz)
        self.profiler.start()

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.profiler.stop()
        self.jobs.shutdown()
        self.pool.close()
        self._writer.close()
        self.tracer.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def ingest(self, payload: object) -> dict[str, object]:
        """Ingest one batch of documents; atomic, invalidates the cache."""
        request = validate_ingest(payload)
        ocr = SimulatedOcrEngine(seed=request.ocr_seed)
        started = time.perf_counter()
        with self._write_lock:
            count = self._writer.ingest(
                request.dataset,
                ocr,
                approaches=request.approaches,
                workers=request.workers,
            )
            total = self._writer.num_lines
        # The committed batch changes every query's universe: drop all
        # cached results so readers never serve pre-batch answers.
        self.cache.invalidate()
        return {
            "dataset": request.dataset.name,
            "ingested_lines": count,
            "total_lines": total,
            "elapsed_s": time.perf_counter() - started,
        }

    # ------------------------------------------------------------------
    def search(self, payload: object) -> dict[str, object]:
        """LIKE/regex search, served from cache when possible."""
        with trace.span("validate"):
            request = validate_search(payload)
            reject_shard_scope(request.shards)
            check_pattern(request.pattern)
        key = (
            "search",
            self.path,
            request.pattern,
            request.approach,
            request.plan,
            request.num_ans,
        )
        cached = self.cache.get(key)
        if cached is not None:
            return {**cached, "cached": True}
        generation = self.cache.generation
        started = time.perf_counter()
        with self.pool.acquire() as db:
            plan_label, answers = run_search_plan(db, request)
        result = {
            "pattern": request.pattern,
            "approach": request.approach,
            "plan": plan_label,
            "count": len(answers),
            "answers": [answer_row(a) for a in answers],
            "elapsed_s": time.perf_counter() - started,
        }
        self.cache.put(key, result, generation=generation)
        return {**result, "cached": False}

    # ------------------------------------------------------------------
    def sql(self, payload: object) -> dict[str, object]:
        """The probabilistic SELECT surface of :mod:`repro.db.sql`."""
        with trace.span("validate"):
            request = validate_sql(payload)
            reject_shard_scope(request.shards)
        key = ("sql", self.path, request.query, request.approach, request.num_ans)
        cached = self.cache.get(key)
        if cached is not None:
            return {**cached, "cached": True}
        generation = self.cache.generation
        started = time.perf_counter()
        with self.pool.acquire() as db:
            try:
                with trace.span("sql_execute") as sql_span:
                    rows = execute_select(
                        db,
                        request.query,
                        approach=request.approach,
                        num_ans=request.num_ans,
                    )
                    if sql_span is not None:
                        sql_span.annotate(rows=len(rows))
            except (SqlError, RegexError) as exc:
                raise ApiError(400, str(exc), code="sql_error") from exc
        result = {
            "query": request.query,
            "approach": request.approach,
            "count": len(rows),
            "rows": rows,
            "elapsed_s": time.perf_counter() - started,
        }
        self.cache.put(key, result, generation=generation)
        return {**result, "cached": False}

    # ------------------------------------------------------------------
    def index(self, payload: object) -> dict[str, object]:
        """Build/rebuild the dictionary index and broadcast to the pool.

        The out-of-band CLI step (``python -m repro index``) over HTTP:
        rebuilds the inverted index on the writer, reloads every pooled
        reader's anchor trie, and invalidates the cache (indexed plans
        and plan labels may change under the new index).
        """
        request = validate_index(payload)
        reject_shard_scope(request.shards)
        started = time.perf_counter()
        with self._write_lock:
            postings = self._writer.build_index(
                request.terms, approach=request.approach
            )
        reloaded = self.pool.reload_index(request.approach)
        self.cache.invalidate()
        return {
            "approach": request.approach,
            "terms": len(request.terms),
            "postings": postings,
            "reloaded": reloaded,
            "elapsed_s": time.perf_counter() - started,
        }

    # ------------------------------------------------------------------
    def replicas(self, payload: object) -> dict[str, object]:
        """``POST /replicas`` is a shard-router admin endpoint."""
        raise ApiError(
            400,
            "this service is not sharded; replicas belong to a service "
            "started with --shards (optionally --replicas N)",
            code="not_sharded",
        )

    # ------------------------------------------------------------------
    def validate_job_params(self, job_type, params):
        if job_type == "rebalance":
            raise ApiError(
                400,
                "this service is not sharded; rebalance jobs belong to a "
                "service started with --shards",
                code="not_sharded",
            )
        if job_type == "rebuild_index":
            # One parse covers both checks (shape and shard scope);
            # skip the base class's second validate_index pass.
            reject_shard_scope(validate_index(params).shards)
            return dict(params)
        return super().validate_job_params(job_type, params)

    @property
    def snapshot_path(self) -> str:
        """The warm-start sidecar the ``cache_snapshot`` job writes."""
        return f"{self.path}.cache.json"

    def job_cache_snapshot(self, job: Job, params) -> dict[str, object]:
        """Runner: serialize the query cache for the next warm start.

        The snapshot records the line count it was taken at; a warm
        start only replays it when the database still has that many
        lines (any write in between means the cached results describe a
        different relation, so the whole snapshot is stale).
        """
        job.check_cancelled()
        with self.pool.acquire() as db:
            lines = db.num_lines
            index = index_fingerprint(db)
        entries = self.cache.export_entries()
        payload = {
            "kind": "single",
            "db": self.path,
            "lines": lines,
            "index": index,
            "created_at": time.time(),
            "entries": [
                [key_to_json(key), value] for key, value in entries
            ],
        }
        size = atomic_write_json(self.snapshot_path, payload)
        job.update(progress=1.0, entries=len(entries), bytes=size)
        return {
            "path": self.snapshot_path,
            "entries": len(entries),
            "bytes": size,
        }

    def warm_start(self) -> int:
        """Reload the last ``cache_snapshot`` (``serve --warm-start``).

        Returns the number of entries restored; 0 when there is no
        snapshot, it belongs to another database, or the data has moved
        on since it was taken (stale snapshots are dropped whole --
        cheaper to recompute than to risk serving pre-write answers).
        """
        if not os.path.exists(self.snapshot_path):
            return 0
        # A snapshot that cannot be parsed -- or is structurally off in
        # any way -- is dropped whole: warm starting is best-effort and
        # must never keep the service from coming up.
        try:
            with open(self.snapshot_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            if data.get("kind") != "single" or data.get("db") != self.path:
                return 0
            with self.pool.acquire() as db:
                if db.num_lines != data.get("lines"):
                    return 0
                if index_fingerprint(db) != data.get("index"):
                    return 0  # an index rebuild invalidated the entries
            entries = [
                (key_from_json(key), value)
                for key, value in data.get("entries", [])
            ]
        except (OSError, json.JSONDecodeError, ValueError, TypeError,
                KeyError, AttributeError):
            return 0
        return self.cache.load_entries(entries)

    # ------------------------------------------------------------------
    def health(self) -> dict[str, object]:
        """Liveness: the database answers a trivial query."""
        with self.pool.acquire() as db:
            lines = db.num_lines
        return {
            "status": "ok",
            "db": self.path,
            "lines": lines,
            "uptime_s": self.metrics.uptime_s,
        }

    def stats(self) -> dict[str, object]:
        """Operational snapshot: db, cache, pool and request metrics."""
        with self.pool.acquire() as db:
            lines = db.num_lines
            storage = {a: db.storage_bytes(a) for a in APPROACHES}
        return {
            "db": {"path": self.path, "lines": lines, "storage_bytes": storage},
            "cache": self.cache.stats(),
            "kernel_memo": self.kernel_memo.stats(),
            "pool": self.pool.stats(),
            "jobs": self.jobs.stats(),
            "requests": self.metrics.snapshot(),
            "uptime_s": self.metrics.uptime_s,
        }
