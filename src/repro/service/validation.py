"""Request validation and structured API errors.

Every endpoint parses its JSON body through one of the ``validate_*``
functions below, which either return a typed request object or raise
:class:`ApiError`.  The HTTP layer turns an ApiError into a structured
response body::

    {"error": {"code": "bad_request", "message": "..."}}

with the error's HTTP status, so clients can branch on ``code`` without
scraping messages.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..db.engine import APPROACHES
from ..ocr.corpus import Dataset, Document

__all__ = [
    "ApiError",
    "SearchRequest",
    "SqlRequest",
    "IngestRequest",
    "IndexRequest",
    "ReplicaRequest",
    "JobSubmitRequest",
    "RebalanceParams",
    "validate_search",
    "validate_sql",
    "validate_ingest",
    "validate_index",
    "validate_replicas",
    "validate_job_submit",
    "validate_rebalance_params",
    "PLANS",
    "ROUTES",
    "REPLICA_ACTIONS",
]

PLANS = ("filescan", "indexed", "auto")

#: Representations an ingest batch may request.
INGEST_APPROACHES = ("map", "kmap", "fullsfa", "staccato")

#: Representations the dictionary index may cover (paper Section 4).
INDEX_APPROACHES = ("kmap", "staccato")

#: How a sharded service assigns ingested documents to shards.
ROUTES = ("range", "round_robin")

#: What ``POST /replicas`` can do to one shard's replica set.
REPLICA_ACTIONS = ("attach", "detach")


class ApiError(Exception):
    """A client-visible error with an HTTP status and stable code."""

    #: Set by the HTTP framing layer on errors that leave request bytes
    #: unread on the socket (bad/oversized Content-Length, truncated
    #: body): the transport must drop keep-alive after responding, or
    #: the leftover bytes would be parsed as the next request.
    close_connection = False

    def __init__(
        self,
        status: int,
        message: str,
        code: str = "bad_request",
        hint: str | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.hint = hint

    def to_payload(self) -> dict[str, Any]:
        error: dict[str, Any] = {"code": self.code, "message": self.message}
        if self.hint is not None:
            error["hint"] = self.hint
        return {"error": error}


@dataclass(frozen=True, slots=True)
class SearchRequest:
    pattern: str
    approach: str
    plan: str
    num_ans: int | None
    shards: tuple[int, ...] | None = None


@dataclass(frozen=True, slots=True)
class SqlRequest:
    query: str
    approach: str
    num_ans: int | None
    shards: tuple[int, ...] | None = None


@dataclass(frozen=True, slots=True)
class IngestRequest:
    dataset: Dataset
    ocr_seed: int
    approaches: tuple[str, ...]
    workers: int | None
    route: str = "range"


@dataclass(frozen=True, slots=True)
class IndexRequest:
    terms: tuple[str, ...]
    approach: str
    shards: tuple[int, ...] | None = None


@dataclass(frozen=True, slots=True)
class ReplicaRequest:
    action: str
    shard: int
    replica: int | None = None


@dataclass(frozen=True, slots=True)
class JobSubmitRequest:
    type: str
    params: Mapping[str, Any]
    wait: bool = False


@dataclass(frozen=True, slots=True)
class RebalanceParams:
    doc_lo: int
    doc_hi: int
    source: int
    target: int


# ----------------------------------------------------------------------
def _mapping(payload: Any) -> Mapping[str, Any]:
    if not isinstance(payload, Mapping):
        raise ApiError(400, "request body must be a JSON object")
    return payload


def _required_str(payload: Mapping[str, Any], key: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value:
        raise ApiError(400, f"{key!r} must be a non-empty string")
    return value


def _choice(
    payload: Mapping[str, Any], key: str, choices: Sequence[str], default: str
) -> str:
    value = payload.get(key, default)
    if value not in choices:
        raise ApiError(
            400, f"{key!r} must be one of {list(choices)}, got {value!r}"
        )
    return value


def _optional_int(
    payload: Mapping[str, Any],
    key: str,
    default: int | None,
    minimum: int | None = None,
) -> int | None:
    value = payload.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ApiError(400, f"{key!r} must be an integer or null")
    if minimum is not None and value < minimum:
        raise ApiError(400, f"{key!r} must be >= {minimum}")
    return value


def _optional_shards(payload: Mapping[str, Any]) -> tuple[int, ...] | None:
    """The optional ``shards`` scope: a list of shard indices, or None.

    Only a sharded service honours the scope; the single-database service
    rejects a scoped request with ``not_sharded``.
    """
    value = payload.get("shards")
    if value is None:
        return None
    if not isinstance(value, list) or not value:
        raise ApiError(400, "'shards' must be a non-empty list of shard indices")
    indices: list[int] = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, int) or item < 0:
            raise ApiError(400, "'shards' entries must be integers >= 0")
        if item not in indices:
            indices.append(item)
    return tuple(sorted(indices))


# ----------------------------------------------------------------------
def validate_search(payload: Any) -> SearchRequest:
    """``POST /search`` body -> SearchRequest."""
    body = _mapping(payload)
    return SearchRequest(
        pattern=_required_str(body, "pattern"),
        approach=_choice(body, "approach", APPROACHES, "staccato"),
        plan=_choice(body, "plan", PLANS, "filescan"),
        num_ans=_optional_int(body, "num_ans", default=100, minimum=1),
        shards=_optional_shards(body),
    )


def validate_sql(payload: Any) -> SqlRequest:
    """``POST /sql`` body -> SqlRequest."""
    body = _mapping(payload)
    return SqlRequest(
        query=_required_str(body, "query"),
        approach=_choice(body, "approach", APPROACHES, "staccato"),
        num_ans=_optional_int(body, "num_ans", default=100, minimum=1),
        shards=_optional_shards(body),
    )


def validate_index(payload: Any) -> IndexRequest:
    """``POST /index`` body -> IndexRequest."""
    body = _mapping(payload)
    raw_terms = body.get("terms")
    if (
        not isinstance(raw_terms, list)
        or not raw_terms
        or not all(isinstance(t, str) and t for t in raw_terms)
    ):
        raise ApiError(400, "'terms' must be a non-empty list of dictionary words")
    return IndexRequest(
        terms=tuple(raw_terms),
        approach=_choice(body, "approach", INDEX_APPROACHES, "staccato"),
        shards=_optional_shards(body),
    )


def validate_replicas(payload: Any) -> ReplicaRequest:
    """``POST /replicas`` body -> ReplicaRequest."""
    body = _mapping(payload)
    action = body.get("action")
    if action not in REPLICA_ACTIONS:
        raise ApiError(
            400,
            f"'action' must be one of {list(REPLICA_ACTIONS)}, got {action!r}",
        )
    shard = _optional_int(body, "shard", default=None, minimum=0)
    if shard is None:
        raise ApiError(400, "'shard' must be an integer shard index")
    replica = _optional_int(body, "replica", default=None, minimum=0)
    if action == "detach" and replica is None:
        raise ApiError(400, "'replica' names which replica to detach")
    return ReplicaRequest(action=action, shard=shard, replica=replica)


def validate_job_submit(payload: Any) -> JobSubmitRequest:
    """``POST /jobs`` body -> JobSubmitRequest.

    Membership of ``type`` in the registry -- and the shape of
    ``params`` -- are the owning service's call (``rebalance`` only
    exists on the sharded service), so only the envelope is checked
    here.
    """
    body = _mapping(payload)
    job_type = _required_str(body, "type")
    params = body.get("params", {})
    if not isinstance(params, Mapping):
        raise ApiError(400, "'params' must be a JSON object")
    wait = body.get("wait", False)
    if not isinstance(wait, bool):
        raise ApiError(400, "'wait' must be a boolean")
    return JobSubmitRequest(type=job_type, params=params, wait=wait)


def validate_rebalance_params(
    params: Mapping[str, Any], num_shards: int
) -> RebalanceParams:
    """``rebalance`` job params -> RebalanceParams (sharded service)."""
    body = _mapping(params)
    doc_lo = _optional_int(body, "doc_lo", default=None, minimum=0)
    doc_hi = _optional_int(body, "doc_hi", default=None, minimum=0)
    if doc_lo is None or doc_hi is None:
        raise ApiError(
            400, "rebalance needs integer 'doc_lo' and 'doc_hi' bounds"
        )
    if doc_hi < doc_lo:
        raise ApiError(400, "'doc_hi' must be >= 'doc_lo'")
    source = _optional_int(body, "source", default=None, minimum=0)
    target = _optional_int(body, "target", default=None, minimum=0)
    if source is None or target is None:
        raise ApiError(
            400, "rebalance needs integer 'source' and 'target' shard indices"
        )
    for name, index in (("source", source), ("target", target)):
        if index >= num_shards:
            raise ApiError(
                400,
                f"unknown {name} shard {index}; this service has "
                f"{num_shards} shards (0..{num_shards - 1})",
                code="unknown_shard",
            )
    if source == target:
        raise ApiError(400, "'source' and 'target' must be different shards")
    return RebalanceParams(
        doc_lo=doc_lo, doc_hi=doc_hi, source=source, target=target
    )


def validate_ingest(payload: Any) -> IngestRequest:
    """``POST /ingest`` body -> IngestRequest (a one-batch Dataset)."""
    body = _mapping(payload)
    raw_docs = body.get("documents")
    if not isinstance(raw_docs, list) or not raw_docs:
        raise ApiError(400, "'documents' must be a non-empty list")
    name = body.get("dataset", "service-batch")
    if not isinstance(name, str) or not name:
        raise ApiError(400, "'dataset' must be a non-empty string")
    documents: list[Document] = []
    seen_ids: set[int] = set()
    for position, raw in enumerate(raw_docs):
        doc = _mapping(raw)
        doc_id = _optional_int(doc, "doc_id", default=None)
        if doc_id is None:
            raise ApiError(400, f"documents[{position}] needs an integer 'doc_id'")
        if doc_id in seen_ids:
            raise ApiError(400, f"duplicate doc_id {doc_id} in batch")
        seen_ids.add(doc_id)
        lines = doc.get("lines")
        if (
            not isinstance(lines, list)
            or not lines
            or not all(isinstance(line, str) for line in lines)
        ):
            raise ApiError(
                400,
                f"documents[{position}].lines must be a non-empty list of strings",
            )
        loss = doc.get("loss", 0.0)
        if isinstance(loss, bool) or not isinstance(loss, (int, float)):
            raise ApiError(400, f"documents[{position}].loss must be a number")
        doc_name = doc.get("name", f"doc-{doc_id}")
        if not isinstance(doc_name, str):
            raise ApiError(400, f"documents[{position}].name must be a string")
        documents.append(
            Document(
                doc_id=doc_id,
                name=doc_name,
                year=_optional_int(doc, "year", default=0) or 0,
                loss=float(loss),
                lines=tuple(lines),
            )
        )
    raw_approaches = body.get("approaches", ["kmap", "fullsfa", "staccato"])
    if not isinstance(raw_approaches, list) or not raw_approaches:
        raise ApiError(400, "'approaches' must be a non-empty list")
    bad = [a for a in raw_approaches if a not in INGEST_APPROACHES]
    if bad:
        raise ApiError(
            400, f"unknown approaches {bad!r}; choose from {list(INGEST_APPROACHES)}"
        )
    workers = _optional_int(body, "workers", default=None, minimum=1)
    if workers is not None:
        # Client-supplied, so bound it: each worker is a forked process.
        workers = min(workers, os.cpu_count() or 1)
    return IngestRequest(
        dataset=Dataset(name=name, documents=documents),
        ocr_seed=_optional_int(body, "ocr_seed", default=0) or 0,
        approaches=tuple(raw_approaches),
        workers=workers,
        route=_choice(body, "route", ROUTES, "range"),
    )
