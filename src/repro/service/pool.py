"""A pool of read-only StaccatoDB connections for concurrent serving.

SQLite connections are cheap but not free (each open replays the schema
DDL, and the dictionary trie must be reloaded per connection), and the
default ``check_same_thread`` guard forbids sharing one connection across
handler threads.  The pool opens ``size`` connections to the same
database file with ``check_same_thread=False``, guards each with its own
lock, and hands exclusive use to one thread at a time: acquired
connections are removed from the free list *and* hold their per
connection lock until released, so no two threads ever interleave on the
same cursor.

Writes never go through the pool -- the service keeps one dedicated
writer connection behind a write lock (see :mod:`repro.service.app`);
pooled readers run in SQLite autocommit mode and therefore observe each
committed batch immediately.

A replicated shard keeps one pool per replica file (see
:mod:`repro.service.replicas`); the ``label`` tells the pools apart in
``/stats`` (``shard-0/r1``), and ``stats`` reports the backing ``path``
so a replica's occupancy is attributable to its file.
"""

from __future__ import annotations

import contextlib
import threading
from collections import deque
from typing import Iterator

from ..db.engine import StaccatoDB
from ..query.memo import KernelMemo
from . import trace

__all__ = ["ConnectionPool", "PoolClosed"]


class PoolClosed(RuntimeError):
    """Raised when acquiring from a pool that has been closed."""


class _PooledConnection:
    """One reusable connection plus the lock asserting exclusive use."""

    __slots__ = ("db", "lock")

    def __init__(self, db: StaccatoDB) -> None:
        self.db = db
        self.lock = threading.Lock()


class ConnectionPool:
    """Fixed-size pool of ``StaccatoDB`` handles over one database file."""

    def __init__(
        self,
        path: str,
        size: int = 4,
        k: int = 25,
        m: int = 40,
        index_approach: str = "staccato",
        label: str | None = None,
        kernel_memo: KernelMemo | None = None,
        scan_procs: int | None = None,
    ) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.path = path
        self.size = size
        #: Display name in ``/stats`` (the shard router labels per shard).
        self.label = label
        # One memo shared by every pooled reader (and, in the service, the
        # writer): any connection's evaluation warms all the others.
        self._entries = [
            _PooledConnection(
                StaccatoDB(
                    path,
                    k=k,
                    m=m,
                    check_same_thread=False,
                    kernel_memo=kernel_memo,
                    scan_procs=scan_procs,
                )
            )
            for _ in range(size)
        ]
        for entry in self._entries:
            entry.db.load_index(index_approach)
        self._free: deque[_PooledConnection] = deque(self._entries)
        self._cond = threading.Condition()
        self._closed = False
        self.checkouts = 0

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def acquire(self, timeout: float | None = None) -> Iterator[StaccatoDB]:
        """Check a connection out for exclusive use by the calling thread."""
        with trace.span("pool_wait") as wait:
            entry = self._checkout(timeout)
            if wait is not None and self.label is not None:
                wait.annotate(pool=self.label)
        try:
            yield entry.db
        finally:
            self._checkin(entry)

    def _checkout(self, timeout: float | None) -> _PooledConnection:
        with self._cond:
            ok = self._cond.wait_for(
                lambda: self._closed or self._free, timeout=timeout
            )
            if self._closed:
                raise PoolClosed("connection pool is closed")
            if not ok:
                raise TimeoutError(
                    f"no free connection after {timeout:.1f}s "
                    f"(pool size {self.size})"
                )
            entry = self._free.popleft()
            self.checkouts += 1
        entry.lock.acquire()
        # close() may have taken this entry's lock (and closed its db)
        # between the pop above and our acquire; re-check before handing
        # the connection out.
        with self._cond:
            if self._closed:
                entry.lock.release()
                raise PoolClosed("connection pool is closed")
        return entry

    def _checkin(self, entry: _PooledConnection) -> None:
        entry.lock.release()
        with self._cond:
            self._free.append(entry)
            self._cond.notify()

    # ------------------------------------------------------------------
    def reload_index(self, approach: str | None = None) -> bool:
        """Refresh every connection's anchor trie (after a rebuild).

        The approach recorded in ``IndexMeta`` wins; ``approach`` is only
        a fallback for databases predating that record.  Returns whether
        a persisted index was found (so ``/index`` can confirm the
        broadcast took)."""
        found = False
        for entry in self._entries:
            with entry.lock:
                found = entry.db.load_index(approach) or found
        return found

    def stats(self) -> dict[str, object]:
        """Pool occupancy snapshot for the ``/stats`` endpoint."""
        with self._cond:
            snapshot: dict[str, object] = {
                "size": self.size,
                "in_use": self.size - len(self._free),
                "checkouts": self.checkouts,
                "path": self.path,
            }
            if self.label is not None:
                snapshot["label"] = self.label
            return snapshot

    def close(self) -> None:
        """Close every connection; subsequent acquires raise PoolClosed."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        for entry in self._entries:
            with entry.lock:
                entry.db.close()
