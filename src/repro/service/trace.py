"""Span-based request tracing for the query service.

Aggregate percentiles (``/stats``) say *that* a request was slow; a
trace says *where*.  Every handled request records a tree of
:class:`Span`\\ s -- body read, validation, cache probe, plan choice,
per-shard fan-out legs, per-replica attempts (with breaker state and
failover retries), executor queue wait, engine scan detail, merge and
serialization -- into a bounded in-memory ring queryable over HTTP:

* ``GET /traces`` -- recent trace summaries, filterable by
  ``endpoint``, ``min_ms`` and ``error``;
* ``GET /traces/<id>`` -- one full span tree;
* ``"trace": true`` on any POST body -- echo the request's own tree
  inline in the response.

Propagation is a :mod:`contextvars` variable plus an ``X-Trace-Id``
header.  One subtlety carries the whole design: **context variables do
not flow across executor hops** -- ``loop.run_in_executor`` and
``ThreadPoolExecutor.map`` run callables in whatever context the worker
thread last had.  Every fan-out point therefore captures the caller's
current span explicitly and re-installs it in the worker via
:func:`attach` (the sharded fan-out, the asyncio dispatch executor and
the job workers all do this).

The tracer also owns the two structured logs built on the same span
data: the slow-query log (``serve --slow-query-ms N``; JSON lines with
the span breakdown) and the access log (``serve --access-log PATH``;
one JSON line per request).  Both require tracing to be enabled (the
default); ``--no-trace`` turns the whole layer into a no-op whose only
residual cost is one context-variable read per instrumentation point.
"""

from __future__ import annotations

import contextlib
import contextvars
import io
import json
import sys
import threading
import time
import uuid
from collections import deque
from typing import Any, Callable, Iterator, Mapping

from .validation import ApiError

__all__ = [
    "TRACE_HEADER",
    "PARENT_SPAN_HEADER",
    "DEFAULT_TRACE_RING",
    "Span",
    "Tracer",
    "ObservabilityApi",
    "current_span",
    "current_root",
    "span",
    "attach",
    "bind",
]

#: Request/response header carrying the trace id end to end.
TRACE_HEADER = "X-Trace-Id"

#: Request header naming the caller-side span a cross-process hop hangs
#: under.  Its presence tells the receiving service that the caller
#: wants the request's span subtree echoed back in the response
#: envelope, so the caller can graft it into its own tree (see
#: :meth:`Span.graft` and the worker router's ``_call_worker``).
PARENT_SPAN_HEADER = "X-Parent-Span-Id"

#: Finished traces retained by default.
DEFAULT_TRACE_RING = 256

_CURRENT: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "staccato_current_span", default=None
)


def _new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One timed operation inside a request; children are sub-steps.

    Durations come from ``perf_counter``; the wall-clock start is kept
    on the root only (via the trace record).  ``children.append`` from
    concurrent fan-out legs is safe (list.append is atomic under the
    GIL); the tree is only serialized after every leg has joined.
    """

    __slots__ = (
        "name",
        "attrs",
        "parent",
        "trace_id",
        "error",
        "children",
        "grafts",
        "duration_s",
        "_t0",
        "_token",
        "_span_id",
    )

    def __init__(self, name: str, parent: "Span | None" = None, **attrs: Any):
        self.name = name
        self.attrs = dict(attrs)
        self.parent = parent
        self.trace_id: str | None = None
        self.error = False
        self.children: list[Span] = []
        self.grafts: list[dict[str, Any]] = []
        self.duration_s: float | None = None
        self._t0 = time.perf_counter()
        self._token: contextvars.Token | None = None
        self._span_id: str | None = None

    @property
    def span_id(self) -> str:
        """A stable id for this span, minted on first use.

        Only spans that cross a process boundary ever need one, so it
        is lazy -- the common single-process span pays nothing.
        """
        if self._span_id is None:
            self._span_id = _new_trace_id()
        return self._span_id

    def annotate(self, **attrs: Any) -> None:
        """Attach key/value detail (postings fetched, plan label, ...)."""
        self.attrs.update(attrs)

    def graft(self, subtree: Mapping[str, Any], **attrs: Any) -> None:
        """Adopt a span subtree serialized by another process.

        The subtree is the remote root's ``to_dict`` output, kept as-is
        (its ``start_ms`` offsets are relative to the *remote* root --
        two processes share no clock) and emitted among this span's
        children at serialization time.  ``attrs`` annotate the remote
        root (worker index, pid) and a ``remote`` marker distinguishes
        grafted nodes from locally timed ones.  ``list.append`` is
        atomic under the GIL, so concurrent fan-out legs may graft onto
        a shared parent just like they append child spans.
        """
        node = dict(subtree)
        node["attrs"] = {
            **node.get("attrs", {}),
            **attrs,
            "remote": True,
        }
        self.grafts.append(node)

    def finish(self) -> None:
        if self.duration_s is None:
            self.duration_s = time.perf_counter() - self._t0

    @property
    def elapsed_s(self) -> float:
        """Final duration, or time-so-far for a still-open span."""
        if self.duration_s is not None:
            return self.duration_s
        return time.perf_counter() - self._t0

    def to_dict(self, base: float | None = None) -> dict[str, Any]:
        """The JSON span tree; offsets are relative to ``base`` (root)."""
        base = self._t0 if base is None else base
        node: dict[str, Any] = {
            "name": self.name,
            "start_ms": round((self._t0 - base) * 1000.0, 3),
            "duration_ms": round(self.elapsed_s * 1000.0, 3),
        }
        if self.error:
            node["error"] = True
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.children or self.grafts:
            node["children"] = [
                c.to_dict(base) for c in self.children
            ] + list(self.grafts)
        return node


# ----------------------------------------------------------------------
# Context propagation
# ----------------------------------------------------------------------
def current_span() -> Span | None:
    """The span this thread/task is currently inside (or None)."""
    return _CURRENT.get()


def current_root() -> Span | None:
    """The root of the current request's span tree (or None)."""
    node = _CURRENT.get()
    while node is not None and node.parent is not None:
        node = node.parent
    return node


@contextlib.contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span | None]:
    """Open a child span under the current one; a no-op when untraced.

    Yields the new :class:`Span` (for :meth:`Span.annotate`) or None
    when the request is not being traced, so instrumentation points
    never need to know whether tracing is on.
    """
    parent = _CURRENT.get()
    if parent is None:
        yield None
        return
    child = Span(name, parent=parent, **attrs)
    parent.children.append(child)
    token = _CURRENT.set(child)
    try:
        yield child
    except BaseException:
        child.error = True
        raise
    finally:
        child.finish()
        _CURRENT.reset(token)


@contextlib.contextmanager
def attach(parent: Span | None) -> Iterator[None]:
    """Install ``parent`` as this thread's current span.

    The explicit half of executor-hop propagation: the caller captures
    :func:`current_span` *before* submitting work, and the worker wraps
    its body in ``attach(captured)``.
    """
    token = _CURRENT.set(parent)
    try:
        yield
    finally:
        _CURRENT.reset(token)


def bind(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap ``fn`` so it runs under the caller's *current* span.

    For handing callables to ``ThreadPoolExecutor.map`` /
    ``run_in_executor``, which would otherwise run them with no (or a
    stale) trace context.
    """
    parent = _CURRENT.get()
    if parent is None:
        return fn

    def bound(*args: Any, **kwargs: Any) -> Any:
        with attach(parent):
            return fn(*args, **kwargs)

    return bound


# ----------------------------------------------------------------------
# The tracer: ring buffer + slow-query / access logs
# ----------------------------------------------------------------------
class Tracer:
    """Per-service trace registry and structured log writers."""

    def __init__(
        self,
        enabled: bool = True,
        ring: int = DEFAULT_TRACE_RING,
        slow_query_ms: float | None = None,
        slow_log_path: str | None = None,
        access_log_path: str | None = None,
    ) -> None:
        self.enabled = enabled
        self.ring_size = max(1, int(ring))
        self.slow_query_ms = slow_query_ms
        self._records: deque[dict[str, Any]] = deque(maxlen=self.ring_size)
        self._lock = threading.Lock()
        self._log_lock = threading.Lock()
        self._slow_log = self._open_log(slow_log_path)
        self._access_log = self._open_log(access_log_path)

    @staticmethod
    def _open_log(path: str | None) -> io.TextIOBase | None:
        if path is None:
            return None
        if path == "-":
            return sys.stderr  # type: ignore[return-value]
        return open(path, "a", encoding="utf-8", buffering=1)

    # -- request lifecycle --------------------------------------------
    def begin_request(
        self,
        endpoint: str,
        method: str,
        path: str,
        trace_id: str | None = None,
        parent_span_id: str | None = None,
    ) -> Span | None:
        """Open (and install) a request's root span; None when disabled.

        ``parent_span_id`` is the caller-side span named by the
        ``X-Parent-Span-Id`` header on a cross-process hop; recording it
        on the root both documents the parentage in this process's own
        trace ring and asks the dispatch layer to echo the finished
        subtree back to the caller for grafting.
        """
        if not self.enabled:
            return None
        root = Span(endpoint, method=method, path=path)
        root.trace_id = trace_id or _new_trace_id()
        if parent_span_id:
            root.attrs["parent_span"] = parent_span_id
        root._token = _CURRENT.set(root)
        return root

    def finish_request(self, root: Span, status: int) -> dict[str, Any]:
        """Close the root span, record the trace, feed both logs."""
        root.finish()
        root.error = root.error or status >= 400
        duration_ms = (root.duration_s or 0.0) * 1000.0
        record: dict[str, Any] = {
            "trace_id": root.trace_id,
            "endpoint": root.name,
            "method": root.attrs.get("method"),
            "path": root.attrs.get("path"),
            "status": status,
            "error": root.error,
            "duration_ms": round(duration_ms, 3),
            "spans": root.to_dict(),
        }
        with self._lock:
            self._records.append(record)
        if self._access_log is not None:
            self._log_line(
                self._access_log,
                {
                    "ts": time.time(),
                    "kind": "access",
                    "trace_id": root.trace_id,
                    "method": record["method"],
                    "path": record["path"],
                    "endpoint": root.name,
                    "status": status,
                    "duration_ms": record["duration_ms"],
                },
            )
        if (
            self.slow_query_ms is not None
            and duration_ms >= self.slow_query_ms
        ):
            self._log_line(
                (self._slow_log or sys.stderr),
                {
                    "ts": time.time(),
                    "kind": "slow_query",
                    "threshold_ms": self.slow_query_ms,
                    **record,
                },
            )
        return record

    def release(self, root: Span) -> None:
        """Uninstall the root from the context variable (transport side)."""
        if root._token is not None:
            try:
                _CURRENT.reset(root._token)
            except ValueError:  # reset from a different context: best effort
                _CURRENT.set(None)
            root._token = None

    def _log_line(self, stream: Any, payload: Mapping[str, Any]) -> None:
        line = json.dumps(payload, default=repr)
        with self._log_lock:
            stream.write(line + "\n")

    # -- queries -------------------------------------------------------
    def records(self) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._records)

    def get(self, trace_id: str) -> dict[str, Any] | None:
        with self._lock:
            for record in reversed(self._records):
                if record["trace_id"] == trace_id:
                    return record
        return None

    def close(self) -> None:
        for stream in (self._slow_log, self._access_log):
            if stream is not None and stream is not sys.stderr:
                try:
                    stream.close()
                except OSError:  # pragma: no cover - best effort
                    pass


# ----------------------------------------------------------------------
# The HTTP surface, mixed into both service flavours
# ----------------------------------------------------------------------
def _query_flag(query: Mapping[str, str], key: str) -> bool | None:
    raw = query.get(key)
    if raw is None:
        return None
    if raw in ("1", "true", "yes"):
        return True
    if raw in ("0", "false", "no"):
        return False
    raise ApiError(400, f"{key!r} must be a boolean (true/false), got {raw!r}")


def _query_number(
    query: Mapping[str, str], key: str, minimum: float | None = None
) -> float | None:
    raw = query.get(key)
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ApiError(400, f"{key!r} must be a number, got {raw!r}") from None
    if value != value:  # NaN compares unequal to itself
        raise ApiError(400, f"{key!r} must be a number, got {raw!r}")
    if minimum is not None and value < minimum:
        raise ApiError(
            400, f"{key!r} must be >= {minimum:g}, got {raw!r}"
        )
    return value


def _query_int(
    query: Mapping[str, str], key: str, minimum: int | None = None
) -> int | None:
    """A strictly integral query parameter (``1.5`` is a 400, not 1)."""
    raw = query.get(key)
    if raw is None:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ApiError(
            400, f"{key!r} must be an integer, got {raw!r}"
        ) from None
    if minimum is not None and value < minimum:
        raise ApiError(400, f"{key!r} must be >= {minimum}, got {raw!r}")
    return value


class ObservabilityApi:
    """``GET /traces``, ``GET /traces/<id>`` and ``GET /metrics``.

    Mixed into both :class:`~repro.service.app.QueryService` and
    :class:`~repro.service.shards.ShardedQueryService`; relies only on
    their ``tracer`` and ``metrics`` attributes.
    """

    tracer: Tracer
    metrics: Any

    def traces_list(self, query: Mapping[str, str]):
        """Recent trace summaries, newest first, with optional filters."""
        endpoint = query.get("endpoint")
        min_ms = _query_number(query, "min_ms", minimum=0.0)
        error = _query_flag(query, "error")
        limit = _query_int(query, "limit", minimum=1)
        records = self.tracer.records()
        matched = []
        for record in reversed(records):
            if endpoint is not None and record["endpoint"] != endpoint:
                continue
            if min_ms is not None and record["duration_ms"] < min_ms:
                continue
            if error is not None and record["error"] != error:
                continue
            matched.append({k: v for k, v in record.items() if k != "spans"})
        if limit is not None:
            matched = matched[:limit]
        return {
            "enabled": self.tracer.enabled,
            "ring": self.tracer.ring_size,
            "count": len(matched),
            "traces": matched,
        }

    def traces_get(self, trace_id: str):
        """One full span tree by trace id."""
        record = self.tracer.get(trace_id)
        if record is None:
            raise ApiError(
                404,
                f"unknown trace {trace_id!r} (ring keeps the last "
                f"{self.tracer.ring_size})",
                "unknown_trace",
            )
        return record

    def metrics_text(self):
        """Prometheus text exposition of the metrics registry."""
        from .http_common import PROMETHEUS_CONTENT_TYPE, TextPayload

        return TextPayload(
            self.metrics.render_prometheus(), PROMETHEUS_CONTENT_TYPE
        )

    def profile(self, query: Mapping[str, str]):
        """The sampling profiler's aggregate (``GET /profile``).

        Default is a JSON summary (top self-time frames plus the
        heaviest collapsed stacks); ``?format=collapsed`` answers plain
        collapsed-stack text that flamegraph tools consume directly.
        ``?top=N`` bounds both listings.
        """
        from .http_common import TextPayload

        profiler = getattr(self, "profiler", None)
        if profiler is None:
            raise ApiError(
                404,
                "this service has no profiler (start with --profile-hz N)",
                "profiler_disabled",
            )
        fmt = query.get("format", "json")
        if fmt not in ("json", "collapsed"):
            raise ApiError(
                400, f"'format' must be 'json' or 'collapsed', got {fmt!r}"
            )
        top = _query_int(query, "top", minimum=1)
        if fmt == "collapsed":
            return TextPayload(profiler.render_collapsed(top=top))
        return profiler.snapshot(top=top)
