"""Durable background jobs: the off-request-path execution engine.

Everything expensive the service does today -- index rebuilds, shard
maintenance -- runs inline on an HTTP handler thread, pinning it for the
duration.  This module gives both service flavours a place to run
long-lived work instead:

* a fixed pool of **worker threads** (``serve --workers N``) consuming a
  FIFO queue of :class:`Job` records;
* a **job registry** with the full lifecycle ``queued -> running ->
  succeeded | failed | cancelled``, progress fractions and per-job
  metrics, inspectable over ``GET /jobs`` / ``GET /jobs/<id>``;
* **cooperative cancellation** (``DELETE /jobs/<id>``): a queued job is
  dropped immediately; a running job sees the request at its next
  :meth:`Job.check_cancelled` checkpoint, unwinds (jobs undo partial
  work -- see the rebalance phases in :mod:`repro.service.shards`), and
  lands in ``cancelled``;
* a **JSON sidecar journal** next to the database
  (``<db>.jobs.json`` / ``<shard_dir>/jobs.json``) rewritten atomically
  on every state transition, so jobs survive restarts: a job that was
  queued or running when the process died is *reported* on the next
  start, and re-queued automatically when its type is idempotent
  (``rebuild_index``); other jobs are marked ``failed`` with an
  interruption notice -- an interrupted ``rebalance`` leaves queries
  correct (the read paths de-duplicate) and re-submitting the same move
  converges whatever phase the crash interrupted, while an interrupted
  ``cache_snapshot`` must *not* re-run against the restarted process's
  cold cache (it would clobber the previous good snapshot).

The engine is service-agnostic: a job type's runner is looked up as the
``job_<type>`` method of the owning service (so ``rebalance`` only
exists on the sharded service), or supplied directly when registering a
custom :class:`JobType` (tests do this to exercise crash paths).
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
import traceback
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from .validation import ApiError, validate_index, validate_job_submit

__all__ = [
    "JOB_STATES",
    "Job",
    "JobCancelled",
    "JobEngine",
    "JobJournal",
    "JobType",
    "JobsApi",
    "atomic_write_json",
]


def atomic_write_json(path: str, payload: Any, default=None) -> int:
    """Serialize ``payload`` and atomically replace ``path`` with it.

    The one write-temp-then-``os.replace`` implementation every sidecar
    (job journal, routing table, pending moves, cache snapshots) shares:
    a crash mid-write leaves the previous file intact.  Raises ``OSError``
    (and serialization errors) to the caller -- jobs want the failure on
    their row, best-effort callers wrap it.  Returns the encoded size.
    """
    encoded = json.dumps(payload, default=default)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(encoded)
    os.replace(tmp, path)
    return len(encoded)

JOB_STATES = ("queued", "running", "succeeded", "failed", "cancelled")

#: States a job can still leave (cancel targets, restart recovery).
ACTIVE_STATES = ("queued", "running")

#: Terminal job rows kept in memory/journal beyond which the oldest drop.
DEFAULT_HISTORY = 256


class JobCancelled(Exception):
    """Raised inside a runner at a checkpoint after a cancel request."""


def _overlaps(a: Mapping[str, Any], b: Mapping[str, Any]) -> bool:
    """Whether two rebalance param sets fight over the same DocId range."""
    return not (
        int(a["doc_hi"]) < int(b["doc_lo"])
        or int(b["doc_hi"]) < int(a["doc_lo"])
    )


@dataclass(frozen=True, slots=True)
class JobType:
    """One registered kind of background work.

    ``runner`` is optional: when ``None`` the engine dispatches to the
    owning service's ``job_<name>(job, params)`` method.  ``idempotent``
    drives restart recovery (re-queue vs report-as-interrupted);
    ``conflicts`` (given the new and an active job's params) lets a type
    refuse overlapping work with 409 ``job_conflict``.
    """

    name: str
    idempotent: bool = False
    runner: Callable[[Any, "Job", Mapping[str, Any]], Any] | None = None
    conflicts: Callable[[Mapping[str, Any], Mapping[str, Any]], bool] | None = None


#: The shipped job types.  ``rebalance`` moves a DocId range between two
#: live shards (sharded service only); ``rebuild_index`` is the
#: ``POST /index`` work rehomed off the request thread;
#: ``cache_snapshot`` serializes the query cache for warm starts.
#: ``cache_snapshot`` is deliberately NOT restart-resumed even though
#: running it twice is harmless in a live process: re-running it right
#: after a restart would snapshot the still-cold cache, atomically
#: replacing the previous good snapshot before ``--warm-start`` could
#: load it.
DEFAULT_JOB_TYPES = (
    JobType("rebalance", idempotent=False, conflicts=_overlaps),
    JobType("rebuild_index", idempotent=True),
    JobType("cache_snapshot", idempotent=False, conflicts=lambda a, b: True),
)


class Job:
    """One unit of background work and its observable state."""

    __slots__ = (
        "id",
        "type",
        "params",
        "state",
        "progress",
        "created_at",
        "started_at",
        "finished_at",
        "error",
        "result",
        "metrics",
        "interrupted",
        "_lock",
        "_cancel",
    )

    def __init__(
        self, job_id: str, job_type: str, params: Mapping[str, Any]
    ) -> None:
        self.id = job_id
        self.type = job_type
        self.params = dict(params)
        self.state = "queued"
        self.progress = 0.0
        self.created_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.error: str | None = None
        self.result: Any = None
        #: Free-form per-job counters a runner publishes as it works
        #: (e.g. a rebalance's moved docs/lines so far).
        self.metrics: dict[str, Any] = {}
        #: Set by journal recovery on jobs that outlived their process.
        self.interrupted = False
        self._lock = threading.Lock()
        self._cancel = threading.Event()

    # ------------------------------------------------------------------
    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    def request_cancel(self) -> None:
        self._cancel.set()

    def check_cancelled(self) -> None:
        """Runner checkpoint: unwind cooperatively if a cancel landed."""
        if self._cancel.is_set():
            raise JobCancelled(f"job {self.id} cancelled")

    def update(self, progress: float | None = None, **metrics: Any) -> None:
        """Publish progress (0..1) and/or metric counters from the runner."""
        with self._lock:
            if progress is not None:
                self.progress = max(0.0, min(1.0, progress))
            self.metrics.update(metrics)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """The JSON row ``GET /jobs`` returns (and the journal stores)."""
        with self._lock:
            row: dict[str, Any] = {
                "id": self.id,
                "type": self.type,
                "params": dict(self.params),
                "state": self.state,
                "progress": self.progress,
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "error": self.error,
                "result": self.result,
                "metrics": dict(self.metrics),
                "cancel_requested": self._cancel.is_set(),
                "interrupted": self.interrupted,
            }
        return row

    @classmethod
    def from_row(cls, row: Mapping[str, Any]) -> "Job":
        """Rebuild a job from its journal row (restart recovery)."""
        job = cls(str(row["id"]), str(row["type"]), row.get("params") or {})
        job.state = row.get("state", "queued")
        job.progress = float(row.get("progress", 0.0))
        job.created_at = float(row.get("created_at", time.time()))
        job.started_at = row.get("started_at")
        job.finished_at = row.get("finished_at")
        job.error = row.get("error")
        job.result = row.get("result")
        job.metrics = dict(row.get("metrics") or {})
        job.interrupted = bool(row.get("interrupted", False))
        return job


class JobJournal:
    """The JSON sidecar making the registry survive restarts.

    One file next to the database, rewritten in full (write-temp +
    ``os.replace``, so a crash mid-write leaves the previous journal
    intact) on every job state transition.  Progress updates are *not*
    journaled -- they are observability, not durability, and journaling
    every tick would turn a long rebalance into an fsync storm.
    """

    def __init__(self, path: str | None) -> None:
        self.path = path

    def load(self) -> list[dict[str, Any]]:
        if self.path is None or not os.path.exists(self.path):
            return []
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return []  # a torn/corrupt journal must not block startup
        rows = data.get("jobs") if isinstance(data, dict) else None
        return [row for row in rows or [] if isinstance(row, dict)]

    def write(self, rows: list[dict[str, Any]]) -> None:
        if self.path is None:
            return
        try:
            # ``default=repr`` keeps a custom job type's non-JSON result
            # or metric from poisoning the journal (and, worse, killing
            # the worker thread that flushes it): the odd value degrades
            # to its repr, the registry stays durable.
            atomic_write_json(self.path, {"jobs": rows}, default=repr)
        except (OSError, TypeError, ValueError):
            # A read-only or vanished directory degrades durability, not
            # serving; the in-memory registry stays authoritative.
            pass


class JobEngine:
    """Worker pool + registry + journal for one service instance."""

    def __init__(
        self,
        service: Any,
        journal_path: str | None,
        workers: int = 2,
        history: int = DEFAULT_HISTORY,
        metrics: Any = None,
        tracer: Any = None,
        extra_types: Sequence[JobType] = (),
    ) -> None:
        if workers < 1:
            raise ValueError("the job engine needs at least one worker")
        self.service = service
        self.workers = workers
        self.journal = JobJournal(journal_path)
        self._history = history
        self._metrics = metrics
        self._tracer = tracer
        # ``extra_types`` land before journal recovery so a custom
        # idempotent type's interrupted jobs re-queue like built-ins.
        self._types: dict[str, JobType] = {t.name: t for t in DEFAULT_JOB_TYPES}
        for job_type in extra_types:
            self._types[job_type.name] = job_type
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._queue: "queue.Queue[Job | None]" = queue.Queue()
        self._closed = False
        self._recover()
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"job-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    def register(self, job_type: JobType) -> None:
        """Add (or replace) a job type; tests use this for crash paths."""
        with self._lock:
            self._types[job_type.name] = job_type

    def types(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._types))

    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Replay the journal: report interrupted jobs, resume idempotent ones."""
        rows = self.journal.load()
        requeue: list[Job] = []
        for row in rows:
            try:
                job = Job.from_row(row)
            except (KeyError, TypeError, ValueError):
                # A malformed row (hand edit, format drift) is skipped;
                # a broken journal must never block startup.
                continue
            if job.state in ACTIVE_STATES:
                job.interrupted = True
                spec = self._types.get(job.type)
                if spec is not None and spec.idempotent:
                    # Safe to simply run again: the work converges to the
                    # same end state no matter how far the last run got.
                    job.state = "queued"
                    job.progress = 0.0
                    job.error = None
                    requeue.append(job)
                else:
                    interrupted_while = job.state
                    job.state = "failed"
                    job.error = (
                        f"interrupted by a service restart while "
                        f"{interrupted_while}; not resumed (job type is not "
                        "idempotent)"
                    )
                    job.finished_at = time.time()
            self._jobs[job.id] = job
            self._order.append(job.id)
        if rows:
            self._journal_locked_free()
        for job in requeue:
            self._queue.put(job)

    # ------------------------------------------------------------------
    def _journal_locked_free(self) -> None:
        """Trim history and rewrite the sidecar (call without the lock held
        only from ``_recover``; everywhere else via :meth:`_journal`)."""
        while len(self._order) > self._history:
            victim = self._jobs.get(self._order[0])
            if victim is not None and victim.state in ACTIVE_STATES:
                break  # never drop live jobs, however old
            self._order.pop(0)
            if victim is not None:
                del self._jobs[victim.id]
        self.journal.write(
            [self._jobs[job_id].snapshot() for job_id in self._order]
        )

    def _journal(self) -> None:
        with self._lock:
            self._journal_locked_free()

    # ------------------------------------------------------------------
    def submit(self, job_type: str, params: Mapping[str, Any]) -> Job:
        """Queue one job, enforcing type existence and conflict rules."""
        with self._lock:
            if self._closed:
                raise ApiError(503, "job engine is shut down", "job_engine_down")
            spec = self._types.get(job_type)
            if spec is None:
                raise ApiError(
                    400,
                    f"unknown job type {job_type!r}; "
                    f"one of {sorted(self._types)}",
                    code="bad_request",
                )
            if spec.conflicts is not None:
                for other_id in self._order:
                    other = self._jobs[other_id]
                    if other.type != job_type or other.state not in ACTIVE_STATES:
                        continue
                    if spec.conflicts(params, other.params):
                        raise ApiError(
                            409,
                            f"a {job_type!r} job ({other.id}) is already "
                            f"{other.state} over conflicting parameters",
                            code="job_conflict",
                        )
            job = Job(uuid.uuid4().hex[:12], job_type, params)
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._journal_locked_free()
        self._queue.put(job)
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ApiError(404, f"no job {job_id!r}", code="unknown_job")
        return job

    def list(self) -> list[dict[str, Any]]:
        """Every known job, newest first."""
        with self._lock:
            return [
                self._jobs[job_id].snapshot() for job_id in reversed(self._order)
            ]

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cooperative cancel: immediate for queued, flagged for running."""
        job = self.get(job_id)
        with self._lock:
            if job.state == "queued":
                job.state = "cancelled"
                job.finished_at = time.time()
                job.request_cancel()
                self._done.notify_all()
            elif job.state == "running":
                job.request_cancel()
            else:
                raise ApiError(
                    409,
                    f"job {job_id} already {job.state}; nothing to cancel",
                    code="job_conflict",
                )
        self._journal()
        return job.snapshot()

    def wait(self, job_id: str, timeout: float | None = None) -> dict[str, Any]:
        """Block until the job reaches a terminal state (or timeout)."""
        job = self.get(job_id)
        with self._done:
            self._done.wait_for(
                lambda: job.state not in ACTIVE_STATES, timeout=timeout
            )
        return job.snapshot()

    # ------------------------------------------------------------------
    def _runner_for(self, job: Job):
        with self._lock:
            spec = self._types.get(job.type)
        if spec is not None and spec.runner is not None:
            return lambda: spec.runner(self.service, job, job.params)
        method = getattr(self.service, f"job_{job.type}", None)
        if method is None:
            raise ApiError(
                400,
                f"this service cannot run {job.type!r} jobs",
                code="bad_request",
            )
        return lambda: method(job, job.params)

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            with self._lock:
                if job.state != "queued":  # cancelled while waiting
                    continue
                job.state = "running"
                job.started_at = time.time()
            self._journal()
            error: str | None = None
            state = "succeeded"
            # Each run gets its own trace rooted in this worker thread's
            # context, so engine spans raised by the runner (index build,
            # rebalance reads) land under ``job:<type>`` in ``/traces``.
            root = None
            if self._tracer is not None:
                root = self._tracer.begin_request(
                    f"job:{job.type}", "JOB", f"/jobs/{job.id}"
                )
            try:
                job.check_cancelled()  # a cancel may have raced the dequeue
                result = self._runner_for(job)()
            except JobCancelled:
                state, result = "cancelled", None
            except ApiError as exc:
                # A structured refusal (e.g. bad params surfacing late):
                # keep the message, skip the traceback noise.
                state, result, error = "failed", None, f"{exc.code}: {exc}"
            except Exception:  # noqa: BLE001 - worker crash boundary
                state, result = "failed", None
                error = traceback.format_exc()
            finally:
                if root is not None:
                    self._tracer.finish_request(
                        root, status=500 if state == "failed" else 200
                    )
                    self._tracer.release(root)
            with self._lock:
                job.state = state
                job.result = result
                job.error = error
                job.progress = 1.0 if state == "succeeded" else job.progress
                job.finished_at = time.time()
                self._done.notify_all()
            self._journal()
            if self._metrics is not None:
                self._metrics.observe_job(
                    job.type,
                    job.finished_at - (job.started_at or job.finished_at),
                    error=state == "failed",
                )

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """The ``/stats`` jobs block: counts by state plus pool shape."""
        with self._lock:
            by_state: dict[str, int] = {}
            for job_id in self._order:
                state = self._jobs[job_id].state
                by_state[state] = by_state.get(state, 0) + 1
            return {
                "workers": self.workers,
                "queued": by_state.get("queued", 0),
                "running": by_state.get("running", 0),
                "states": by_state,
                "journal": self.journal.path,
                "types": sorted(self._types),
            }

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop accepting work, nudge running jobs, join the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for job in self._jobs.values():
                if job.state in ACTIVE_STATES:
                    job.request_cancel()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout)


class JobsApi:
    """The ``/jobs`` endpoint surface, shared by both service flavours.

    The concrete service supplies ``self.jobs`` (a :class:`JobEngine`),
    a ``validate_job_params(type, params)`` hook (where ``rebalance``
    is refused on the single-database service) and the ``job_<type>``
    runner methods.
    """

    jobs: JobEngine

    #: Upper bound on ``"wait": true`` blocking; past it the client gets
    #: the still-running job row back and falls back to polling.
    WAIT_TIMEOUT_S = 600.0

    # ------------------------------------------------------------------
    def jobs_submit(self, payload: Any):
        """``POST /jobs``: queue a job by type + params (202 + job row)."""
        request = validate_job_submit(payload)
        params = self.validate_job_params(request.type, request.params)
        job = self.jobs.submit(request.type, params)
        if request.wait:
            row = self.jobs.wait(job.id, timeout=self.WAIT_TIMEOUT_S)
            if row["state"] in ACTIVE_STATES:
                # Wait timed out with the job still alive: answer 202
                # still-pending (like index_job), never a terminal 200.
                return 202, row
            return row
        return 202, job.snapshot()

    def jobs_list(self) -> dict[str, Any]:
        """``GET /jobs``: every known job (newest first) plus pool shape."""
        return {"jobs": self.jobs.list(), **self.jobs.stats()}

    def jobs_get(self, job_id: str) -> dict[str, Any]:
        """``GET /jobs/<id>``: one job's state/progress/result."""
        return self.jobs.get(job_id).snapshot()

    def jobs_cancel(self, job_id: str) -> dict[str, Any]:
        """``DELETE /jobs/<id>``: cooperative cancellation."""
        return self.jobs.cancel(job_id)

    # ------------------------------------------------------------------
    def index_job(self, payload: Any):
        """``POST /index``: the rebuild, rehomed as a ``rebuild_index`` job.

        The endpoint survives unchanged on the wire but no longer pins a
        request thread: by default it submits and answers 202 with the
        job row.  ``"wait": true`` keeps the old synchronous shape (the
        handler blocks, the *build* still runs on a job worker) and
        returns the rebuild result with the job id attached.
        """
        if not isinstance(payload, Mapping):
            raise ApiError(400, "request body must be a JSON object")
        wait = payload.get("wait", False)
        if not isinstance(wait, bool):
            raise ApiError(400, "'wait' must be a boolean")
        params = {key: value for key, value in payload.items() if key != "wait"}
        params = self.validate_job_params("rebuild_index", params)
        job = self.jobs.submit("rebuild_index", params)
        if not wait:
            return 202, job.snapshot()
        row = self.jobs.wait(job.id, timeout=self.WAIT_TIMEOUT_S)
        if row["state"] in ACTIVE_STATES:
            # The wait timed out but the job is alive and will finish;
            # that is a still-pending 202, not a failure.
            return 202, row
        if row["state"] != "succeeded":
            raise ApiError(
                500,
                f"rebuild_index job {job.id} {row['state']}: {row['error']}",
                code="job_failed",
            )
        return {**row["result"], "job_id": job.id}

    # ------------------------------------------------------------------
    def validate_job_params(
        self, job_type: str, params: Mapping[str, Any]
    ) -> dict[str, Any]:
        """Submit-time validation shared by both services.

        ``rebuild_index`` re-uses the ``/index`` validator so a bad
        payload is a 400 at submission, not a failed job later;
        ``cache_snapshot`` takes no parameters.  Subclasses extend this
        (the sharded service validates ``rebalance``; the single
        service refuses it).
        """
        if job_type == "rebuild_index":
            validate_index(params)
            return dict(params)
        if job_type == "cache_snapshot":
            return {}
        return dict(params)

    def job_rebuild_index(self, job: Job, params: Mapping[str, Any]) -> Any:
        """Runner: the existing ``index`` work, off the request path."""
        job.update(progress=0.05)
        result = self.index(dict(params))
        job.update(postings=result.get("postings"))
        return result
