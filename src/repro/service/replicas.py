"""Read replicas with circuit-breaker failover for the shard router.

One unreadable shard file must not take down every fan-out query, so a
shard can keep ``N`` read replicas: the primary file plus ``N - 1``
copies, all held in lockstep by re-applying every committed write (an
ingest sub-batch or an index rebuild) to every replica under the
shard's write lock.  The OCR channel is deterministic per ``(seed,
text, doc_id, line_no)``, so replaying a batch produces byte-identical
relations on every copy.

The read path load-balances round-robin across the *healthy* replicas
and fails over transparently:

* every replica carries a :class:`CircuitBreaker`.  A leg that raises
  (or whose file has vanished) records a failure, which **opens** the
  breaker: the replica leaves the rotation and the in-flight query is
  retried on a sibling, invisible to the client;
* after ``cooldown_s`` the breaker goes **half-open** and releases one
  live request as a probe -- success closes the breaker (back in
  rotation), failure re-opens it for another cooldown.  Probes ride on
  real traffic, so a failed probe is just one more transparent retry;
* a replica that misses a write which *did* commit on a sibling has
  diverged; it is marked **stale** and stays out of the rotation until
  an operator detaches it and attaches a fresh copy (``POST
  /replicas``), which re-syncs from a live replica via SQLite's online
  backup.

Only when every replica of a shard is out does the query fail, as
:class:`ReplicaUnavailable` (HTTP 503 ``shard_unavailable``).
"""

from __future__ import annotations

import contextlib
import glob
import os
import sqlite3
import threading
import time
from typing import Callable, Iterator, Sequence

from ..db.engine import StaccatoDB
from ..query.memo import KernelMemo
from . import trace
from .pool import ConnectionPool

__all__ = [
    "DEFAULT_COOLDOWN_S",
    "replica_path",
    "ordered_locks",
    "CircuitBreaker",
    "Replica",
    "ReplicaSet",
    "ReplicaUnavailable",
]


@contextlib.contextmanager
def ordered_locks(
    *pairs: tuple[int, threading.Lock],
) -> Iterator[None]:
    """Hold several keyed locks at once, acquired in ascending key order.

    The serving tier's deadlock-avoidance rule: whenever more than one
    shard-level lock must be held together (a rebalance pins its source
    *and* target shard; replica maintenance may pin a shard and its
    set), every taker sorts by the stable integer key (the shard index)
    first, so two concurrent multi-lock operations can never wait on
    each other in a cycle.  Single-lock takers are unaffected -- they
    hold one lock and always drain.
    """
    ordered = sorted(pairs, key=lambda pair: pair[0])
    held: list[threading.Lock] = []
    try:
        for _, lock in ordered:
            lock.acquire()
            held.append(lock)
        yield
    finally:
        for lock in reversed(held):
            lock.release()

#: Seconds an open breaker waits before releasing a half-open probe.
DEFAULT_COOLDOWN_S = 2.0

_SENTINEL = object()


def replica_path(primary_path: str, replica_index: int) -> str:
    """The file path of one replica of a shard.

    Replica 0 *is* the primary (the canonical ``shard-NNNN.db`` file);
    replica ``j > 0`` lives beside it as ``shard-NNNN.r<j>.db``.
    """
    if replica_index < 0:
        raise ValueError("replica index must be >= 0")
    if replica_index == 0:
        return primary_path
    root, ext = os.path.splitext(primary_path)
    return f"{root}.r{replica_index}{ext}"


class ReplicaUnavailable(RuntimeError):
    """Every replica of a shard is unhealthy (or was already tried)."""


class CircuitBreaker:
    """Closed / open / half-open availability gate for one replica.

    * **closed** -- healthy; every request allowed.
    * **open** -- a failure was recorded; nothing allowed until
      ``cooldown_s`` has elapsed.
    * **half-open** -- cooldown over; exactly one request is released
      as a probe.  Its outcome closes or re-opens the breaker.
    """

    def __init__(
        self,
        cooldown_s: float = DEFAULT_COOLDOWN_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._opened_at = 0.0
        self.errors = 0
        self.trips = 0
        self.last_error: str | None = None

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Whether the caller may send a request to this replica now.

        An open breaker whose cooldown has elapsed releases exactly one
        caller (the half-open probe); concurrent callers are refused
        until the probe's outcome is recorded.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if (
                self._state == "open"
                and self._clock() - self._opened_at >= self.cooldown_s
            ):
                self._state = "half-open"
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"

    def record_failure(self, exc: BaseException) -> None:
        with self._lock:
            self.errors += 1
            self.last_error = f"{type(exc).__name__}: {exc}"
            if self._state != "open":
                self.trips += 1
            self._state = "open"
            self._opened_at = self._clock()

    def stats(self) -> dict[str, object]:
        with self._lock:
            return {
                "state": self._state,
                "errors": self.errors,
                "trips": self.trips,
                "cooldown_s": self.cooldown_s,
                "last_error": self.last_error,
            }


class Replica:
    """One copy of a shard: its file, writer, reader pool and breaker."""

    __slots__ = (
        "shard_index",
        "replica_index",
        "path",
        "writer",
        "pool",
        "breaker",
        "stale",
        "stale_reason",
        "served",
    )

    def __init__(
        self,
        shard_index: int,
        replica_index: int,
        path: str,
        k: int,
        m: int,
        pool_size: int,
        index_approach: str,
        cooldown_s: float,
        clock: Callable[[], float],
        kernel_memo: KernelMemo | None = None,
        scan_procs: int | None = None,
    ) -> None:
        self.shard_index = shard_index
        self.replica_index = replica_index
        self.path = path
        # Writer first: a fresh replica file gets its schema (and WAL
        # mode) before any pooled reader connects.  Lockstep writes make
        # all replicas byte-identical, and the kernel memo is
        # content-addressed, so one shard-level memo safely serves every
        # copy (the writer's ingests bump its generation clock).
        self.writer = StaccatoDB(
            path, k=k, m=m, check_same_thread=False, kernel_memo=kernel_memo
        )
        try:
            self.writer.conn.execute("PRAGMA journal_mode=WAL")
        except Exception:
            pass  # filesystems without locking; rollback mode works
        self.pool = ConnectionPool(
            path,
            size=pool_size,
            k=k,
            m=m,
            index_approach=index_approach,
            label=f"shard-{shard_index}/r{replica_index}",
            kernel_memo=kernel_memo,
            scan_procs=scan_procs,
        )
        self.breaker = CircuitBreaker(cooldown_s=cooldown_s, clock=clock)
        #: A stale replica missed a write that committed on a sibling;
        #: it never re-enters the rotation (detach + attach re-syncs).
        self.stale = False
        self.stale_reason: str | None = None
        #: Reads this replica served (load-balance visibility).
        self.served = 0

    @property
    def role(self) -> str:
        return "primary" if self.replica_index == 0 else "replica"

    def mark_stale(self, reason: str) -> None:
        self.stale = True
        self.stale_reason = reason

    def close(self) -> None:
        self.pool.close()
        self.writer.close()

    def stats(self) -> dict[str, object]:
        return {
            "replica": self.replica_index,
            "role": self.role,
            "path": self.path,
            "healthy": not self.stale and self.breaker.state == "closed",
            "stale": self.stale,
            "stale_reason": self.stale_reason,
            "served": self.served,
            "breaker": self.breaker.stats(),
            "pool": self.pool.stats(),
        }


class ReplicaSet:
    """A shard's replicas plus the failover read / lockstep write paths.

    The caller (the shard router) holds the shard's write lock around
    :meth:`apply_write`, :meth:`attach` and :meth:`detach`; reads via
    :meth:`run` need no lock -- the replica list is snapshotted under an
    internal lock and each replica's pool serializes its connections.
    """

    def __init__(
        self,
        shard_index: int,
        primary_path: str,
        count: int = 1,
        *,
        k: int = 25,
        m: int = 40,
        pool_size: int = 2,
        index_approach: str = "staccato",
        cooldown_s: float = DEFAULT_COOLDOWN_S,
        clock: Callable[[], float] = time.monotonic,
        kernel_memo: KernelMemo | None = None,
        scan_procs: int | None = None,
    ) -> None:
        if count < 1:
            raise ValueError("a shard needs at least one replica")
        self.shard_index = shard_index
        self.primary_path = primary_path
        self._k = k
        self._m = m
        self._pool_size = pool_size
        self._index_approach = index_approach
        self._cooldown_s = cooldown_s
        self._clock = clock
        self._kernel_memo = kernel_memo
        self._scan_procs = scan_procs
        self._lock = threading.Lock()
        self._rr = 0
        self._next_index = count
        # Disaster recovery first: if the primary file was lost while a
        # replica survived, re-seed the primary from the fullest copy
        # *before* the re-sync below would clobber that copy.
        self._recover_primary()
        primary = self._open(0, primary_path)
        self._replicas: list[Replica] = [primary]
        # Secondary replicas always start as a fresh copy of the
        # primary: a leftover file from a previous run may have missed
        # that run's final writes, and serving from it would be the
        # exact staleness the lockstep-write rule exists to prevent.
        for j in range(1, count):
            self._replicas.append(self._clone(primary, j))

    # ------------------------------------------------------------------
    @staticmethod
    def _file_lines(path: str) -> int:
        """Lines in a StaccatoDB file, or -1 if unreadable/absent."""
        if not os.path.exists(path):
            return -1
        try:
            conn = sqlite3.connect(path)
            try:
                return conn.execute(
                    "SELECT COUNT(*) FROM MasterData"
                ).fetchone()[0]
            finally:
                conn.close()
        except sqlite3.Error:
            return -1

    def _recover_primary(self) -> None:
        """Re-seed a lost/empty primary from the fullest leftover replica.

        The startup re-sync deletes and re-clones every secondary, so a
        primary lost to a disk fault must be restored *from* a surviving
        copy first -- otherwise the re-sync would back an empty fresh
        primary up over the only good data.  Leftover replica files are
        found by pattern, not configured count: a copy attached at
        runtime in the previous run counts too.
        """
        if self._file_lines(self.primary_path) > 0:
            return
        root, ext = os.path.splitext(self.primary_path)
        candidates = sorted(glob.glob(f"{glob.escape(root)}.r*{ext}"))
        best_path, best_lines = None, 0
        for candidate in candidates:
            lines = self._file_lines(candidate)
            if lines > best_lines:
                best_path, best_lines = candidate, lines
        if best_path is None:
            return
        source = sqlite3.connect(best_path)
        try:
            dest = sqlite3.connect(self.primary_path)
            try:
                source.backup(dest)
            finally:
                dest.close()
        finally:
            source.close()

    def _open(self, replica_index: int, path: str) -> Replica:
        return Replica(
            self.shard_index,
            replica_index,
            path,
            self._k,
            self._m,
            self._pool_size,
            self._index_approach,
            self._cooldown_s,
            self._clock,
            kernel_memo=self._kernel_memo,
            scan_procs=self._scan_procs,
        )

    def _clone(self, source: Replica, replica_index: int) -> Replica:
        """A new replica whose file is an online-backup copy of ``source``."""
        path = replica_path(self.primary_path, replica_index)
        for leftover in (path, f"{path}-wal", f"{path}-shm"):
            if os.path.exists(leftover):
                os.remove(leftover)
        dest = sqlite3.connect(path)
        try:
            source.writer.conn.backup(dest)
        finally:
            dest.close()
        return self._open(replica_index, path)

    # ------------------------------------------------------------------
    def replicas(self) -> list[Replica]:
        """Snapshot of the currently attached replicas."""
        with self._lock:
            return list(self._replicas)

    def __len__(self) -> int:
        with self._lock:
            return len(self._replicas)

    def healthy(self) -> list[Replica]:
        """Replicas currently in the read rotation."""
        return [
            r
            for r in self.replicas()
            if not r.stale and r.breaker.state == "closed"
        ]

    def _pick(self, tried: set[int]) -> Replica | None:
        """Next replica to try: round-robin over the allowed, untried ones."""
        with self._lock:
            candidates = [
                r
                for r in self._replicas
                if r.replica_index not in tried and not r.stale
            ]
            if not candidates:
                return None
            start = self._rr
            self._rr += 1
            order = [
                candidates[(start + i) % len(candidates)]
                for i in range(len(candidates))
            ]
        for replica in order:
            # allow() may consume a half-open probe slot, so only ask
            # the replica we are about to hand out.
            if replica.breaker.allow():
                return replica
        return None

    def run(
        self,
        attempt: Callable[[Replica], object],
        passthrough: tuple[type[BaseException], ...] = (),
    ) -> object:
        """Run ``attempt(replica)`` on a healthy replica, failing over.

        A replica whose file has vanished, or whose attempt raises,
        records a breaker failure and the call moves to the next
        replica; the client never sees the retry.  Exceptions listed in
        ``passthrough`` (client errors like a malformed query) are
        re-raised immediately without blaming the replica.  When every
        replica has been tried or refused, raises
        :class:`ReplicaUnavailable` carrying the last error.
        """
        tried: set[int] = set()
        last_error: BaseException | None = None
        while True:
            replica = self._pick(tried)
            if replica is None:
                detail = f" (last error: {last_error})" if last_error else ""
                raise ReplicaUnavailable(
                    f"shard {self.shard_index}: no healthy replica "
                    f"left{detail}"
                ) from last_error
            tried.add(replica.replica_index)
            # One span per attempt -- a failover shows up as sibling
            # ``replica_attempt`` spans, the failed ones flagged with
            # the error and the breaker state they observed going in.
            with trace.span(
                "replica_attempt",
                replica=replica.replica_index,
                breaker=replica.breaker.state,
            ) as att:
                if not os.path.exists(replica.path):
                    error: BaseException = FileNotFoundError(replica.path)
                    replica.breaker.record_failure(error)
                    last_error = error
                    if att is not None:
                        att.error = True
                        att.annotate(failure="missing_file")
                    continue
                try:
                    result = attempt(replica)
                except passthrough:
                    # The replica evaluated the request; the error
                    # belongs to the client (e.g. malformed SQL).
                    # Recording it as a breaker success matters: if
                    # this attempt was the half-open probe, leaving the
                    # outcome unrecorded would park the breaker in
                    # half-open forever.
                    replica.breaker.record_success()
                    raise
                except Exception as exc:  # noqa: BLE001 - failover boundary
                    replica.breaker.record_failure(exc)
                    last_error = exc
                    if att is not None:
                        att.error = True
                        att.annotate(failure=type(exc).__name__)
                    continue
                replica.breaker.record_success()
                replica.served += 1
                return result

    # ------------------------------------------------------------------
    def apply_write(self, leg: Callable[[Replica], object]) -> object:
        """Apply one write leg to every live replica, in lockstep.

        Caller holds the shard write lock.  Returns the first
        successful replica's result (all copies are deterministic, so
        any one speaks for the batch).  A replica that fails while a
        sibling commits has diverged and is marked stale; if *no*
        replica commits, nothing diverged -- every replica stays in
        rotation and the first error is re-raised.
        """
        result: object = _SENTINEL
        failures: list[tuple[Replica, BaseException]] = []
        first_error: BaseException | None = None
        for replica in self.replicas():
            if replica.stale:
                continue
            error: BaseException | None = None
            if not os.path.exists(replica.path):
                error = FileNotFoundError(replica.path)
            else:
                try:
                    value = leg(replica)
                except Exception as exc:  # noqa: BLE001 - divergence boundary
                    error = exc
            if error is not None:
                failures.append((replica, error))
                if first_error is None:
                    first_error = error
                continue
            if result is _SENTINEL:
                result = value
        if result is _SENTINEL:
            if first_error is not None:
                raise first_error
            raise ReplicaUnavailable(
                f"shard {self.shard_index}: no writable replica"
            )
        for replica, error in failures:
            replica.breaker.record_failure(error)
            replica.mark_stale(f"missed a committed write: {error}")
        return result

    # ------------------------------------------------------------------
    def attach(self) -> Replica:
        """Add one replica, re-synced from a live sibling (online backup).

        Caller holds the shard write lock, so the copy is a consistent
        snapshot and no batch can land between the copy and the new
        replica joining the rotation.
        """
        source = next(
            (
                r
                for r in self.replicas()
                if not r.stale and os.path.exists(r.path)
            ),
            None,
        )
        if source is None:
            raise ReplicaUnavailable(
                f"shard {self.shard_index}: no live replica to copy from"
            )
        with self._lock:
            index = self._next_index
            self._next_index += 1
        replica = self._clone(source, index)
        with self._lock:
            self._replicas.append(replica)
        return replica

    def detach(self, replica_index: int) -> Replica:
        """Remove one replica from the set and close it.

        The file stays on disk (an operator may want the bytes); only
        the serving-side handles go away.  Detaching the last replica
        is refused -- that is shutting the shard down, not trimming it.
        """
        with self._lock:
            matches = [
                r for r in self._replicas if r.replica_index == replica_index
            ]
            if not matches:
                raise KeyError(replica_index)
            if len(self._replicas) == 1:
                raise ValueError(
                    f"shard {self.shard_index}: cannot detach the last replica"
                )
            replica = matches[0]
            self._replicas.remove(replica)
        # Closing the pool blocks until in-flight borrowers release, so
        # no query loses its connection mid-evaluation.
        replica.close()
        return replica

    # ------------------------------------------------------------------
    def stats(self) -> list[dict[str, object]]:
        return [replica.stats() for replica in self.replicas()]

    def close(self) -> None:
        for replica in self.replicas():
            replica.close()
