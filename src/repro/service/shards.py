"""Sharded serving: one service routing over many StaccatoDB files.

One SQLite file stops scaling long before an OCR corpus does, so the
service can run over N shards, each a complete StaccatoDB file holding a
disjoint subset of the documents:

* **Routing** -- documents are partitioned by DocId range:
  ``shard_for_doc`` stripes contiguous ranges of ``range_width`` ids
  across the shards, so a document (and every line of it) lives wholly
  on one shard and repeated batches for the same document land in the
  same file.  ``/ingest`` may instead ask for ``"route":
  "round_robin"`` when placement does not matter.
* **Fan-out** -- ``/search`` and ``/sql`` execute on every scoped shard
  concurrently (a :class:`~concurrent.futures.ThreadPoolExecutor` leg
  per shard, each leg borrowing from that shard's reader pool) and the
  per-shard ranked relations are merged by probability with stable
  (DocId, LineNo) tie-breaks -- identical answers and ranking to one
  database holding the union.
* **Per-shard invalidation** -- every cache key embeds the shard scope
  it was computed over plus those shards' generation counters; an
  ingest or index rebuild bumps only the touched shards' generations
  and evicts only the entries that depended on them.
* **``POST /index``** -- builds/rebuilds the dictionary index shard by
  shard and broadcasts ``load_index`` to that shard's pool, no
  out-of-band CLI step required.

:class:`ShardedQueryService` duck-types :class:`~repro.service.app.
QueryService` (same endpoint methods, same metrics registry), so the
HTTP layer in :mod:`repro.service.server` serves either unchanged.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Sequence

from ..db.engine import StaccatoDB, shard_paths
from ..db.sql import SqlError, execute_select, merge_shard_rows, parse_select, shard_select
from ..ocr.corpus import Dataset, Document
from ..ocr.engine import SimulatedOcrEngine
from ..query.answers import Answer
from .app import answer_row, run_search_plan
from .cache import QueryCache
from .metrics import ServiceMetrics
from .pool import ConnectionPool
from .validation import (
    ApiError,
    validate_index,
    validate_ingest,
    validate_search,
    validate_sql,
)

__all__ = [
    "DEFAULT_RANGE_WIDTH",
    "shard_for_doc",
    "merge_ranked",
    "ShardedPool",
    "ShardedQueryService",
]

#: DocIds per contiguous routing range.  Ranges stripe across shards
#: (``(doc_id // width) % num_shards``), so bulk loads of consecutive ids
#: spread out while each document still has exactly one owner.
DEFAULT_RANGE_WIDTH = 64


def shard_for_doc(
    doc_id: int, num_shards: int, range_width: int = DEFAULT_RANGE_WIDTH
) -> int:
    """The shard owning ``doc_id`` under DocId-range partitioning."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if range_width < 1:
        raise ValueError("range_width must be >= 1")
    return (doc_id // range_width) % num_shards


def merge_ranked(
    per_shard: Iterable[tuple[int, Sequence[Answer]]],
    num_ans: int | None,
) -> list[tuple[int, Answer]]:
    """Merge per-shard ranked relations into one global ranking.

    Sorts by descending probability with a stable (DocId, LineNo)
    tie-break -- the order a single database produces when documents
    were ingested in DocId order -- and cuts at ``num_ans``.  Each kept
    answer is tagged with its source shard (line ids are shard-local).
    """
    rows = [
        (shard, answer) for shard, answers in per_shard for answer in answers
    ]
    rows.sort(key=lambda row: (-row[1].probability, row[1].doc_id, row[1].line_no))
    if num_ans is not None:
        rows = rows[:num_ans]
    return rows


class _Shard:
    """One shard's moving parts: writer, reader pool, generation."""

    __slots__ = ("index", "path", "writer", "write_lock", "pool", "generation")

    def __init__(
        self,
        index: int,
        path: str,
        k: int,
        m: int,
        pool_size: int,
        index_approach: str,
    ) -> None:
        self.index = index
        self.path = path
        # Writer first, as in QueryService: a fresh shard file gets its
        # schema and WAL mode before any pooled reader connects.
        self.writer = StaccatoDB(path, k=k, m=m, check_same_thread=False)
        try:
            self.writer.conn.execute("PRAGMA journal_mode=WAL")
        except Exception:
            pass  # filesystems without locking; rollback mode works
        self.write_lock = threading.Lock()
        self.pool = ConnectionPool(
            path,
            size=pool_size,
            k=k,
            m=m,
            index_approach=index_approach,
            label=f"shard-{index}",
        )
        self.generation = 0


class ShardedPool:
    """Per-shard reader pools plus per-shard generation counters.

    The generation counter is the invalidation currency: every committed
    write (ingest batch or index rebuild) to a shard bumps its counter,
    and cached results carry the generation vector of the shards they
    read -- a stale result's key simply never matches again, which also
    closes the compute/invalidate race without a global generation.
    """

    def __init__(
        self,
        paths: Sequence[str],
        k: int = 25,
        m: int = 40,
        pool_size: int = 2,
        index_approach: str = "staccato",
    ) -> None:
        if not paths:
            raise ValueError("a sharded pool needs at least one shard path")
        self._gen_lock = threading.Lock()
        self.shards = [
            _Shard(i, path, k, m, pool_size, index_approach)
            for i, path in enumerate(paths)
        ]

    def __len__(self) -> int:
        return len(self.shards)

    def shard(self, index: int) -> _Shard:
        return self.shards[index]

    def acquire(self, index: int, timeout: float | None = None):
        """Borrow a reader connection from shard ``index``'s pool."""
        return self.shards[index].pool.acquire(timeout=timeout)

    # ------------------------------------------------------------------
    def generations(self, scope: Sequence[int]) -> tuple[int, ...]:
        """Snapshot of the scoped shards' generation counters."""
        with self._gen_lock:
            return tuple(self.shards[i].generation for i in scope)

    def bump(self, scope: Iterable[int]) -> None:
        """Advance the touched shards' generations after a write."""
        with self._gen_lock:
            for i in scope:
                self.shards[i].generation += 1

    # ------------------------------------------------------------------
    def stats(self) -> list[dict[str, object]]:
        """Per-shard occupancy/generation snapshot for ``/stats``."""
        return [
            {
                "index": shard.index,
                "path": shard.path,
                "generation": shard.generation,
                "pool": shard.pool.stats(),
            }
            for shard in self.shards
        ]

    def close(self) -> None:
        for shard in self.shards:
            shard.pool.close()
            shard.writer.close()


class ShardedQueryService:
    """The StaccatoDB query service over N DocId-range shards."""

    def __init__(
        self,
        shard_dir: str,
        num_shards: int,
        k: int = 25,
        m: int = 40,
        pool_size: int = 2,
        cache_size: int = 256,
        index_approach: str = "staccato",
        range_width: int = DEFAULT_RANGE_WIDTH,
    ) -> None:
        if num_shards < 1:
            raise ValueError("a sharded service needs at least one shard")
        os.makedirs(shard_dir, exist_ok=True)
        self.shard_dir = shard_dir
        self.num_shards = num_shards
        self.range_width = range_width
        self.index_approach = index_approach
        self.paths = shard_paths(shard_dir, num_shards)
        self.pool = ShardedPool(
            self.paths,
            k=k,
            m=m,
            pool_size=pool_size,
            index_approach=index_approach,
        )
        self.cache = QueryCache(cache_size)
        self.metrics = ServiceMetrics()
        self._rr_lock = threading.Lock()
        self._rr_next = 0
        self._executor = ThreadPoolExecutor(
            max_workers=num_shards, thread_name_prefix="shard-fanout"
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._executor.shutdown(wait=True)
        self.pool.close()

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _scope(self, shards: tuple[int, ...] | None) -> tuple[int, ...]:
        """The shard indices a request fans out to (default: all)."""
        if shards is None:
            return tuple(range(self.num_shards))
        bad = [i for i in shards if i >= self.num_shards]
        if bad:
            raise ApiError(
                400,
                f"unknown shards {bad}; this service has "
                f"{self.num_shards} shards (0..{self.num_shards - 1})",
                code="unknown_shard",
            )
        return shards

    def _fan_out(self, scope: Sequence[int], leg):
        """Run ``leg(shard_index)`` on every scoped shard concurrently."""
        return list(self._executor.map(leg, scope))

    def _fan_out_writes(self, scope: Sequence[int], leg):
        """Fan a *write* out, never losing a committed shard's result.

        Unlike :meth:`_fan_out`, a failing leg does not mask the legs
        that already committed: the caller gets every successful result
        so it can bump those shards' generations and evict their cache
        entries *before* the first error is re-raised -- otherwise a
        partial failure would leave pre-write cached answers servable
        for shards whose batch did land.
        """
        wrapped = self._executor.map(
            lambda index: (index, *self._attempt(leg, index)), scope
        )
        succeeded, first_error = [], None
        for index, value, error in wrapped:
            if error is None:
                succeeded.append(value)
            elif first_error is None:
                first_error = error
        return succeeded, first_error

    @staticmethod
    def _attempt(leg, index: int):
        try:
            return leg(index), None
        except Exception as exc:  # noqa: BLE001 - re-raised by the caller
            return None, exc

    def _invalidate_shards(self, touched: set[int]) -> int:
        """Evict only cache entries whose scope intersects ``touched``.

        Keys are ``(kind, scope, generations, ...)`` -- see the query
        methods below -- so ``key[1]`` is the scope tuple.
        """
        return self.cache.invalidate_where(
            lambda key: bool(touched.intersection(key[1]))
        )

    # ------------------------------------------------------------------
    def ingest(self, payload: object) -> dict[str, object]:
        """Route a batch to its owning shards; invalidates only those."""
        request = validate_ingest(payload)
        groups: dict[int, list[Document]] = {}
        if request.route == "round_robin":
            # One lock hold per batch: reserve the whole stride so a
            # batch's placement stays contiguous under racing ingests.
            with self._rr_lock:
                start = self._rr_next
                self._rr_next = (
                    start + len(request.dataset.documents)
                ) % self.num_shards
            for offset, doc in enumerate(request.dataset.documents):
                target = (start + offset) % self.num_shards
                groups.setdefault(target, []).append(doc)
        else:
            for doc in request.dataset.documents:
                target = shard_for_doc(
                    doc.doc_id, self.num_shards, self.range_width
                )
                groups.setdefault(target, []).append(doc)
        started = time.perf_counter()

        def leg(index: int) -> tuple[int, int, int]:
            docs = groups[index]
            shard = self.pool.shard(index)
            leg_started = time.perf_counter()
            # Each leg gets its own engine instance (stateless but cheap);
            # per-line SFAs depend only on (seed, text, doc_id, line_no),
            # so placement never changes a line's probabilities.
            ocr = SimulatedOcrEngine(seed=request.ocr_seed)
            with shard.write_lock:
                count = shard.writer.ingest(
                    Dataset(name=request.dataset.name, documents=docs),
                    ocr,
                    approaches=request.approaches,
                    workers=request.workers,
                )
                total = shard.writer.num_lines
            self.metrics.observe_shard(
                index, "ingest", time.perf_counter() - leg_started
            )
            return index, count, total

        results, error = self._fan_out_writes(sorted(groups), leg)
        touched = {index for index, _, _ in results}
        self.pool.bump(touched)
        evicted = self._invalidate_shards(touched)
        if error is not None:
            raise error
        return {
            "dataset": request.dataset.name,
            "route": request.route,
            "ingested_lines": sum(count for _, count, _ in results),
            "total_lines": self.total_lines(),
            "shards": {
                str(index): {"ingested_lines": count, "total_lines": total}
                for index, count, total in results
            },
            "evicted_cache_entries": evicted,
            "elapsed_s": time.perf_counter() - started,
        }

    # ------------------------------------------------------------------
    def search(self, payload: object) -> dict[str, object]:
        """Fan a search out over the scoped shards and merge the ranking."""
        request = validate_search(payload)
        scope = self._scope(request.shards)
        key = (
            "search",
            scope,
            self.pool.generations(scope),
            request.pattern,
            request.approach,
            request.plan,
            request.num_ans,
        )
        cached = self.cache.get(key)
        if cached is not None:
            return {**cached, "cached": True}
        started = time.perf_counter()

        def leg(index: int) -> tuple[int, str, list[Answer]]:
            leg_started = time.perf_counter()
            try:
                with self.pool.acquire(index) as db:
                    label, answers = run_search_plan(db, request)
            except Exception:
                self.metrics.observe_shard(
                    index, "search", time.perf_counter() - leg_started, error=True
                )
                raise
            self.metrics.observe_shard(
                index, "search", time.perf_counter() - leg_started
            )
            return index, label, answers

        results = self._fan_out(scope, leg)
        merged = merge_ranked(
            [(index, answers) for index, _, answers in results],
            request.num_ans,
        )
        labels = {label for _, label, _ in results}
        result = {
            "pattern": request.pattern,
            "approach": request.approach,
            "plan": labels.pop() if len(labels) == 1 else "mixed",
            "plans": {str(index): label for index, label, _ in results},
            "shards": list(scope),
            "count": len(merged),
            "answers": [
                {**answer_row(answer), "shard": shard}
                for shard, answer in merged
            ],
            "elapsed_s": time.perf_counter() - started,
        }
        self.cache.put(key, result)
        return {**result, "cached": False}

    # ------------------------------------------------------------------
    def sql(self, payload: object) -> dict[str, object]:
        """Distribute a probabilistic SELECT and merge exactly.

        Every shard runs the widened :func:`~repro.db.sql.shard_select`
        plan (full rows, base aggregates, no cutoff); the router merges
        with :func:`~repro.db.sql.merge_shard_rows`.
        """
        request = validate_sql(payload)
        scope = self._scope(request.shards)
        key = (
            "sql",
            scope,
            self.pool.generations(scope),
            request.query,
            request.approach,
            request.num_ans,
        )
        cached = self.cache.get(key)
        if cached is not None:
            return {**cached, "cached": True}
        try:
            parsed = parse_select(request.query)
        except SqlError as exc:
            raise ApiError(400, str(exc), code="sql_error") from exc
        base = shard_select(parsed)
        started = time.perf_counter()

        def leg(index: int) -> list[dict[str, object]]:
            leg_started = time.perf_counter()
            try:
                with self.pool.acquire(index) as db:
                    rows = execute_select(
                        db,
                        request.query,
                        approach=request.approach,
                        num_ans=None,
                        parsed=base,
                    )
            except SqlError as exc:
                self.metrics.observe_shard(
                    index, "sql", time.perf_counter() - leg_started, error=True
                )
                raise ApiError(400, str(exc), code="sql_error") from exc
            self.metrics.observe_shard(
                index, "sql", time.perf_counter() - leg_started
            )
            return rows

        shard_rows = self._fan_out(scope, leg)
        try:
            rows = merge_shard_rows(parsed, shard_rows, num_ans=request.num_ans)
        except SqlError as exc:
            raise ApiError(400, str(exc), code="sql_error") from exc
        result = {
            "query": request.query,
            "approach": request.approach,
            "shards": list(scope),
            "count": len(rows),
            "rows": rows,
            "elapsed_s": time.perf_counter() - started,
        }
        self.cache.put(key, result)
        return {**result, "cached": False}

    # ------------------------------------------------------------------
    def index(self, payload: object) -> dict[str, object]:
        """Build/rebuild the dictionary index per scoped shard.

        Each shard builds over its own data on the writer, then its pool
        broadcasts ``load_index`` so every pooled reader serves indexed
        plans immediately; the touched shards' cached results are
        evicted (plan choices and projected evaluations may change).
        """
        request = validate_index(payload)
        scope = self._scope(request.shards)
        started = time.perf_counter()

        def leg(index: int) -> tuple[int, int, bool]:
            shard = self.pool.shard(index)
            leg_started = time.perf_counter()
            with shard.write_lock:
                postings = shard.writer.build_index(
                    request.terms, approach=request.approach
                )
            reloaded = shard.pool.reload_index(request.approach)
            self.metrics.observe_shard(
                index, "index", time.perf_counter() - leg_started
            )
            return index, postings, reloaded

        results, error = self._fan_out_writes(scope, leg)
        touched = {index for index, _, _ in results}
        self.pool.bump(touched)
        evicted = self._invalidate_shards(touched)
        if error is not None:
            raise error
        return {
            "approach": request.approach,
            "terms": len(request.terms),
            "postings": sum(postings for _, postings, _ in results),
            "shards": {
                str(index): {"postings": postings, "reloaded": reloaded}
                for index, postings, reloaded in results
            },
            "evicted_cache_entries": evicted,
            "elapsed_s": time.perf_counter() - started,
        }

    # ------------------------------------------------------------------
    def total_lines(self) -> int:
        total = 0
        for shard in self.pool.shards:
            with shard.pool.acquire() as db:
                total += db.num_lines
        return total

    def health(self) -> dict[str, object]:
        """Liveness: every shard answers a trivial query."""
        per_shard: dict[str, int] = {}
        for shard in self.pool.shards:
            with shard.pool.acquire() as db:
                per_shard[str(shard.index)] = db.num_lines
        return {
            "status": "ok",
            "db": self.shard_dir,
            "num_shards": self.num_shards,
            "lines": sum(per_shard.values()),
            "shard_lines": per_shard,
            "uptime_s": self.metrics.uptime_s,
        }

    def stats(self) -> dict[str, object]:
        """Operational snapshot: per-shard db/pool plus shared registries."""
        from ..db.engine import APPROACHES

        shard_stats = []
        for shard, pool_stat in zip(self.pool.shards, self.pool.stats()):
            with shard.pool.acquire() as db:
                pool_stat = {
                    **pool_stat,
                    "lines": db.num_lines,
                    "storage_bytes": {
                        a: db.storage_bytes(a) for a in APPROACHES
                    },
                }
            shard_stats.append(pool_stat)
        return {
            "db": {
                "shard_dir": self.shard_dir,
                "num_shards": self.num_shards,
                "range_width": self.range_width,
                "lines": sum(s["lines"] for s in shard_stats),
            },
            "shards": shard_stats,
            "cache": self.cache.stats(),
            "requests": self.metrics.snapshot(),
            "uptime_s": self.metrics.uptime_s,
        }
