"""Sharded serving: one service routing over many StaccatoDB files.

One SQLite file stops scaling long before an OCR corpus does, so the
service can run over N shards, each a complete StaccatoDB file holding a
disjoint subset of the documents:

* **Routing** -- documents are partitioned by DocId range:
  ``shard_for_doc`` stripes contiguous ranges of ``range_width`` ids
  across the shards, so a document (and every line of it) lives wholly
  on one shard and repeated batches for the same document land in the
  same file.  ``/ingest`` may instead ask for ``"route":
  "round_robin"`` when placement does not matter; either way a document
  already present on some shard is routed back to that owner, so
  re-ingestion can never split one document across shards.
* **Fan-out** -- ``/search`` and ``/sql`` execute on every scoped shard
  concurrently (a :class:`~concurrent.futures.ThreadPoolExecutor` leg
  per shard, each leg borrowing from that shard's reader pool) and the
  per-shard ranked relations are merged by probability with stable
  (DocId, LineNo, shard) tie-breaks -- identical answers and ranking to
  one database holding the union.
* **Replication** -- each shard may keep N read replicas (see
  :mod:`repro.service.replicas`): writes re-apply to every copy under
  the shard's write lock, reads round-robin over the healthy copies,
  and a failing replica trips a circuit breaker while its in-flight
  query retries transparently on a sibling.
* **Per-shard invalidation** -- every cache key embeds the shard scope
  it was computed over plus those shards' generation counters; an
  ingest or index rebuild bumps only the touched shards' generations
  and evicts only the entries that depended on them.
* **``POST /index``** -- builds/rebuilds the dictionary index shard by
  shard and broadcasts ``load_index`` to that shard's pool, no
  out-of-band CLI step required.
* **``POST /replicas``** -- attaches (online-backup copy of a live
  sibling) or detaches one replica of one shard at runtime.

:class:`ShardedQueryService` duck-types :class:`~repro.service.app.
QueryService` (same endpoint methods, same metrics registry), so the
HTTP layer in :mod:`repro.service.server` serves either unchanged.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence

from ..automata.regex import RegexError
from ..db.engine import StaccatoDB, shard_paths
from ..db.sql import SqlError, execute_select, merge_shard_rows, parse_select, shard_select
from ..ocr.corpus import Dataset, Document
from ..ocr.engine import SimulatedOcrEngine
from ..query.answers import Answer
from .app import answer_row, check_pattern, run_search_plan
from .cache import QueryCache
from .metrics import ServiceMetrics
from .replicas import DEFAULT_COOLDOWN_S, Replica, ReplicaSet, ReplicaUnavailable
from .validation import (
    ApiError,
    validate_index,
    validate_ingest,
    validate_replicas,
    validate_search,
    validate_sql,
)

__all__ = [
    "DEFAULT_RANGE_WIDTH",
    "shard_for_doc",
    "merge_ranked",
    "ShardedPool",
    "ShardedQueryService",
]

#: DocIds per contiguous routing range.  Ranges stripe across shards
#: (``(doc_id // width) % num_shards``), so bulk loads of consecutive ids
#: spread out while each document still has exactly one owner.
DEFAULT_RANGE_WIDTH = 64

#: DocIds per IN(...) batch when probing shards for existing owners.
_OWNER_PROBE_BATCH = 400

#: In-flight placement entries retained (see ``_placements``).
_PLACEMENTS_CAP = 65536


def shard_for_doc(
    doc_id: int, num_shards: int, range_width: int = DEFAULT_RANGE_WIDTH
) -> int:
    """The shard owning ``doc_id`` under DocId-range partitioning."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if range_width < 1:
        raise ValueError("range_width must be >= 1")
    return (doc_id // range_width) % num_shards


def merge_ranked(
    per_shard: Iterable[tuple[int, Sequence[Answer]]],
    num_ans: int | None,
) -> list[tuple[int, Answer]]:
    """Merge per-shard ranked relations into one global ranking.

    Sorts by descending probability with a (DocId, LineNo, shard)
    tie-break -- the order a single database produces when documents
    were ingested in DocId order, with the shard index as the final key
    so the merged order is fully deterministic no matter which fan-out
    leg finished first -- and cuts at ``num_ans``.  Each kept answer is
    tagged with its source shard (line ids are shard-local).
    """
    rows = [
        (shard, answer) for shard, answers in per_shard for answer in answers
    ]
    rows.sort(
        key=lambda row: (
            -row[1].probability,
            row[1].doc_id,
            row[1].line_no,
            row[0],
        )
    )
    if num_ans is not None:
        rows = rows[:num_ans]
    return rows


class _Shard:
    """One shard's moving parts: replica set, write lock, generation."""

    __slots__ = ("index", "path", "write_lock", "replicas", "generation")

    def __init__(
        self,
        index: int,
        path: str,
        k: int,
        m: int,
        pool_size: int,
        index_approach: str,
        num_replicas: int,
        cooldown_s: float,
        clock: Callable[[], float],
    ) -> None:
        self.index = index
        self.path = path
        self.write_lock = threading.Lock()
        self.replicas = ReplicaSet(
            index,
            path,
            num_replicas,
            k=k,
            m=m,
            pool_size=pool_size,
            index_approach=index_approach,
            cooldown_s=cooldown_s,
            clock=clock,
        )
        self.generation = 0

    @property
    def writer(self) -> StaccatoDB:
        """The first attached replica's writer (tests, inspection)."""
        return self.replicas.replicas()[0].writer

    @property
    def pool(self):
        """The first attached replica's reader pool (tests, inspection)."""
        return self.replicas.replicas()[0].pool


class ShardedPool:
    """Per-shard replica sets plus per-shard generation counters.

    The generation counter is the invalidation currency: every committed
    write (ingest batch or index rebuild) to a shard bumps its counter,
    and cached results carry the generation vector of the shards they
    read -- a stale result's key simply never matches again, which also
    closes the compute/invalidate race without a global generation.
    Replication never enters the cache key: replicas are written in
    lockstep, so one generation per shard describes every copy.
    """

    def __init__(
        self,
        paths: Sequence[str],
        k: int = 25,
        m: int = 40,
        pool_size: int = 2,
        index_approach: str = "staccato",
        num_replicas: int = 1,
        cooldown_s: float = DEFAULT_COOLDOWN_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not paths:
            raise ValueError("a sharded pool needs at least one shard path")
        if num_replicas < 1:
            raise ValueError("each shard needs at least one replica")
        self._gen_lock = threading.Lock()
        self.num_replicas = num_replicas
        self.shards = [
            _Shard(
                i,
                path,
                k,
                m,
                pool_size,
                index_approach,
                num_replicas,
                cooldown_s,
                clock,
            )
            for i, path in enumerate(paths)
        ]

    def __len__(self) -> int:
        return len(self.shards)

    def shard(self, index: int) -> _Shard:
        return self.shards[index]

    def read(
        self,
        index: int,
        attempt: Callable[[Replica], object],
        passthrough: tuple[type[BaseException], ...] = (),
    ) -> object:
        """Run one read attempt on shard ``index`` with replica failover."""
        return self.shards[index].replicas.run(attempt, passthrough=passthrough)

    # ------------------------------------------------------------------
    def generations(self, scope: Sequence[int]) -> tuple[int, ...]:
        """Snapshot of the scoped shards' generation counters."""
        with self._gen_lock:
            return tuple(self.shards[i].generation for i in scope)

    def bump(self, scope: Iterable[int]) -> None:
        """Advance the touched shards' generations after a write."""
        with self._gen_lock:
            for i in scope:
                self.shards[i].generation += 1

    # ------------------------------------------------------------------
    def stats(self) -> list[dict[str, object]]:
        """Per-shard occupancy/generation/replica snapshot for ``/stats``."""
        return [
            {
                "index": shard.index,
                "path": shard.path,
                "generation": shard.generation,
                "pool": shard.pool.stats(),
                "replicas": shard.replicas.stats(),
            }
            for shard in self.shards
        ]

    def close(self) -> None:
        for shard in self.shards:
            shard.replicas.close()


class ShardedQueryService:
    """The StaccatoDB query service over N DocId-range shards."""

    def __init__(
        self,
        shard_dir: str,
        num_shards: int,
        k: int = 25,
        m: int = 40,
        pool_size: int = 2,
        cache_size: int = 256,
        index_approach: str = "staccato",
        range_width: int = DEFAULT_RANGE_WIDTH,
        replicas: int = 1,
        replica_cooldown_s: float = DEFAULT_COOLDOWN_S,
    ) -> None:
        if num_shards < 1:
            raise ValueError("a sharded service needs at least one shard")
        os.makedirs(shard_dir, exist_ok=True)
        self.shard_dir = shard_dir
        self.num_shards = num_shards
        self.range_width = range_width
        self.index_approach = index_approach
        self.paths = shard_paths(shard_dir, num_shards)
        self.pool = ShardedPool(
            self.paths,
            k=k,
            m=m,
            pool_size=pool_size,
            index_approach=index_approach,
            num_replicas=replicas,
            cooldown_s=replica_cooldown_s,
        )
        self.cache = QueryCache(cache_size)
        self.metrics = ServiceMetrics()
        self._rr_lock = threading.Lock()
        self._rr_next = 0
        # Placements decided in-process, including writes still in
        # flight: the shard probe alone cannot see a racing ingest that
        # has not committed yet, so without this registry two
        # concurrent batches carrying the same new document could each
        # pick it a different shard.  Guarded by ``_rr_lock``; bounded
        # (oldest-first trim) because once a placement's write commits
        # the probe takes over as the durable source -- only entries
        # young enough to race an in-flight batch still matter.
        self._placements: "OrderedDict[int, int]" = OrderedDict()
        self._executor = ThreadPoolExecutor(
            max_workers=num_shards, thread_name_prefix="shard-fanout"
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._executor.shutdown(wait=True)
        self.pool.close()

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _scope(self, shards: tuple[int, ...] | None) -> tuple[int, ...]:
        """The shard indices a request fans out to (default: all)."""
        if shards is None:
            return tuple(range(self.num_shards))
        bad = [i for i in shards if i >= self.num_shards]
        if bad:
            raise ApiError(
                400,
                f"unknown shards {bad}; this service has "
                f"{self.num_shards} shards (0..{self.num_shards - 1})",
                code="unknown_shard",
            )
        return shards

    def _fan_out(self, scope: Sequence[int], leg):
        """Run ``leg(shard_index)`` on every scoped shard concurrently."""
        return list(self._executor.map(leg, scope))

    def _fan_out_writes(self, scope: Sequence[int], leg):
        """Fan a *write* out, never losing a committed shard's result.

        Unlike :meth:`_fan_out`, a failing leg does not mask the legs
        that already committed: the caller gets every successful result
        so it can bump those shards' generations and evict their cache
        entries *before* the first error is re-raised -- otherwise a
        partial failure would leave pre-write cached answers servable
        for shards whose batch did land.
        """
        wrapped = self._executor.map(
            lambda index: (index, *self._attempt(leg, index)), scope
        )
        succeeded, first_error = [], None
        for index, value, error in wrapped:
            if error is None:
                succeeded.append(value)
            elif first_error is None:
                first_error = error
        return succeeded, first_error

    @staticmethod
    def _attempt(leg, index: int):
        try:
            return leg(index), None
        except Exception as exc:  # noqa: BLE001 - re-raised by the caller
            return None, exc

    def _invalidate_shards(self, touched: set[int]) -> int:
        """Evict only cache entries whose scope intersects ``touched``.

        Keys are ``(kind, scope, generations, ...)`` -- see the query
        methods below -- so ``key[1]`` is the scope tuple.
        """
        return self.cache.invalidate_where(
            lambda key: bool(touched.intersection(key[1]))
        )

    # ------------------------------------------------------------------
    def _replica_read(
        self,
        index: int,
        endpoint: str,
        fn: Callable[[StaccatoDB], object],
    ) -> object:
        """One shard leg's read with replica failover and per-replica timing."""

        def attempt(replica: Replica) -> object:
            started = time.perf_counter()
            try:
                with replica.pool.acquire() as db:
                    result = fn(db)
            except ApiError:
                raise  # client error; not the replica's fault
            except Exception:
                self.metrics.observe_replica(
                    index,
                    replica.replica_index,
                    endpoint,
                    time.perf_counter() - started,
                    error=True,
                )
                raise
            self.metrics.observe_replica(
                index,
                replica.replica_index,
                endpoint,
                time.perf_counter() - started,
            )
            return result

        return self.pool.read(index, attempt, passthrough=(ApiError,))

    @staticmethod
    def _shard_unavailable(index: int, exc: ReplicaUnavailable) -> ApiError:
        return ApiError(503, str(exc), code="shard_unavailable")

    # ------------------------------------------------------------------
    def _existing_owners(self, doc_ids: Sequence[int]) -> dict[int, int]:
        """Which shard already holds each of ``doc_ids`` (absent: none).

        Re-ingesting a known document must land on the shard that
        already has its earlier lines -- otherwise one document splits
        across shards and the merged ranking carries duplicate
        (DocId, LineNo) rows -- so every ingest first probes the shards
        (concurrently, one leg each) for the batch's DocIds.  A
        document somehow present on several shards (a pre-fix split)
        keeps its lowest-indexed owner.  With one shard there is
        nothing to probe: every document has the same owner.
        """
        if self.num_shards == 1 or not doc_ids:
            return {}
        ids = sorted(set(doc_ids))

        def probe(db: StaccatoDB) -> set[int]:
            found: set[int] = set()
            for at in range(0, len(ids), _OWNER_PROBE_BATCH):
                batch = ids[at : at + _OWNER_PROBE_BATCH]
                marks = ",".join("?" * len(batch))
                rows = db.conn.execute(
                    f"SELECT DISTINCT DocId FROM MasterData "
                    f"WHERE DocId IN ({marks})",
                    batch,
                ).fetchall()
                found.update(row[0] for row in rows)
            return found

        def leg(index: int) -> set[int]:
            try:
                return self._replica_read(index, "ingest", probe)
            except ReplicaUnavailable as exc:
                raise self._shard_unavailable(index, exc) from exc

        owners: dict[int, int] = {}
        for index, present in enumerate(
            self._fan_out(range(self.num_shards), leg)
        ):
            for doc_id in present:
                owners.setdefault(doc_id, index)
        return owners

    # ------------------------------------------------------------------
    def ingest(self, payload: object) -> dict[str, object]:
        """Route a batch to its owning shards; invalidates only those."""
        request = validate_ingest(payload)
        owners = self._existing_owners(
            [doc.doc_id for doc in request.dataset.documents]
        )
        groups: dict[int, list[Document]] = {}
        # Placement is decided under one lock hold per batch: committed
        # rows (the probe) win, then in-process placements from racing
        # or in-flight batches, and only genuinely new documents get a
        # fresh assignment -- a contiguous round-robin stride, or their
        # DocId-range owner.
        with self._rr_lock:
            for doc_id, index in self._placements.items():
                owners.setdefault(doc_id, index)
            new_docs = [
                doc
                for doc in request.dataset.documents
                if doc.doc_id not in owners
            ]
            if request.route == "round_robin":
                start = self._rr_next
                self._rr_next = (start + len(new_docs)) % self.num_shards
                for offset, doc in enumerate(new_docs):
                    owners[doc.doc_id] = (start + offset) % self.num_shards
            else:
                for doc in new_docs:
                    owners[doc.doc_id] = shard_for_doc(
                        doc.doc_id, self.num_shards, self.range_width
                    )
            # Remember only the fresh assignments (probed owners are
            # already durable on disk), trimming the oldest beyond the
            # cap to keep a long-lived router's memory flat.
            for doc in new_docs:
                self._placements[doc.doc_id] = owners[doc.doc_id]
            while len(self._placements) > _PLACEMENTS_CAP:
                self._placements.popitem(last=False)
        for doc in request.dataset.documents:
            groups.setdefault(owners[doc.doc_id], []).append(doc)
        started = time.perf_counter()

        def leg(index: int) -> tuple[int, int, int]:
            docs = groups[index]
            shard = self.pool.shard(index)
            leg_started = time.perf_counter()

            def apply(replica: Replica) -> tuple[int, int]:
                # Each replica gets its own engine instance (stateless
                # but cheap); per-line SFAs depend only on (seed, text,
                # doc_id, line_no), so every copy stores identical rows.
                ocr = SimulatedOcrEngine(seed=request.ocr_seed)
                count = replica.writer.ingest(
                    Dataset(name=request.dataset.name, documents=docs),
                    ocr,
                    approaches=request.approaches,
                    workers=request.workers,
                )
                return count, replica.writer.num_lines

            try:
                with shard.write_lock:
                    count, total = shard.replicas.apply_write(apply)
            except ReplicaUnavailable as exc:
                # Same condition, same status as the read paths: a
                # shard with no writable replica is 503, not a 500.
                self.metrics.observe_shard(
                    index, "ingest", time.perf_counter() - leg_started, error=True
                )
                raise self._shard_unavailable(index, exc) from exc
            except Exception:
                self.metrics.observe_shard(
                    index, "ingest", time.perf_counter() - leg_started, error=True
                )
                raise
            self.metrics.observe_shard(
                index, "ingest", time.perf_counter() - leg_started
            )
            return index, count, total

        results, error = self._fan_out_writes(sorted(groups), leg)
        touched = {index for index, _, _ in results}
        self.pool.bump(touched)
        evicted = self._invalidate_shards(touched)
        if error is not None:
            raise error
        return {
            "dataset": request.dataset.name,
            "route": request.route,
            "ingested_lines": sum(count for _, count, _ in results),
            "total_lines": self.total_lines(),
            "shards": {
                str(index): {"ingested_lines": count, "total_lines": total}
                for index, count, total in results
            },
            "evicted_cache_entries": evicted,
            "elapsed_s": time.perf_counter() - started,
        }

    # ------------------------------------------------------------------
    def search(self, payload: object) -> dict[str, object]:
        """Fan a search out over the scoped shards and merge the ranking."""
        request = validate_search(payload)
        scope = self._scope(request.shards)
        # A pattern that cannot compile would fail deterministically on
        # every replica -- a 400, never breaker food.
        check_pattern(request.pattern)
        key = (
            "search",
            scope,
            self.pool.generations(scope),
            request.pattern,
            request.approach,
            request.plan,
            request.num_ans,
        )
        cached = self.cache.get(key)
        if cached is not None:
            return {**cached, "cached": True}
        started = time.perf_counter()

        def leg(index: int) -> tuple[int, str, list[Answer]]:
            leg_started = time.perf_counter()
            try:
                label, answers = self._replica_read(
                    index, "search", lambda db: run_search_plan(db, request)
                )
            except ReplicaUnavailable as exc:
                self.metrics.observe_shard(
                    index, "search", time.perf_counter() - leg_started, error=True
                )
                raise self._shard_unavailable(index, exc) from exc
            except Exception:
                self.metrics.observe_shard(
                    index, "search", time.perf_counter() - leg_started, error=True
                )
                raise
            self.metrics.observe_shard(
                index, "search", time.perf_counter() - leg_started
            )
            return index, label, answers

        results = self._fan_out(scope, leg)
        merged = merge_ranked(
            [(index, answers) for index, _, answers in results],
            request.num_ans,
        )
        labels = {label for _, label, _ in results}
        result = {
            "pattern": request.pattern,
            "approach": request.approach,
            "plan": labels.pop() if len(labels) == 1 else "mixed",
            "plans": {str(index): label for index, label, _ in results},
            "shards": list(scope),
            "count": len(merged),
            "answers": [
                {**answer_row(answer), "shard": shard}
                for shard, answer in merged
            ],
            "elapsed_s": time.perf_counter() - started,
        }
        self.cache.put(key, result)
        return {**result, "cached": False}

    # ------------------------------------------------------------------
    def sql(self, payload: object) -> dict[str, object]:
        """Distribute a probabilistic SELECT and merge exactly.

        Every shard runs the widened :func:`~repro.db.sql.shard_select`
        plan (full rows, base aggregates, no cutoff); the router merges
        with :func:`~repro.db.sql.merge_shard_rows`.
        """
        request = validate_sql(payload)
        scope = self._scope(request.shards)
        key = (
            "sql",
            scope,
            self.pool.generations(scope),
            request.query,
            request.approach,
            request.num_ans,
        )
        cached = self.cache.get(key)
        if cached is not None:
            return {**cached, "cached": True}
        try:
            parsed = parse_select(request.query)
        except SqlError as exc:
            raise ApiError(400, str(exc), code="sql_error") from exc
        base = shard_select(parsed)
        started = time.perf_counter()

        def evaluate(db: StaccatoDB) -> list[dict[str, object]]:
            try:
                return execute_select(
                    db,
                    request.query,
                    approach=request.approach,
                    num_ans=None,
                    parsed=base,
                )
            except (SqlError, RegexError) as exc:
                # A query error, not a replica fault: surface it as the
                # structured 400 instead of failing over.
                raise ApiError(400, str(exc), code="sql_error") from exc

        def leg(index: int) -> list[dict[str, object]]:
            leg_started = time.perf_counter()
            try:
                rows = self._replica_read(index, "sql", evaluate)
            except ReplicaUnavailable as exc:
                self.metrics.observe_shard(
                    index, "sql", time.perf_counter() - leg_started, error=True
                )
                raise self._shard_unavailable(index, exc) from exc
            except ApiError:
                self.metrics.observe_shard(
                    index, "sql", time.perf_counter() - leg_started, error=True
                )
                raise
            self.metrics.observe_shard(
                index, "sql", time.perf_counter() - leg_started
            )
            return rows

        shard_rows = self._fan_out(scope, leg)
        try:
            rows = merge_shard_rows(parsed, shard_rows, num_ans=request.num_ans)
        except SqlError as exc:
            raise ApiError(400, str(exc), code="sql_error") from exc
        result = {
            "query": request.query,
            "approach": request.approach,
            "shards": list(scope),
            "count": len(rows),
            "rows": rows,
            "elapsed_s": time.perf_counter() - started,
        }
        self.cache.put(key, result)
        return {**result, "cached": False}

    # ------------------------------------------------------------------
    def index(self, payload: object) -> dict[str, object]:
        """Build/rebuild the dictionary index per scoped shard.

        Each scoped shard builds over its own data on every replica's
        writer (lockstep, like ingest), then each replica's pool
        broadcasts ``load_index`` so every pooled reader serves indexed
        plans immediately; the touched shards' cached results are
        evicted (plan choices and projected evaluations may change).
        """
        request = validate_index(payload)
        scope = self._scope(request.shards)
        started = time.perf_counter()

        def leg(index: int) -> tuple[int, int, bool]:
            shard = self.pool.shard(index)
            leg_started = time.perf_counter()

            def build(replica: Replica) -> tuple[int, bool]:
                postings = replica.writer.build_index(
                    request.terms, approach=request.approach
                )
                return postings, replica.pool.reload_index(request.approach)

            try:
                with shard.write_lock:
                    postings, reloaded = shard.replicas.apply_write(build)
            except ReplicaUnavailable as exc:
                self.metrics.observe_shard(
                    index, "index", time.perf_counter() - leg_started, error=True
                )
                raise self._shard_unavailable(index, exc) from exc
            except Exception:
                self.metrics.observe_shard(
                    index, "index", time.perf_counter() - leg_started, error=True
                )
                raise
            self.metrics.observe_shard(
                index, "index", time.perf_counter() - leg_started
            )
            return index, postings, reloaded

        results, error = self._fan_out_writes(scope, leg)
        touched = {index for index, _, _ in results}
        self.pool.bump(touched)
        evicted = self._invalidate_shards(touched)
        if error is not None:
            raise error
        return {
            "approach": request.approach,
            "terms": len(request.terms),
            "postings": sum(postings for _, postings, _ in results),
            "shards": {
                str(index): {"postings": postings, "reloaded": reloaded}
                for index, postings, reloaded in results
            },
            "evicted_cache_entries": evicted,
            "elapsed_s": time.perf_counter() - started,
        }

    # ------------------------------------------------------------------
    def replicas(self, payload: object) -> dict[str, object]:
        """``POST /replicas``: attach or detach one replica at runtime.

        Attach copies a live sibling (SQLite online backup) under the
        shard's write lock, so the new replica joins in sync; detach
        removes the replica from the rotation and closes it once its
        in-flight queries drain.  Both return the shard's new replica
        roster.
        """
        request = validate_replicas(payload)
        if request.shard >= self.num_shards:
            raise ApiError(
                400,
                f"unknown shard {request.shard}; this service has "
                f"{self.num_shards} shards (0..{self.num_shards - 1})",
                code="unknown_shard",
            )
        shard = self.pool.shard(request.shard)
        started = time.perf_counter()
        if request.action == "attach":
            with shard.write_lock:
                try:
                    replica = shard.replicas.attach()
                except ReplicaUnavailable as exc:
                    raise self._shard_unavailable(request.shard, exc) from exc
            affected = {"replica": replica.replica_index, "path": replica.path}
        else:
            with shard.write_lock:
                try:
                    removed = shard.replicas.detach(request.replica)
                except KeyError:
                    raise ApiError(
                        404,
                        f"shard {request.shard} has no replica "
                        f"{request.replica}",
                        code="unknown_replica",
                    ) from None
                except ValueError as exc:
                    raise ApiError(409, str(exc), code="last_replica") from exc
            affected = {"replica": removed.replica_index, "path": removed.path}
        return {
            "action": request.action,
            "shard": request.shard,
            **affected,
            "replicas": shard.replicas.stats(),
            "elapsed_s": time.perf_counter() - started,
        }

    # ------------------------------------------------------------------
    def total_lines(self) -> int:
        """Lines across all shards (skipping any fully-down shard)."""
        total = 0
        for index in range(self.num_shards):
            try:
                total += self._replica_read(
                    index, "health", lambda db: db.num_lines
                )
            except ReplicaUnavailable:
                continue
        return total

    def health(self) -> dict[str, object]:
        """Liveness: every shard answers a trivial query on some replica.

        A shard with no healthy replica degrades the status (its line
        count reads ``null``) instead of failing the probe -- the
        service is still serving every other shard.
        """
        per_shard: dict[str, int | None] = {}
        replica_health: dict[str, dict[str, int]] = {}
        degraded = False
        for index in range(self.num_shards):
            shard = self.pool.shard(index)
            try:
                per_shard[str(index)] = self._replica_read(
                    index, "health", lambda db: db.num_lines
                )
            except ReplicaUnavailable:
                per_shard[str(index)] = None
                degraded = True
            replica_health[str(index)] = {
                "healthy": len(shard.replicas.healthy()),
                "attached": len(shard.replicas),
            }
        return {
            "status": "degraded" if degraded else "ok",
            "db": self.shard_dir,
            "num_shards": self.num_shards,
            "lines": sum(n for n in per_shard.values() if n is not None),
            "shard_lines": per_shard,
            "replicas": replica_health,
            "uptime_s": self.metrics.uptime_s,
        }

    def stats(self) -> dict[str, object]:
        """Operational snapshot: per-shard db/pool/replicas plus registries."""
        from ..db.engine import APPROACHES

        shard_stats = []
        for shard, pool_stat in zip(self.pool.shards, self.pool.stats()):
            def describe(db: StaccatoDB) -> dict[str, object]:
                return {
                    "lines": db.num_lines,
                    "storage_bytes": {
                        a: db.storage_bytes(a) for a in APPROACHES
                    },
                }
            try:
                described = self._replica_read(shard.index, "stats", describe)
            except ReplicaUnavailable:
                described = {"lines": None, "storage_bytes": None}
            shard_stats.append({**pool_stat, **described})
        return {
            "db": {
                "shard_dir": self.shard_dir,
                "num_shards": self.num_shards,
                "range_width": self.range_width,
                "num_replicas": self.pool.num_replicas,
                "lines": sum(
                    s["lines"] for s in shard_stats if s["lines"] is not None
                ),
            },
            "shards": shard_stats,
            "cache": self.cache.stats(),
            "requests": self.metrics.snapshot(),
            "uptime_s": self.metrics.uptime_s,
        }
