"""Sharded serving: one service routing over many StaccatoDB files.

One SQLite file stops scaling long before an OCR corpus does, so the
service can run over N shards, each a complete StaccatoDB file holding a
disjoint subset of the documents:

* **Routing** -- documents are partitioned by DocId range:
  ``shard_for_doc`` stripes contiguous ranges of ``range_width`` ids
  across the shards, so a document (and every line of it) lives wholly
  on one shard and repeated batches for the same document land in the
  same file.  ``/ingest`` may instead ask for ``"route":
  "round_robin"`` when placement does not matter; either way a document
  already present on some shard is routed back to that owner, so
  re-ingestion can never split one document across shards.
* **Fan-out** -- ``/search`` and ``/sql`` execute on every scoped shard
  concurrently (a :class:`~concurrent.futures.ThreadPoolExecutor` leg
  per shard, each leg borrowing from that shard's reader pool) and the
  per-shard ranked relations are merged by probability with stable
  (DocId, LineNo, shard) tie-breaks -- identical answers and ranking to
  one database holding the union.
* **Replication** -- each shard may keep N read replicas (see
  :mod:`repro.service.replicas`): writes re-apply to every copy under
  the shard's write lock, reads round-robin over the healthy copies,
  and a failing replica trips a circuit breaker while its in-flight
  query retries transparently on a sibling.
* **Per-shard invalidation** -- every cache key embeds the shard scope
  it was computed over plus those shards' generation counters; an
  ingest or index rebuild bumps only the touched shards' generations
  and evicts only the entries that depended on them.
* **``POST /index``** -- builds/rebuilds the dictionary index shard by
  shard and broadcasts ``load_index`` to that shard's pool, no
  out-of-band CLI step required.
* **``POST /replicas``** -- attaches (online-backup copy of a live
  sibling) or detaches one replica of one shard at runtime.
* **Online rebalancing** -- a ``rebalance`` background job (see
  :mod:`repro.service.jobs`) moves one DocId range between two live
  shards under traffic: rows are copied to the target and its replicas
  and verified, then ownership flips in a **single atomic publish** of
  one immutable :class:`RoutingTable` (readers grab the whole table by
  reference; they can never observe a range owned by both -- or
  neither -- shard), then the source's rows are deleted and the moved
  range's cache entries evicted.  While copies transiently exist on two
  shards, :func:`merge_ranked` de-duplicates by (DocId, LineNo) and
  ``/sql`` switches to a full-row plan whose aggregates the router
  recomputes, so answers stay exact through every phase.

:class:`ShardedQueryService` duck-types :class:`~repro.service.app.
QueryService` (same endpoint methods, same metrics registry), so the
HTTP layer in :mod:`repro.service.server` serves either unchanged.
"""

from __future__ import annotations

import bisect
import contextlib
import json
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ..automata.regex import RegexError
from ..db.engine import StaccatoDB, shard_paths
from ..db.sql import (
    SqlError,
    aggregate_full_rows,
    execute_select,
    merge_shard_rows,
    parse_select,
    shard_select,
    shard_select_rows,
)
from ..ocr.corpus import Dataset, Document
from ..ocr.engine import SimulatedOcrEngine
from ..query.answers import Answer
from ..query.memo import KernelMemo
from . import trace
from .app import answer_row, check_pattern, index_fingerprint, run_search_plan
from .cache import QueryCache, key_from_json, key_to_json
from .jobs import Job, JobCancelled, JobEngine, JobsApi, atomic_write_json
from .metrics import ServiceMetrics
from .profiler import SamplingProfiler
from .trace import ObservabilityApi, Tracer
from .replicas import (
    DEFAULT_COOLDOWN_S,
    Replica,
    ReplicaSet,
    ReplicaUnavailable,
    ordered_locks,
)
from .validation import (
    ApiError,
    validate_index,
    validate_ingest,
    validate_rebalance_params,
    validate_replicas,
    validate_search,
    validate_sql,
)

__all__ = [
    "DEFAULT_RANGE_WIDTH",
    "ROUTING_FILE",
    "shard_for_doc",
    "merge_ranked",
    "RoutingTable",
    "ShardedPool",
    "ShardedQueryService",
]

#: DocIds per contiguous routing range.  Ranges stripe across shards
#: (``(doc_id // width) % num_shards``), so bulk loads of consecutive ids
#: spread out while each document still has exactly one owner.
DEFAULT_RANGE_WIDTH = 64

#: DocIds per IN(...) batch when probing shards for existing owners.
_OWNER_PROBE_BATCH = 400

#: In-flight placement entries retained (see ``_placements``).
_PLACEMENTS_CAP = 65536

#: Where the shard router persists its routing overrides.
ROUTING_FILE = "routing.json"

#: Sidecar files of the jobs subsystem inside the shard directory.
JOBS_JOURNAL_FILE = "jobs.json"
CACHE_SNAPSHOT_FILE = "cache-snapshot.json"
#: Moves that may have left rows on two shards (recorded before the
#: copy, cleared on convergence) -- reloaded at startup so ``/sql``
#: keeps using the de-duplicating plan until a re-run converges.
PENDING_MOVES_FILE = "rebalance-pending.json"

#: Rounds an ingest batch may be re-dispatched when a concurrent
#: rebalance moves its documents between placement and commit.  One
#: hop settles a move (overrides are stable once published); the head
#: room only covers back-to-back rebalances of the same range.
_MAX_REROUTE_ROUNDS = 4


def shard_for_doc(
    doc_id: int, num_shards: int, range_width: int = DEFAULT_RANGE_WIDTH
) -> int:
    """The shard owning ``doc_id`` under DocId-range partitioning."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if range_width < 1:
        raise ValueError("range_width must be >= 1")
    return (doc_id // range_width) % num_shards


class RoutingTable:
    """Immutable DocId -> shard ownership: striping plus move overrides.

    The default placement is the striped :func:`shard_for_doc`; a
    rebalance layers an **override** ``[doc_lo, doc_hi] -> shard`` on
    top.  Instances are never mutated after construction -- a rebalance
    builds a successor with :meth:`with_move` and the router swaps the
    whole object in one atomic publish under its routing lock, so a
    concurrent reader holds either the old table or the new one, never
    a half-updated hybrid where a range has two owners (or none).

    Overrides are kept sorted and non-overlapping (a later move splices
    over earlier ones), so lookups are a bisect.
    """

    __slots__ = ("num_shards", "range_width", "overrides", "_bounds")

    def __init__(
        self,
        num_shards: int,
        range_width: int = DEFAULT_RANGE_WIDTH,
        overrides: Sequence[tuple[int, int, int]] = (),
    ) -> None:
        self.num_shards = num_shards
        self.range_width = range_width
        cleaned = sorted(
            (int(lo), int(hi), int(shard)) for lo, hi, shard in overrides
        )
        for (lo, hi, _), (next_lo, _, _) in zip(cleaned, cleaned[1:]):
            if next_lo <= hi:
                raise ValueError("routing overrides must not overlap")
        self.overrides: tuple[tuple[int, int, int], ...] = tuple(cleaned)
        self._bounds = [lo for lo, _, _ in self.overrides]

    # ------------------------------------------------------------------
    def override_owner(self, doc_id: int) -> int | None:
        """The override covering ``doc_id``, or None for striped routing."""
        at = bisect.bisect_right(self._bounds, doc_id) - 1
        if at >= 0:
            lo, hi, shard = self.overrides[at]
            if lo <= doc_id <= hi:
                return shard
        return None

    def owner(self, doc_id: int) -> int:
        """The shard a *new* document with this DocId is placed on."""
        override = self.override_owner(doc_id)
        if override is not None:
            return override
        return shard_for_doc(doc_id, self.num_shards, self.range_width)

    def with_move(self, doc_lo: int, doc_hi: int, target: int) -> "RoutingTable":
        """A successor table where ``[doc_lo, doc_hi]`` belongs to ``target``."""
        if doc_hi < doc_lo:
            raise ValueError("doc_hi must be >= doc_lo")
        spliced: list[tuple[int, int, int]] = []
        for lo, hi, shard in self.overrides:
            if hi < doc_lo or lo > doc_hi:
                spliced.append((lo, hi, shard))
                continue
            if lo < doc_lo:
                spliced.append((lo, doc_lo - 1, shard))
            if hi > doc_hi:
                spliced.append((doc_hi + 1, hi, shard))
        spliced.append((doc_lo, doc_hi, target))
        return RoutingTable(self.num_shards, self.range_width, spliced)

    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, object]:
        return {
            "num_shards": self.num_shards,
            "range_width": self.range_width,
            "overrides": [list(entry) for entry in self.overrides],
        }

    @classmethod
    def load(
        cls, shard_dir: str, num_shards: int, range_width: int
    ) -> "RoutingTable":
        """The persisted table of a previous run, or a fresh striped one.

        A sidecar describing a different layout (shard count or stripe
        width changed) is ignored: its overrides are meaningless under
        the new geometry, and plain striping plus owner-probing keeps
        every existing document readable.
        """
        path = os.path.join(shard_dir, ROUTING_FILE)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            if (
                data.get("num_shards") == num_shards
                and data.get("range_width") == range_width
            ):
                return cls(
                    num_shards,
                    range_width,
                    [tuple(entry) for entry in data.get("overrides", [])],
                )
        except (OSError, json.JSONDecodeError, ValueError, TypeError):
            pass
        return cls(num_shards, range_width)

    def save(self, shard_dir: str) -> None:
        try:
            atomic_write_json(
                os.path.join(shard_dir, ROUTING_FILE), self.to_json()
            )
        except OSError:
            pass  # persistence is best-effort; the live table is in memory


class _MoveGate:
    """Active rebalance moves, plus a drain barrier for SQL readers.

    ``/sql`` legs return scalar aggregates that cannot be de-duplicated
    after the fact, so a request must *know* a move is in flight before
    any row can exist on two shards.  Readers register under the current
    epoch and receive the active move list; :meth:`begin` publishes the
    move, advances the epoch, and waits until every reader from older
    epochs (who may have missed the move) has finished -- only then may
    the rebalance start copying rows.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._moves: tuple[tuple[int, int, int, int], ...] = ()
        self._epoch = 0
        self._readers: dict[int, int] = {}

    @contextlib.contextmanager
    def read(self) -> Iterator[tuple[tuple[int, int, int, int], ...]]:
        with self._cond:
            epoch = self._epoch
            self._readers[epoch] = self._readers.get(epoch, 0) + 1
            moves = self._moves
        try:
            yield moves
        finally:
            with self._cond:
                self._readers[epoch] -= 1
                if not self._readers[epoch]:
                    del self._readers[epoch]
                    self._cond.notify_all()

    @staticmethod
    def _without_one(
        moves: tuple[tuple[int, int, int, int], ...],
        move: tuple[int, int, int, int],
    ) -> tuple[tuple[int, int, int, int], ...]:
        """``moves`` minus the *last* occurrence of ``move`` (identical
        entries from an unconverged predecessor must survive)."""
        for at in range(len(moves) - 1, -1, -1):
            if moves[at] == move:
                return moves[:at] + moves[at + 1:]
        return moves

    def begin(
        self, move: tuple[int, int, int, int], timeout: float = 60.0
    ) -> None:
        with self._cond:
            self._moves = self._moves + (move,)
            self._epoch += 1
            barrier = self._epoch
            drained = self._cond.wait_for(
                lambda: all(epoch >= barrier for epoch in self._readers),
                timeout=timeout,
            )
            if not drained:
                self._moves = self._without_one(self._moves, move)
                raise TimeoutError(
                    "rebalance could not start: queries from before the "
                    f"move announcement did not drain within {timeout:.0f}s"
                )

    def register(self, move: tuple[int, int, int, int]) -> None:
        """Re-register an unconverged move at startup (no drain needed:
        no request predates a service that is still constructing)."""
        with self._cond:
            self._moves = self._moves + (move,)

    def barrier(self, timeout: float = 60.0) -> None:
        """Wait until every currently-registered reader has finished.

        The rebalance runs this between the routing swap and the source
        delete: a fan-out request whose target leg read *before* the
        copy landed must complete -- its source leg still sees the
        pre-delete rows -- before any row disappears from the source,
        or that request could observe the moved documents on neither
        shard.
        """
        with self._cond:
            self._epoch += 1
            fence = self._epoch
            drained = self._cond.wait_for(
                lambda: all(epoch >= fence for epoch in self._readers),
                timeout=timeout,
            )
            if not drained:
                raise TimeoutError(
                    "queries in flight before the ownership swap did not "
                    f"drain within {timeout:.0f}s"
                )

    def end(
        self, move: tuple[int, int, int, int], all_matching: bool = False
    ) -> None:
        """Drop one attempt's entry -- or, on a *converged* move, every
        matching entry a failed predecessor left behind."""
        with self._cond:
            if all_matching:
                self._moves = tuple(m for m in self._moves if m != move)
            else:
                self._moves = self._without_one(self._moves, move)


def merge_ranked(
    per_shard: Iterable[tuple[int, Sequence[Answer]]],
    num_ans: int | None,
) -> list[tuple[int, Answer]]:
    """Merge per-shard ranked relations into one global ranking.

    Sorts by descending probability with a (DocId, LineNo, shard)
    tie-break -- the order a single database produces when documents
    were ingested in DocId order, with the shard index as the final key
    so the merged order is fully deterministic no matter which fan-out
    leg finished first -- and cuts at ``num_ans``.  Each kept answer is
    tagged with its source shard (line ids are shard-local).

    Duplicate (DocId, LineNo) rows are dropped, keeping the first in
    sort order: a document lives wholly on one shard, so a duplicate
    only appears mid-rebalance, while a moved line transiently exists on
    both the source and the target -- with the *same* probability (the
    OCR channel is placement-independent), so de-duplication keeps the
    merged relation exact through every phase of a move.
    """
    rows = [
        (shard, answer) for shard, answers in per_shard for answer in answers
    ]
    rows.sort(
        key=lambda row: (
            -row[1].probability,
            row[1].doc_id,
            row[1].line_no,
            row[0],
        )
    )
    seen: set[tuple[int, int]] = set()
    deduped: list[tuple[int, Answer]] = []
    for shard, answer in rows:
        line = (answer.doc_id, answer.line_no)
        if line in seen:
            continue
        seen.add(line)
        deduped.append((shard, answer))
    if num_ans is not None:
        deduped = deduped[:num_ans]
    return deduped


class _Shard:
    """One shard's moving parts: replica set, write lock, generation."""

    __slots__ = (
        "index",
        "path",
        "write_lock",
        "replicas",
        "generation",
        "kernel_memo",
    )

    def __init__(
        self,
        index: int,
        path: str,
        k: int,
        m: int,
        pool_size: int,
        index_approach: str,
        num_replicas: int,
        cooldown_s: float,
        clock: Callable[[], float],
        scan_procs: int | None = None,
    ) -> None:
        self.index = index
        self.path = path
        self.write_lock = threading.Lock()
        # One kernel memo per shard: its generation clock advances with
        # this shard's writes only, so a busy shard's ingests never cold
        # the other shards' memos.
        self.kernel_memo = KernelMemo()
        self.replicas = ReplicaSet(
            index,
            path,
            num_replicas,
            k=k,
            m=m,
            pool_size=pool_size,
            index_approach=index_approach,
            cooldown_s=cooldown_s,
            clock=clock,
            kernel_memo=self.kernel_memo,
            scan_procs=scan_procs,
        )
        self.generation = 0

    @property
    def writer(self) -> StaccatoDB:
        """The first attached replica's writer (tests, inspection)."""
        return self.replicas.replicas()[0].writer

    @property
    def pool(self):
        """The first attached replica's reader pool (tests, inspection)."""
        return self.replicas.replicas()[0].pool


class ShardedPool:
    """Per-shard replica sets plus per-shard generation counters.

    The generation counter is the invalidation currency: every committed
    write (ingest batch or index rebuild) to a shard bumps its counter,
    and cached results carry the generation vector of the shards they
    read -- a stale result's key simply never matches again, which also
    closes the compute/invalidate race without a global generation.
    Replication never enters the cache key: replicas are written in
    lockstep, so one generation per shard describes every copy.
    """

    def __init__(
        self,
        paths: Sequence[str],
        k: int = 25,
        m: int = 40,
        pool_size: int = 2,
        index_approach: str = "staccato",
        num_replicas: int = 1,
        cooldown_s: float = DEFAULT_COOLDOWN_S,
        clock: Callable[[], float] = time.monotonic,
        scan_procs: int | None = None,
    ) -> None:
        if not paths:
            raise ValueError("a sharded pool needs at least one shard path")
        if num_replicas < 1:
            raise ValueError("each shard needs at least one replica")
        self._gen_lock = threading.Lock()
        self.num_replicas = num_replicas
        self.shards = [
            _Shard(
                i,
                path,
                k,
                m,
                pool_size,
                index_approach,
                num_replicas,
                cooldown_s,
                clock,
                scan_procs=scan_procs,
            )
            for i, path in enumerate(paths)
        ]

    def __len__(self) -> int:
        return len(self.shards)

    def shard(self, index: int) -> _Shard:
        return self.shards[index]

    def read(
        self,
        index: int,
        attempt: Callable[[Replica], object],
        passthrough: tuple[type[BaseException], ...] = (),
    ) -> object:
        """Run one read attempt on shard ``index`` with replica failover."""
        return self.shards[index].replicas.run(attempt, passthrough=passthrough)

    # ------------------------------------------------------------------
    def generations(self, scope: Sequence[int]) -> tuple[int, ...]:
        """Snapshot of the scoped shards' generation counters."""
        with self._gen_lock:
            return tuple(self.shards[i].generation for i in scope)

    def bump(self, scope: Iterable[int]) -> None:
        """Advance the touched shards' generations after a write."""
        with self._gen_lock:
            for i in scope:
                self.shards[i].generation += 1

    def resume_generations(self, generations: Sequence[int | None]) -> None:
        """Fast-forward generation clocks to a snapshot's values.

        Warm start calls this so cache keys restored from a snapshot
        (which embed generation vectors) keep matching future lookups.
        ``None`` skips a shard; clocks only ever move forward.
        """
        with self._gen_lock:
            for index, generation in enumerate(generations):
                if generation is None:
                    continue
                shard = self.shards[index]
                shard.generation = max(shard.generation, int(generation))

    # ------------------------------------------------------------------
    def stats(self) -> list[dict[str, object]]:
        """Per-shard occupancy/generation/replica snapshot for ``/stats``."""
        return [
            {
                "index": shard.index,
                "path": shard.path,
                "generation": shard.generation,
                "kernel_memo": shard.kernel_memo.stats(),
                "pool": shard.pool.stats(),
                "replicas": shard.replicas.stats(),
            }
            for shard in self.shards
        ]

    def close(self) -> None:
        for shard in self.shards:
            shard.replicas.close()


class ShardedQueryService(JobsApi, ObservabilityApi):
    """The StaccatoDB query service over N DocId-range shards."""

    def __init__(
        self,
        shard_dir: str,
        num_shards: int,
        k: int = 25,
        m: int = 40,
        pool_size: int = 2,
        cache_size: int = 256,
        index_approach: str = "staccato",
        range_width: int = DEFAULT_RANGE_WIDTH,
        replicas: int = 1,
        replica_cooldown_s: float = DEFAULT_COOLDOWN_S,
        workers: int = 2,
        trace_enabled: bool = True,
        trace_ring: int = trace.DEFAULT_TRACE_RING,
        slow_query_ms: float | None = None,
        slow_log_path: str | None = None,
        access_log_path: str | None = None,
        profile_hz: float = 0.0,
        paths: Sequence[str] | None = None,
        sidecar_dir: str | None = None,
        scan_procs: int | None = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("a sharded service needs at least one shard")
        os.makedirs(shard_dir, exist_ok=True)
        self.shard_dir = shard_dir
        # Sidecars (routing table, job journal, cache snapshot, pending
        # moves) normally live next to the shard files; a worker process
        # serving ONE shard of a larger layout (repro.service.workers)
        # points them at a private directory so N workers sharing a
        # shard_dir never clobber each other's -- or the router's --
        # state files.
        self.sidecar_dir = sidecar_dir or shard_dir
        os.makedirs(self.sidecar_dir, exist_ok=True)
        self.num_shards = num_shards
        self.range_width = range_width
        self.index_approach = index_approach
        # ``paths`` overrides the canonical layout for the same reason:
        # worker i owns shard-000i.db even though, locally, it is the
        # only shard it serves.
        self.paths = (
            list(paths) if paths is not None
            else shard_paths(shard_dir, num_shards)
        )
        if len(self.paths) != num_shards:
            raise ValueError(
                f"got {len(self.paths)} shard paths for {num_shards} shards"
            )
        self.pool = ShardedPool(
            self.paths,
            k=k,
            m=m,
            pool_size=pool_size,
            index_approach=index_approach,
            num_replicas=replicas,
            cooldown_s=replica_cooldown_s,
            scan_procs=scan_procs,
        )
        self.cache = QueryCache(cache_size)
        self.metrics = ServiceMetrics()
        self.tracer = Tracer(
            enabled=trace_enabled,
            ring=trace_ring,
            slow_query_ms=slow_query_ms,
            slow_log_path=slow_log_path,
            access_log_path=access_log_path,
        )
        self._rr_lock = threading.Lock()
        self._rr_next = 0
        # Placements decided in-process, including writes still in
        # flight: the shard probe alone cannot see a racing ingest that
        # has not committed yet, so without this registry two
        # concurrent batches carrying the same new document could each
        # pick it a different shard.  Guarded by ``_rr_lock``; bounded
        # (oldest-first trim) because once a placement's write commits
        # the probe takes over as the durable source -- only entries
        # young enough to race an in-flight batch still matter.
        self._placements: "OrderedDict[int, int]" = OrderedDict()
        self._executor = ThreadPoolExecutor(
            max_workers=num_shards, thread_name_prefix="shard-fanout"
        )
        # Writes get their own pool: an ingest leg parks on a shard
        # write lock for as long as a rebalance holds it, and parked
        # write legs must never occupy the slots read legs need -- the
        # rebalance's pre-delete barrier waits for in-flight *reads*,
        # which would deadlock (until timeout) if they queued behind
        # blocked writes.
        self._write_executor = ThreadPoolExecutor(
            max_workers=num_shards, thread_name_prefix="shard-writes"
        )
        # Ownership: one immutable table, swapped whole under the lock
        # (readers take ``self.routing`` by reference -- atomic publish).
        self._routing_lock = threading.Lock()
        self._routing = RoutingTable.load(
            self.sidecar_dir, num_shards, range_width
        )
        self._move_gate = _MoveGate()
        # Unconverged moves from a previous process: rows may still sit
        # on two shards, so /sql must come back up on the safe plan.
        self._pending_moves: list[tuple[int, int, int, int]] = (
            self._load_pending_moves()
        )
        for pending in self._pending_moves:
            self._move_gate.register(pending)
        #: Test hook: called between the copy and the swap of a
        #: rebalance (None = no-op), so cancellation mid-move is
        #: deterministic to exercise.
        self._rebalance_after_copy: Callable[[Job], None] | None = None
        self.jobs = JobEngine(
            self,
            os.path.join(self.sidecar_dir, JOBS_JOURNAL_FILE),
            workers=workers,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self.profiler = SamplingProfiler(hz=profile_hz)
        self.profiler.start()

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.profiler.stop()
        self.jobs.shutdown()
        self._executor.shutdown(wait=True)
        self._write_executor.shutdown(wait=True)
        self.pool.close()
        self.tracer.close()

    # ------------------------------------------------------------------
    @property
    def routing(self) -> RoutingTable:
        """The current ownership table (an immutable snapshot)."""
        return self._routing

    def _publish_routing(self, table: RoutingTable) -> None:
        """Atomically swap the routing table and persist the overrides."""
        with self._routing_lock:
            self._routing = table
            table.save(self.sidecar_dir)

    # ------------------------------------------------------------------
    @property
    def _pending_moves_path(self) -> str:
        return os.path.join(self.sidecar_dir, PENDING_MOVES_FILE)

    def _load_pending_moves(self) -> list[tuple[int, int, int, int]]:
        try:
            with open(self._pending_moves_path, "r", encoding="utf-8") as f:
                data = json.load(f)
            return [
                (int(lo), int(hi), int(src), int(dst))
                for lo, hi, src, dst in data.get("moves", [])
            ]
        except (OSError, json.JSONDecodeError, ValueError, TypeError):
            return []

    def _save_pending_moves_locked(self) -> None:
        try:
            atomic_write_json(
                self._pending_moves_path,
                {"moves": [list(m) for m in self._pending_moves]},
            )
        except OSError:
            pass  # best-effort durability; the in-memory gate still holds

    def _record_pending_move(self, move: tuple[int, int, int, int]) -> None:
        """Persist that rows of ``move`` may exist on two shards."""
        with self._routing_lock:
            self._pending_moves.append(move)
            self._save_pending_moves_locked()

    def _clear_pending_move(
        self, move: tuple[int, int, int, int], all_matching: bool = False
    ) -> None:
        with self._routing_lock:
            if all_matching:
                self._pending_moves = [
                    m for m in self._pending_moves if m != move
                ]
            else:
                for at in range(len(self._pending_moves) - 1, -1, -1):
                    if self._pending_moves[at] == move:
                        del self._pending_moves[at]
                        break
            self._save_pending_moves_locked()

    def _finish_move(
        self, move: tuple[int, int, int, int], converged: bool
    ) -> None:
        """Retire a move from the gate AND the persisted pending record.

        The two stores mirror each other by construction (the gate is
        the in-memory truth ``/sql`` consults, the sidecar its
        crash-surviving shadow), so they are only ever updated through
        this one place: a converged move clears every matching entry a
        failed predecessor left behind, an abandoned attempt removes
        only its own.
        """
        self._move_gate.end(move, all_matching=converged)
        self._clear_pending_move(move, all_matching=converged)

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _scope(self, shards: tuple[int, ...] | None) -> tuple[int, ...]:
        """The shard indices a request fans out to (default: all)."""
        if shards is None:
            return tuple(range(self.num_shards))
        bad = [i for i in shards if i >= self.num_shards]
        if bad:
            raise ApiError(
                400,
                f"unknown shards {bad}; this service has "
                f"{self.num_shards} shards (0..{self.num_shards - 1})",
                code="unknown_shard",
            )
        return shards

    def _fan_out(self, scope: Sequence[int], leg):
        """Run ``leg(shard_index)`` on every scoped shard concurrently.

        Context variables do not follow executor submission, so the
        caller's span is captured here and re-attached in each worker:
        every leg's spans nest under the request that fanned out.
        Appending concurrent ``shard_leg`` children to the shared parent
        is safe -- ``list.append`` is atomic under the GIL.

        The calling thread runs the first leg itself -- it would only
        block on the executor otherwise -- so a K-shard fan-out costs
        K-1 executor hops and a single-shard scope costs none.
        """
        parent = trace.current_span()

        def traced(index: int):
            if parent is None:
                return leg(index)
            with trace.attach(parent), trace.span("shard_leg", shard=index):
                return leg(index)

        if len(scope) == 1:
            return [traced(scope[0])]
        rest = [self._executor.submit(traced, index) for index in scope[1:]]
        results = [traced(scope[0])]
        results.extend(future.result() for future in rest)
        return results

    def _fan_out_writes(self, scope: Sequence[int], leg):
        """Fan a *write* out, never losing a committed shard's result.

        Unlike :meth:`_fan_out`, a failing leg does not mask the legs
        that already committed: the caller gets every successful result
        so it can bump those shards' generations and evict their cache
        entries *before* the first error is re-raised -- otherwise a
        partial failure would leave pre-write cached answers servable
        for shards whose batch did land.
        """
        wrapped = self._write_executor.map(
            lambda index: (index, *self._attempt(leg, index)), scope
        )
        succeeded, first_error = [], None
        for index, value, error in wrapped:
            if error is None:
                succeeded.append(value)
            elif first_error is None:
                first_error = error
        return succeeded, first_error

    @staticmethod
    def _attempt(leg, index: int):
        try:
            return leg(index), None
        except Exception as exc:  # noqa: BLE001 - re-raised by the caller
            return None, exc

    def _invalidate_shards(self, touched: set[int]) -> int:
        """Evict only cache entries whose scope intersects ``touched``.

        Keys are ``(kind, scope, generations, ...)`` -- see the query
        methods below -- so ``key[1]`` is the scope tuple.
        """
        return self.cache.invalidate_where(
            lambda key: bool(touched.intersection(key[1]))
        )

    # ------------------------------------------------------------------
    def _replica_read(
        self,
        index: int,
        endpoint: str,
        fn: Callable[[StaccatoDB], object],
    ) -> object:
        """One shard leg's read with replica failover and per-replica timing."""

        def attempt(replica: Replica) -> object:
            started = time.perf_counter()
            try:
                with replica.pool.acquire() as db:
                    result = fn(db)
            except ApiError:
                raise  # client error; not the replica's fault
            except Exception:
                self.metrics.observe_replica(
                    index,
                    replica.replica_index,
                    endpoint,
                    time.perf_counter() - started,
                    error=True,
                )
                raise
            self.metrics.observe_replica(
                index,
                replica.replica_index,
                endpoint,
                time.perf_counter() - started,
            )
            return result

        return self.pool.read(index, attempt, passthrough=(ApiError,))

    @staticmethod
    def _shard_unavailable(index: int, exc: ReplicaUnavailable) -> ApiError:
        return ApiError(503, str(exc), code="shard_unavailable")

    # ------------------------------------------------------------------
    # Seams the storage-independent machinery (total_lines, health,
    # cache snapshot, warm start) reads shard state through.  The
    # subprocess router of :mod:`repro.service.workers` overrides just
    # these two to answer from worker metadata instead of a local pool.
    # ------------------------------------------------------------------
    def _shard_lines(self, index: int) -> int:
        """One shard's committed line count (raises ReplicaUnavailable)."""
        return self._replica_read(index, "health", lambda db: db.num_lines)

    def _lines_and_index(self, index: int) -> tuple[int, object]:
        """One shard's (line count, index fingerprint) snapshot."""
        return self._replica_read(
            index, "stats", lambda db: (db.num_lines, index_fingerprint(db))
        )

    # ------------------------------------------------------------------
    def _existing_owners(self, doc_ids: Sequence[int]) -> dict[int, int]:
        """Which shard already holds each of ``doc_ids`` (absent: none).

        Re-ingesting a known document must land on the shard that
        already has its earlier lines -- otherwise one document splits
        across shards and the merged ranking carries duplicate
        (DocId, LineNo) rows -- so every ingest first probes the shards
        (concurrently, one leg each) for the batch's DocIds.  A
        document somehow present on several shards (a pre-fix split)
        keeps its lowest-indexed owner.  With one shard there is
        nothing to probe: every document has the same owner.
        """
        if self.num_shards == 1 or not doc_ids:
            return {}
        ids = sorted(set(doc_ids))

        def probe(db: StaccatoDB) -> set[int]:
            found: set[int] = set()
            for at in range(0, len(ids), _OWNER_PROBE_BATCH):
                batch = ids[at : at + _OWNER_PROBE_BATCH]
                marks = ",".join("?" * len(batch))
                rows = db.conn.execute(
                    f"SELECT DISTINCT DocId FROM MasterData "
                    f"WHERE DocId IN ({marks})",
                    batch,
                ).fetchall()
                found.update(row[0] for row in rows)
            return found

        def leg(index: int) -> set[int]:
            try:
                return self._replica_read(index, "ingest", probe)
            except ReplicaUnavailable as exc:
                raise self._shard_unavailable(index, exc) from exc

        owners: dict[int, int] = {}
        for index, present in enumerate(
            self._fan_out(range(self.num_shards), leg)
        ):
            for doc_id in present:
                owners.setdefault(doc_id, index)
        return owners

    # ------------------------------------------------------------------
    def _split_moved(
        self, index: int, shard: _Shard, docs: Sequence[Document]
    ) -> tuple[list[Document], list[Document]]:
        """Partition a leg's documents into kept vs moved-by-rebalance.

        Runs under the shard's write lock, so any rebalance that was in
        flight when this batch picked its owners has fully published its
        routing table by now.  A document whose override names another
        shard is re-dispatched *unless its rows are already here* -- a
        pre-move resident (e.g. a round-robin placement inside an
        overridden range) keeps its probe-derived home; the override
        only redirects documents the move actually took away (and fresh
        ones, which were placed by the override to begin with).
        """
        routing = self.routing
        stay: list[Document] = []
        overridden: list[Document] = []
        for doc in docs:
            override = routing.override_owner(doc.doc_id)
            if override is None or override == index:
                stay.append(doc)
            else:
                overridden.append(doc)
        if not overridden:
            return stay, []
        # Probe a *live* copy: the primary may be stale (it missed a
        # committed write), and a false "absent" here would split the
        # document across shards.  Batched like ``_existing_owners`` --
        # this runs under the shard's write lock, so one IN query per
        # batch, not one SELECT per document.
        probe = next(
            (
                r.writer.conn
                for r in shard.replicas.replicas()
                if not r.stale and os.path.exists(r.path)
            ),
            shard.writer.conn,
        )
        present: set[int] = set()
        ids = [doc.doc_id for doc in overridden]
        for at in range(0, len(ids), _OWNER_PROBE_BATCH):
            batch = ids[at : at + _OWNER_PROBE_BATCH]
            marks = ",".join("?" * len(batch))
            present.update(
                row[0]
                for row in probe.execute(
                    f"SELECT DocId FROM Documents WHERE DocId IN ({marks})",
                    batch,
                )
            )
        moved = [doc for doc in overridden if doc.doc_id not in present]
        stay.extend(doc for doc in overridden if doc.doc_id in present)
        return stay, moved

    def _ingest_leg(self, groups: Mapping[int, list[Document]], request):
        """One shard's write leg for :meth:`ingest` (re-dispatch aware)."""

        def leg(index: int) -> tuple[int, int, int, list[Document]]:
            docs = groups[index]
            shard = self.pool.shard(index)
            leg_started = time.perf_counter()

            def apply(replica: Replica) -> tuple[int, int]:
                # Each replica gets its own engine instance (stateless
                # but cheap); per-line SFAs depend only on (seed, text,
                # doc_id, line_no), so every copy stores identical rows.
                ocr = SimulatedOcrEngine(seed=request.ocr_seed)
                count = replica.writer.ingest(
                    Dataset(name=request.dataset.name, documents=stay),
                    ocr,
                    approaches=request.approaches,
                    workers=request.workers,
                )
                return count, replica.writer.num_lines

            try:
                with shard.write_lock:
                    stay, moved = self._split_moved(index, shard, docs)
                    if stay:
                        count, total = shard.replicas.apply_write(apply)
                    else:
                        count, total = 0, shard.writer.num_lines
            except ReplicaUnavailable as exc:
                # Same condition, same status as the read paths: a
                # shard with no writable replica is 503, not a 500.
                self.metrics.observe_shard(
                    index, "ingest", time.perf_counter() - leg_started, error=True
                )
                raise self._shard_unavailable(index, exc) from exc
            except Exception:
                self.metrics.observe_shard(
                    index, "ingest", time.perf_counter() - leg_started, error=True
                )
                raise
            self.metrics.observe_shard(
                index, "ingest", time.perf_counter() - leg_started
            )
            return index, count, total, moved

        return leg

    def ingest(self, payload: object) -> dict[str, object]:
        """Route a batch to its owning shards; invalidates only those."""
        request = validate_ingest(payload)
        owners = self._existing_owners(
            [doc.doc_id for doc in request.dataset.documents]
        )
        routing = self.routing
        # Placement is decided under one lock hold per batch: committed
        # rows (the probe) win, then in-process placements from racing
        # or in-flight batches, and only genuinely new documents get a
        # fresh assignment -- a contiguous round-robin stride, or their
        # routing-table owner (striped range, or a rebalance override).
        with self._rr_lock:
            for doc_id, index in self._placements.items():
                owners.setdefault(doc_id, index)
            new_docs = [
                doc
                for doc in request.dataset.documents
                if doc.doc_id not in owners
            ]
            if request.route == "round_robin":
                start = self._rr_next
                self._rr_next = (start + len(new_docs)) % self.num_shards
                for offset, doc in enumerate(new_docs):
                    owners[doc.doc_id] = (start + offset) % self.num_shards
            else:
                for doc in new_docs:
                    owners[doc.doc_id] = routing.owner(doc.doc_id)
            # Remember only the fresh assignments (probed owners are
            # already durable on disk), trimming the oldest beyond the
            # cap to keep a long-lived router's memory flat.
            for doc in new_docs:
                self._placements[doc.doc_id] = owners[doc.doc_id]
            while len(self._placements) > _PLACEMENTS_CAP:
                self._placements.popitem(last=False)
        groups: dict[int, list[Document]] = {}
        for doc in request.dataset.documents:
            groups.setdefault(owners[doc.doc_id], []).append(doc)
        started = time.perf_counter()

        # A rebalance racing this batch can move a document between
        # placement and the leg's lock acquisition; the leg detects it
        # (under the lock, where the published table is authoritative)
        # and hands the document back for another round at its new home.
        ingested: dict[int, int] = {}
        totals: dict[int, int] = {}
        first_error: Exception | None = None
        for _ in range(1 + _MAX_REROUTE_ROUNDS):
            if not groups:
                break
            results, error = self._fan_out_writes(
                sorted(groups), self._ingest_leg(groups, request)
            )
            if error is not None and first_error is None:
                first_error = error
            next_groups: dict[int, list[Document]] = {}
            for index, count, total, moved in results:
                ingested[index] = ingested.get(index, 0) + count
                totals[index] = total
                for doc in moved:
                    next_groups.setdefault(
                        self.routing.owner(doc.doc_id), []
                    ).append(doc)
            groups = next_groups
            if error is not None:
                break  # settle what landed; do not re-route after a failure
        if groups and first_error is None:
            first_error = ApiError(
                503,
                "ingest could not settle: documents kept moving between "
                "shards (concurrent rebalances)",
                code="shard_unavailable",
            )
        touched = {index for index, count in ingested.items() if count}
        self.pool.bump(touched)
        evicted = self._invalidate_shards(touched)
        if first_error is not None:
            raise first_error
        return {
            "dataset": request.dataset.name,
            "route": request.route,
            "ingested_lines": sum(ingested.values()),
            "total_lines": self.total_lines(),
            "shards": {
                str(index): {
                    "ingested_lines": count,
                    "total_lines": totals[index],
                }
                for index, count in sorted(ingested.items())
                if count
            },
            "evicted_cache_entries": evicted,
            "elapsed_s": time.perf_counter() - started,
        }

    # ------------------------------------------------------------------
    def search(self, payload: object) -> dict[str, object]:
        """Fan a search out over the scoped shards and merge the ranking."""
        with trace.span("validate"):
            request = validate_search(payload)
            scope = self._scope(request.shards)
            # A pattern that cannot compile would fail deterministically
            # on every replica -- a 400, never breaker food.
            check_pattern(request.pattern)
        key = (
            "search",
            scope,
            self.pool.generations(scope),
            request.pattern,
            request.approach,
            request.plan,
            request.num_ans,
        )
        cached = self.cache.get(key)
        if cached is not None:
            return {**cached, "cached": True}
        started = time.perf_counter()

        def leg(index: int) -> tuple[int, str, list[Answer]]:
            leg_started = time.perf_counter()
            try:
                label, answers = self._replica_read(
                    index, "search", lambda db: run_search_plan(db, request)
                )
            except ReplicaUnavailable as exc:
                self.metrics.observe_shard(
                    index, "search", time.perf_counter() - leg_started, error=True
                )
                raise self._shard_unavailable(index, exc) from exc
            except Exception:
                self.metrics.observe_shard(
                    index, "search", time.perf_counter() - leg_started, error=True
                )
                raise
            self.metrics.observe_shard(
                index, "search", time.perf_counter() - leg_started
            )
            return index, label, answers

        # Registered with the move gate (the move list itself is unused
        # here -- merge_ranked de-duplicates unconditionally) so a
        # rebalance's pre-delete barrier can wait for this fan-out: the
        # source rows must not disappear under a request whose target
        # leg read before the copy landed.
        with self._move_gate.read():
            with trace.span("router", shards=len(scope)):
                results = self._fan_out(scope, leg)
        with trace.span("merge"):
            merged = merge_ranked(
                [(index, answers) for index, _, answers in results],
                request.num_ans,
            )
        labels = {label for _, label, _ in results}
        result = {
            "pattern": request.pattern,
            "approach": request.approach,
            "plan": labels.pop() if len(labels) == 1 else "mixed",
            "plans": {str(index): label for index, label, _ in results},
            "shards": list(scope),
            "count": len(merged),
            "answers": [
                {**answer_row(answer), "shard": shard}
                for shard, answer in merged
            ],
            "elapsed_s": time.perf_counter() - started,
        }
        self.cache.put(key, result)
        return {**result, "cached": False}

    # ------------------------------------------------------------------
    def sql(self, payload: object) -> dict[str, object]:
        """Distribute a probabilistic SELECT and merge exactly.

        Every shard runs the widened :func:`~repro.db.sql.shard_select`
        plan (full rows, base aggregates, no cutoff); the router merges
        with :func:`~repro.db.sql.merge_shard_rows`.
        """
        with trace.span("validate"):
            request = validate_sql(payload)
            scope = self._scope(request.shards)
        key = (
            "sql",
            scope,
            self.pool.generations(scope),
            request.query,
            request.approach,
            request.num_ans,
        )
        cached = self.cache.get(key)
        if cached is not None:
            return {**cached, "cached": True}
        try:
            parsed = parse_select(request.query)
        except SqlError as exc:
            raise ApiError(400, str(exc), code="sql_error") from exc
        started = time.perf_counter()

        # While a rebalance is copying, a moved document's rows exist on
        # two shards.  Scalar per-shard aggregates cannot be un-counted,
        # so inside an active move the legs return the full per-document
        # relation instead; the router de-duplicates by DocId (copies
        # are byte-identical) and recomputes the aggregates itself.  The
        # move gate guarantees the flag is seen before any row can be
        # doubled: a rebalance drains pre-announcement readers first.
        # Only a scope spanning BOTH sides of some active move can see a
        # document twice, so queries scoped away from the move (and all
        # queries, once no move is pending) keep the fast scalar plan.
        scope_set = set(scope)
        with self._move_gate.read() as moves:
            move_safe = any(
                m_src in scope_set and m_dst in scope_set
                for _, _, m_src, m_dst in moves
            )
            base = shard_select_rows(parsed) if move_safe else shard_select(parsed)

            def evaluate(db: StaccatoDB) -> list[dict[str, object]]:
                try:
                    return execute_select(
                        db,
                        request.query,
                        approach=request.approach,
                        num_ans=None,
                        parsed=base,
                    )
                except (SqlError, RegexError) as exc:
                    # A query error, not a replica fault: surface it as
                    # the structured 400 instead of failing over.
                    raise ApiError(400, str(exc), code="sql_error") from exc

            def leg(index: int) -> list[dict[str, object]]:
                leg_started = time.perf_counter()
                try:
                    rows = self._replica_read(index, "sql", evaluate)
                except ReplicaUnavailable as exc:
                    self.metrics.observe_shard(
                        index, "sql", time.perf_counter() - leg_started, error=True
                    )
                    raise self._shard_unavailable(index, exc) from exc
                except ApiError:
                    self.metrics.observe_shard(
                        index, "sql", time.perf_counter() - leg_started, error=True
                    )
                    raise
                self.metrics.observe_shard(
                    index, "sql", time.perf_counter() - leg_started
                )
                return rows

            with trace.span("router", shards=len(scope)):
                shard_rows = self._fan_out(scope, leg)
        try:
            with trace.span("merge"):
                if move_safe:
                    seen_docs: set[object] = set()
                    deduped: list[dict[str, object]] = []
                    for rows_ in shard_rows:
                        for row in rows_:
                            if row["DocId"] in seen_docs:
                                continue
                            seen_docs.add(row["DocId"])
                            deduped.append(row)
                    if parsed.is_aggregate:
                        rows = aggregate_full_rows(parsed, deduped)
                    else:
                        rows = merge_shard_rows(
                            parsed, [deduped], num_ans=request.num_ans
                        )
                else:
                    rows = merge_shard_rows(
                        parsed, shard_rows, num_ans=request.num_ans
                    )
        except SqlError as exc:
            raise ApiError(400, str(exc), code="sql_error") from exc
        result = {
            "query": request.query,
            "approach": request.approach,
            "shards": list(scope),
            "count": len(rows),
            "rows": rows,
            "elapsed_s": time.perf_counter() - started,
        }
        self.cache.put(key, result)
        return {**result, "cached": False}

    # ------------------------------------------------------------------
    def index(self, payload: object) -> dict[str, object]:
        """Build/rebuild the dictionary index per scoped shard.

        Each scoped shard builds over its own data on every replica's
        writer (lockstep, like ingest), then each replica's pool
        broadcasts ``load_index`` so every pooled reader serves indexed
        plans immediately; the touched shards' cached results are
        evicted (plan choices and projected evaluations may change).
        """
        request = validate_index(payload)
        scope = self._scope(request.shards)
        started = time.perf_counter()

        def leg(index: int) -> tuple[int, int, bool]:
            shard = self.pool.shard(index)
            leg_started = time.perf_counter()

            def build(replica: Replica) -> tuple[int, bool]:
                postings = replica.writer.build_index(
                    request.terms, approach=request.approach
                )
                return postings, replica.pool.reload_index(request.approach)

            try:
                with shard.write_lock:
                    postings, reloaded = shard.replicas.apply_write(build)
            except ReplicaUnavailable as exc:
                self.metrics.observe_shard(
                    index, "index", time.perf_counter() - leg_started, error=True
                )
                raise self._shard_unavailable(index, exc) from exc
            except Exception:
                self.metrics.observe_shard(
                    index, "index", time.perf_counter() - leg_started, error=True
                )
                raise
            self.metrics.observe_shard(
                index, "index", time.perf_counter() - leg_started
            )
            return index, postings, reloaded

        results, error = self._fan_out_writes(scope, leg)
        touched = {index for index, _, _ in results}
        self.pool.bump(touched)
        evicted = self._invalidate_shards(touched)
        if error is not None:
            raise error
        return {
            "approach": request.approach,
            "terms": len(request.terms),
            "postings": sum(postings for _, postings, _ in results),
            "shards": {
                str(index): {"postings": postings, "reloaded": reloaded}
                for index, postings, reloaded in results
            },
            "evicted_cache_entries": evicted,
            "elapsed_s": time.perf_counter() - started,
        }

    # ------------------------------------------------------------------
    def replicas(self, payload: object) -> dict[str, object]:
        """``POST /replicas``: attach or detach one replica at runtime.

        Attach copies a live sibling (SQLite online backup) under the
        shard's write lock, so the new replica joins in sync; detach
        removes the replica from the rotation and closes it once its
        in-flight queries drain.  Both return the shard's new replica
        roster.
        """
        request = validate_replicas(payload)
        if request.shard >= self.num_shards:
            raise ApiError(
                400,
                f"unknown shard {request.shard}; this service has "
                f"{self.num_shards} shards (0..{self.num_shards - 1})",
                code="unknown_shard",
            )
        shard = self.pool.shard(request.shard)
        started = time.perf_counter()
        if request.action == "attach":
            with shard.write_lock:
                try:
                    replica = shard.replicas.attach()
                except ReplicaUnavailable as exc:
                    raise self._shard_unavailable(request.shard, exc) from exc
            affected = {"replica": replica.replica_index, "path": replica.path}
        else:
            with shard.write_lock:
                try:
                    removed = shard.replicas.detach(request.replica)
                except KeyError:
                    raise ApiError(
                        404,
                        f"shard {request.shard} has no replica "
                        f"{request.replica}",
                        code="unknown_replica",
                    ) from None
                except ValueError as exc:
                    raise ApiError(409, str(exc), code="last_replica") from exc
            affected = {"replica": removed.replica_index, "path": removed.path}
        return {
            "action": request.action,
            "shard": request.shard,
            **affected,
            "replicas": shard.replicas.stats(),
            "elapsed_s": time.perf_counter() - started,
        }

    # ------------------------------------------------------------------
    # Rebalance: move one DocId range between two live shards.
    # ------------------------------------------------------------------
    _REBALANCE_SRC = "rebalance_src"

    #: Child-table copy statements (Documents and MasterData go first,
    #: explicitly); every copied DataKey is offset past the target's
    #: existing keys so the merged file keeps unique line ids.
    _REBALANCE_COPY_CHILDREN = (
        "INSERT INTO kMAPData(DataKey, Rank, Data, LogProb) "
        "SELECT t.DataKey + :offset, t.Rank, t.Data, t.LogProb "
        "FROM {src}.kMAPData t JOIN {src}.MasterData m ON m.DataKey = t.DataKey "
        "WHERE m.DocId IN (SELECT DocId FROM _rebalance_ids)",
        "INSERT INTO FullSFAData(DataKey, SFABlob) "
        "SELECT t.DataKey + :offset, t.SFABlob "
        "FROM {src}.FullSFAData t JOIN {src}.MasterData m ON m.DataKey = t.DataKey "
        "WHERE m.DocId IN (SELECT DocId FROM _rebalance_ids)",
        "INSERT INTO StaccatoData(DataKey, ChunkNum, Rank, Data, LogProb) "
        "SELECT t.DataKey + :offset, t.ChunkNum, t.Rank, t.Data, t.LogProb "
        "FROM {src}.StaccatoData t JOIN {src}.MasterData m ON m.DataKey = t.DataKey "
        "WHERE m.DocId IN (SELECT DocId FROM _rebalance_ids)",
        "INSERT INTO StaccatoGraph(DataKey, GraphBlob) "
        "SELECT t.DataKey + :offset, t.GraphBlob "
        "FROM {src}.StaccatoGraph t JOIN {src}.MasterData m ON m.DataKey = t.DataKey "
        "WHERE m.DocId IN (SELECT DocId FROM _rebalance_ids)",
        "INSERT INTO GroundTruth(DataKey, Data) "
        "SELECT t.DataKey + :offset, t.Data "
        "FROM {src}.GroundTruth t JOIN {src}.MasterData m ON m.DataKey = t.DataKey "
        "WHERE m.DocId IN (SELECT DocId FROM _rebalance_ids)",
        "INSERT INTO InvertedIndex(Term, DataKey, U, V, Rank, Offset) "
        "SELECT t.Term, t.DataKey + :offset, t.U, t.V, t.Rank, t.Offset "
        "FROM {src}.InvertedIndex t JOIN {src}.MasterData m ON m.DataKey = t.DataKey "
        "WHERE m.DocId IN (SELECT DocId FROM _rebalance_ids)",
    )

    _REBALANCE_DELETE_CHILDREN = (
        "DELETE FROM kMAPData WHERE DataKey IN "
        "(SELECT DataKey FROM MasterData WHERE DocId IN "
        "(SELECT DocId FROM _rebalance_ids))",
        "DELETE FROM FullSFAData WHERE DataKey IN "
        "(SELECT DataKey FROM MasterData WHERE DocId IN "
        "(SELECT DocId FROM _rebalance_ids))",
        "DELETE FROM StaccatoData WHERE DataKey IN "
        "(SELECT DataKey FROM MasterData WHERE DocId IN "
        "(SELECT DocId FROM _rebalance_ids))",
        "DELETE FROM StaccatoGraph WHERE DataKey IN "
        "(SELECT DataKey FROM MasterData WHERE DocId IN "
        "(SELECT DocId FROM _rebalance_ids))",
        "DELETE FROM GroundTruth WHERE DataKey IN "
        "(SELECT DataKey FROM MasterData WHERE DocId IN "
        "(SELECT DocId FROM _rebalance_ids))",
        "DELETE FROM InvertedIndex WHERE DataKey IN "
        "(SELECT DataKey FROM MasterData WHERE DocId IN "
        "(SELECT DocId FROM _rebalance_ids))",
        "DELETE FROM MasterData WHERE DocId IN "
        "(SELECT DocId FROM _rebalance_ids)",
        "DELETE FROM Documents WHERE DocId IN "
        "(SELECT DocId FROM _rebalance_ids)",
    )

    @staticmethod
    def _load_rebalance_ids(conn, doc_ids: Sequence[int]) -> None:
        """(Re)fill the per-connection temp table driving copy/delete."""
        conn.execute(
            "CREATE TEMP TABLE IF NOT EXISTS _rebalance_ids "
            "(DocId INTEGER PRIMARY KEY)"
        )
        conn.execute("DELETE FROM _rebalance_ids")
        conn.executemany(
            "INSERT INTO _rebalance_ids(DocId) VALUES (?)",
            [(doc_id,) for doc_id in doc_ids],
        )

    def _rebalance_copy(
        self,
        replica: Replica,
        source_path: str,
        doc_ids: Sequence[int],
        expect_lines: int,
    ) -> list[int]:
        """Copy the moved documents into one target replica, verified.
        Returns the DocIds actually inserted (the skipped ones already
        lived here) -- the only rows a cancel may unwind.

        One transaction per replica: concurrent readers see the copy all
        at once or not at all.  Documents the target already holds *with
        the source's line count* are skipped (copies are byte-identical
        -- content is deterministic in the document and lines only
        append); a document present with a different count is a stale
        copy from a move that died mid-way, so its target rows are
        dropped and re-copied.  Together these make re-submitting the
        same move the repair path for a run that failed or died between
        the copy commit and the source delete.  The count verification
        runs *inside* the transaction -- a mismatch rolls the whole copy
        back.
        """
        conn = replica.writer.conn
        replica.writer.attach(source_path, self._REBALANCE_SRC)
        try:
            with conn:
                self._load_rebalance_ids(conn, doc_ids)
                # Skip docs the target already holds with AT LEAST the
                # source's line count: lines only append and a doc's
                # new lines land on exactly one holder, so a target
                # that is not behind is current-or-ahead (it may carry
                # ingests accepted after ownership switched -- rows a
                # re-copy from the source must never clobber).  A
                # target *behind* the source is a stale copy from a
                # died move; it is dropped and re-copied in full.
                conn.execute(
                    f"DELETE FROM _rebalance_ids WHERE DocId IN ("
                    f"SELECT d.DocId FROM main.Documents d WHERE "
                    f"(SELECT COUNT(*) FROM main.MasterData "
                    f" WHERE DocId = d.DocId) >= "
                    f"(SELECT COUNT(*) FROM {self._REBALANCE_SRC}.MasterData "
                    f" WHERE DocId = d.DocId))"
                )
                # Remaining ids are either absent from the target (the
                # deletes no-op) or stale partial copies (cleared for a
                # fresh copy).
                for statement in self._REBALANCE_DELETE_CHILDREN:
                    conn.execute(statement)
                # DataKeys start at 0 on a fresh file, so the first free
                # key is MAX + 1 (not MAX): every copied key lands past
                # the target's existing range.
                offset = conn.execute(
                    "SELECT COALESCE(MAX(DataKey), -1) + 1 FROM MasterData"
                ).fetchone()[0]
                expect_copied = conn.execute(
                    f"SELECT COUNT(*) FROM {self._REBALANCE_SRC}.MasterData "
                    f"WHERE DocId IN (SELECT DocId FROM _rebalance_ids)"
                ).fetchone()[0]
                conn.execute(
                    f"INSERT INTO Documents "
                    f"SELECT * FROM {self._REBALANCE_SRC}.Documents "
                    f"WHERE DocId IN (SELECT DocId FROM _rebalance_ids)"
                )
                conn.execute(
                    f"INSERT INTO MasterData(DataKey, DocName, DocId, SFANum) "
                    f"SELECT DataKey + :offset, DocName, DocId, SFANum "
                    f"FROM {self._REBALANCE_SRC}.MasterData "
                    f"WHERE DocId IN (SELECT DocId FROM _rebalance_ids)",
                    {"offset": offset},
                )
                for statement in self._REBALANCE_COPY_CHILDREN:
                    conn.execute(
                        statement.format(src=self._REBALANCE_SRC),
                        {"offset": offset},
                    )
                got_docs, got_lines = conn.execute(
                    "SELECT (SELECT COUNT(*) FROM Documents WHERE DocId IN "
                    "(SELECT DocId FROM _rebalance_ids)), "
                    "(SELECT COUNT(*) FROM MasterData WHERE DocId IN "
                    "(SELECT DocId FROM _rebalance_ids))"
                ).fetchone()
                copied = [
                    row[0]
                    for row in conn.execute(
                        "SELECT DocId FROM _rebalance_ids ORDER BY DocId"
                    )
                ]
                if got_docs != len(copied) or got_lines != expect_copied:
                    raise RuntimeError(
                        f"rebalance copy verification failed on "
                        f"{replica.path}: expected {len(copied)} docs / "
                        f"{expect_copied} lines, found {got_docs} / "
                        f"{got_lines}"
                    )
        finally:
            replica.writer.detach(self._REBALANCE_SRC)
        return copied

    def _rebalance_delete(
        self, replica: Replica, doc_ids: Sequence[int]
    ) -> int:
        """Drop the moved documents from one replica (one transaction)."""
        conn = replica.writer.conn
        with conn:
            self._load_rebalance_ids(conn, doc_ids)
            for statement in self._REBALANCE_DELETE_CHILDREN:
                conn.execute(statement)
        return len(doc_ids)

    def job_rebalance(
        self, job: Job, params: Mapping[str, object]
    ) -> dict[str, object]:
        """Runner: move ``[doc_lo, doc_hi]`` from ``source`` to ``target``.

        Phases (cancellation checkpoints between them; a cancel before
        the routing swap undoes the copy and leaves the cluster exactly
        as it was):

        1. **announce** -- register the move and drain SQL readers that
           predate it (they could not know to de-duplicate);
        2. **snapshot** -- under both shards' write locks (acquired in
           shard-index order via the shared ``ordered_locks`` helper),
           list the documents the source holds in the range;
        3. **copy + verify** -- one verified transaction per target
           replica, keyed off a healthy source copy;
        4. **swap** -- publish the successor routing table (single
           atomic reference swap) and persist it;
        5. **delete** -- drop the moved rows from every source replica;
        6. **invalidate** -- bump both shards' generations and evict
           cache entries whose scope touches them (moved line ids and
           shard tags changed even though probabilities did not).
        """
        request = validate_rebalance_params(params, self.num_shards)
        lo, hi = request.doc_lo, request.doc_hi
        src, dst = request.source, request.target
        source = self.pool.shard(src)
        target = self.pool.shard(dst)
        job.check_cancelled()
        move = (lo, hi, src, dst)
        self._move_gate.begin(move)
        moved_docs: list[int] = []
        moved_lines = 0
        evicted = 0
        delete_incomplete = False
        converged = False
        copy_landed = False
        try:
            with ordered_locks(
                (src, source.write_lock), (dst, target.write_lock)
            ):
                job.update(progress=0.1)
                # Copy from a healthy source replica (the primary unless
                # it is stale or lost).
                source_copy = next(
                    (
                        r
                        for r in source.replicas.replicas()
                        if not r.stale and os.path.exists(r.path)
                    ),
                    None,
                )
                if source_copy is None:
                    raise ApiError(
                        503,
                        f"shard {src} has no live replica to move from",
                        code="shard_unavailable",
                    )
                rows = source_copy.writer.conn.execute(
                    "SELECT DocId FROM Documents WHERE DocId BETWEEN ? AND ? "
                    "ORDER BY DocId",
                    (lo, hi),
                ).fetchall()
                moved_docs = [row[0] for row in rows]
                moved_lines = source_copy.writer.conn.execute(
                    "SELECT COUNT(*) FROM MasterData WHERE DocId BETWEEN ? AND ?",
                    (lo, hi),
                ).fetchone()[0]
                job.update(
                    progress=0.2, docs=len(moved_docs), lines=moved_lines
                )
                job.check_cancelled()
                copied_docs: list[int] = []
                if moved_docs:
                    # From here rows may exist on two shards; persist
                    # that fact so a crash restarts /sql on the safe
                    # de-duplicating plan.
                    self._record_pending_move(move)
                    copied_docs = target.replicas.apply_write(
                        lambda replica: self._rebalance_copy(
                            replica, source_copy.path, moved_docs, moved_lines
                        )
                    )
                    copy_landed = True
                job.update(progress=0.6)
                if self._rebalance_after_copy is not None:
                    self._rebalance_after_copy(job)
                if job.cancel_requested:
                    # Unwind only what THIS run inserted: documents the
                    # copy skipped already lived on the target (possibly
                    # with post-switch ingests no other shard holds) and
                    # must survive the rollback.
                    if copied_docs:
                        try:
                            target.replicas.apply_write(
                                lambda replica: self._rebalance_delete(
                                    replica, copied_docs
                                )
                            )
                        except Exception as exc:
                            # The committed copies could not be rolled
                            # back: rows sit on two shards, so this is
                            # the same unconverged state as a failed
                            # source delete -- keep the gate entry and
                            # pending record, converge by re-running.
                            delete_incomplete = True
                            raise ApiError(
                                503
                                if isinstance(exc, ReplicaUnavailable)
                                else 500,
                                f"rebalance {job.id} was cancelled but "
                                f"could not roll the copies back off "
                                f"shard {dst}: {exc}; re-submit the same "
                                "rebalance to converge (forward)",
                                code="rebalance_incomplete",
                            ) from exc
                    raise JobCancelled(
                        f"rebalance {job.id} cancelled after copy; "
                        "target rolled back, routing unchanged"
                    )
                self._publish_routing(self.routing.with_move(lo, hi, dst))
                job.update(progress=0.75)
                if moved_docs:
                    try:
                        # Every fan-out that may have read the target
                        # *before* the copy landed must finish before a
                        # row leaves the source, or one request could
                        # see the moved documents on neither shard.
                        self._move_gate.barrier()
                        source.replicas.apply_write(
                            lambda replica: self._rebalance_delete(
                                replica, moved_docs
                            )
                        )
                    except Exception as exc:
                        # Ownership already switched; the copies are
                        # live on the target but the source still holds
                        # the rows.  Keep the move registered (the gate
                        # entry is only dropped on success) so ``/sql``
                        # stays on the de-duplicating full-row plan, and
                        # tell the operator the convergence recipe:
                        # re-submitting the same move skips the
                        # already-copied documents and retries the
                        # delete.
                        delete_incomplete = True
                        raise ApiError(
                            503 if isinstance(exc, ReplicaUnavailable) else 500,
                            f"rebalance switched ownership of "
                            f"[{lo}, {hi}] to shard {dst} but could not "
                            f"delete the moved rows from shard {src}: "
                            f"{exc}; re-submit the same rebalance once "
                            f"the shard is writable to converge",
                            code="rebalance_incomplete",
                        ) from exc
                job.update(progress=0.9)
            with self._rr_lock:
                for doc_id in moved_docs:
                    self._placements.pop(doc_id, None)
            converged = True
        except ReplicaUnavailable as exc:
            raise ApiError(503, str(exc), code="shard_unavailable") from exc
        finally:
            if copy_landed:
                # The target's committed contents changed on every path
                # that got this far -- even a rolled-back cancel briefly
                # exposed the copies to scoped reads that may have been
                # cached -- so both shards' generations move and their
                # cache entries go, success or not.
                self.pool.bump({src, dst})
                evicted = self._invalidate_shards({src, dst})
            if delete_incomplete:
                # Keep the gate entry and the persisted pending record:
                # rows sit on two shards until a re-run converges, and
                # /sql must stay on the de-duplicating plan -- across
                # restarts too.
                pass
            else:
                # Converged: also clear every matching entry a failed
                # predecessor (or crash) left behind.  Cancelled/failed
                # before the swap: copies were undone (or never landed),
                # so only this attempt's entries go, a predecessor's
                # survive.
                self._finish_move(move, converged)
        job.update(progress=1.0, evicted_cache_entries=evicted)
        return {
            "doc_lo": lo,
            "doc_hi": hi,
            "source": src,
            "target": dst,
            "moved_docs": len(moved_docs),
            "moved_lines": moved_lines,
            "evicted_cache_entries": evicted,
        }

    # ------------------------------------------------------------------
    def validate_job_params(self, job_type, params):
        if job_type == "rebalance":
            request = validate_rebalance_params(params, self.num_shards)
            return {
                "doc_lo": request.doc_lo,
                "doc_hi": request.doc_hi,
                "source": request.source,
                "target": request.target,
            }
        return super().validate_job_params(job_type, params)

    # ------------------------------------------------------------------
    @property
    def snapshot_path(self) -> str:
        """The warm-start sidecar the ``cache_snapshot`` job writes."""
        return os.path.join(self.sidecar_dir, CACHE_SNAPSHOT_FILE)

    def job_cache_snapshot(self, job: Job, params) -> dict[str, object]:
        """Runner: serialize the query cache plus its generation vector.

        Sharded keys embed per-shard generation counters, so the
        snapshot records each shard's generation *and* line count at
        snapshot time; a warm start replays an entry only when every
        shard it covers still matches both.
        """
        job.check_cancelled()
        generations = list(
            self.pool.generations(tuple(range(self.num_shards)))
        )
        lines: list[int] = []
        index_digests: list[list] = []
        for index in range(self.num_shards):
            try:
                lines_and_index = self._lines_and_index(index)
            except ReplicaUnavailable as exc:
                raise ApiError(
                    503,
                    f"cannot snapshot: {exc}",
                    code="shard_unavailable",
                ) from exc
            lines.append(lines_and_index[0])
            index_digests.append(lines_and_index[1])
        entries = self.cache.export_entries()
        payload = {
            "kind": "sharded",
            "shard_dir": self.shard_dir,
            "num_shards": self.num_shards,
            "range_width": self.range_width,
            "generations": generations,
            "lines": lines,
            "index": index_digests,
            "created_at": time.time(),
            "entries": [[key_to_json(key), value] for key, value in entries],
        }
        size = atomic_write_json(self.snapshot_path, payload)
        job.update(progress=1.0, entries=len(entries), bytes=size)
        return {
            "path": self.snapshot_path,
            "entries": len(entries),
            "bytes": size,
        }

    def warm_start(self) -> int:
        """Reload the last ``cache_snapshot`` (``serve --warm-start``).

        Per-shard staleness: a shard whose line count moved since the
        snapshot drops every entry whose scope includes it, while
        entries scoped to untouched shards are restored (their
        generation counters resume at the snapshot values, so restored
        keys keep matching future lookups).  Returns the entry count
        loaded; ``/stats`` reports it as ``cache.warm_loaded``.
        """
        if not os.path.exists(self.snapshot_path):
            return 0
        # Best-effort: any structurally-off snapshot is dropped whole
        # rather than keeping the service from coming up.
        try:
            with open(self.snapshot_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            if (
                data.get("kind") != "sharded"
                or data.get("num_shards") != self.num_shards
            ):
                return 0
            snap_generations = [
                int(generation) for generation in data.get("generations") or []
            ]
            snap_lines = data.get("lines") or []
            snap_index = data.get("index") or []
            if (
                len(snap_generations) != self.num_shards
                or len(snap_lines) != self.num_shards
                or len(snap_index) != self.num_shards
            ):
                return 0
            stale: set[int] = set()
            for index in range(self.num_shards):
                try:
                    current = self._lines_and_index(index)
                except ReplicaUnavailable:
                    stale.add(index)
                    continue
                # A changed line count *or* a rebuilt index makes the
                # shard's cached results unreplayable.
                if current[0] != snap_lines[index]:
                    stale.add(index)
                elif current[1] != snap_index[index]:
                    stale.add(index)
            # Resume the fresh shards' generation clocks so restored
            # keys (which embed generation vectors) match future lookups.
            self.pool.resume_generations(
                [
                    None if index in stale else snap_generations[index]
                    for index in range(self.num_shards)
                ]
            )
            kept: list[tuple[object, object]] = []
            for raw_key, value in data.get("entries", []):
                key = key_from_json(raw_key)
                if not isinstance(key, tuple) or len(key) < 3:
                    continue
                scope, generations = key[1], key[2]
                if not isinstance(scope, tuple) or not isinstance(
                    generations, tuple
                ):
                    continue
                if any(
                    not isinstance(index, int) or index >= self.num_shards
                    for index in scope
                ):
                    continue
                if any(index in stale for index in scope):
                    continue
                if generations != tuple(snap_generations[s] for s in scope):
                    continue
                kept.append((key, value))
        except (OSError, json.JSONDecodeError, ValueError, TypeError,
                KeyError, AttributeError):
            return 0
        return self.cache.load_entries(kept)

    # ------------------------------------------------------------------
    def total_lines(self) -> int:
        """Lines across all shards (skipping any fully-down shard)."""
        total = 0
        for index in range(self.num_shards):
            try:
                total += self._shard_lines(index)
            except ReplicaUnavailable:
                continue
        return total

    def health(self) -> dict[str, object]:
        """Liveness: every shard answers a trivial query on some replica.

        A shard with no healthy replica degrades the status (its line
        count reads ``null``) instead of failing the probe -- the
        service is still serving every other shard.
        """
        per_shard: dict[str, int | None] = {}
        replica_health: dict[str, dict[str, int]] = {}
        degraded = False
        for index in range(self.num_shards):
            shard = self.pool.shard(index)
            try:
                per_shard[str(index)] = self._shard_lines(index)
            except ReplicaUnavailable:
                per_shard[str(index)] = None
                degraded = True
            replica_health[str(index)] = {
                "healthy": len(shard.replicas.healthy()),
                "attached": len(shard.replicas),
            }
        return {
            "status": "degraded" if degraded else "ok",
            "db": self.shard_dir,
            "num_shards": self.num_shards,
            "lines": sum(n for n in per_shard.values() if n is not None),
            "shard_lines": per_shard,
            "replicas": replica_health,
            "uptime_s": self.metrics.uptime_s,
        }

    def stats(self) -> dict[str, object]:
        """Operational snapshot: per-shard db/pool/replicas plus registries."""
        from ..db.engine import APPROACHES

        shard_stats = []
        for shard, pool_stat in zip(self.pool.shards, self.pool.stats()):
            def describe(db: StaccatoDB) -> dict[str, object]:
                return {
                    "lines": db.num_lines,
                    "storage_bytes": {
                        a: db.storage_bytes(a) for a in APPROACHES
                    },
                }
            try:
                described = self._replica_read(shard.index, "stats", describe)
            except ReplicaUnavailable:
                described = {"lines": None, "storage_bytes": None}
            shard_stats.append({**pool_stat, **described})
        return {
            "db": {
                "shard_dir": self.shard_dir,
                "num_shards": self.num_shards,
                "range_width": self.range_width,
                "num_replicas": self.pool.num_replicas,
                "lines": sum(
                    s["lines"] for s in shard_stats if s["lines"] is not None
                ),
            },
            "shards": shard_stats,
            "routing": self.routing.to_json(),
            "cache": self.cache.stats(),
            "jobs": self.jobs.stats(),
            "requests": self.metrics.snapshot(),
            "uptime_s": self.metrics.uptime_s,
        }
