"""The HTTP layer: routing, JSON framing and server lifecycle.

A thin shim over :class:`~repro.service.app.QueryService` built on the
stdlib ``ThreadingHTTPServer`` (one thread per request, daemonic).  The
handler reads a JSON body, dispatches to the matching service method,
and writes the JSON response; every request -- including failures --
is timed into the service's metrics registry.

Two entry points:

* :func:`start_service` -- start in a background thread on an ephemeral
  port, returning a :class:`RunningService` handle (tests, examples);
* :func:`serve_forever` -- blocking foreground server (the
  ``python -m repro serve`` command).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .app import QueryService
from .shards import ShardedQueryService
from .validation import ApiError

__all__ = [
    "build_server",
    "start_service",
    "start_sharded_service",
    "serve_forever",
    "RunningService",
]

#: Largest accepted request body; OCR batches are text, so 32 MiB is
#: generous while still bounding a misbehaving client.
MAX_BODY_BYTES = 32 * 1024 * 1024

GET_ROUTES = {"/health": "health", "/stats": "stats", "/jobs": "jobs_list"}
POST_ROUTES = {
    "/ingest": "ingest",
    "/search": "search",
    "/sql": "sql",
    "/index": "index_job",
    "/replicas": "replicas",
    "/jobs": "jobs_submit",
}
DELETE_ROUTES: dict[str, str] = {}
#: Prefix routes: the path segment after the prefix is passed to the
#: service method as its argument (e.g. ``GET /jobs/<id>``).
GET_ARG_ROUTES = {"/jobs/": "jobs_get"}
DELETE_ARG_ROUTES = {"/jobs/": "jobs_cancel"}


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's QueryService."""

    server: "ServiceHTTPServer"
    protocol_version = "HTTP/1.1"
    #: Socket timeout: without it a client that declares a Content-Length
    #: and never finishes sending would pin its handler thread forever.
    timeout = 60.0

    # ------------------------------------------------------------------
    @staticmethod
    def _route(
        path: str,
        exact: dict[str, str],
        by_prefix: dict[str, str] | None = None,
    ) -> tuple[str, str | None] | None:
        """Resolve a path to ``(endpoint, arg)`` -- exact first, then
        prefix routes, whose trailing segment becomes the argument."""
        endpoint = exact.get(path)
        if endpoint is not None:
            return endpoint, None
        for prefix, endpoint in (by_prefix or {}).items():
            if path.startswith(prefix) and len(path) > len(prefix):
                return endpoint, path[len(prefix):]
        return None

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        routed = self._route(self.path, GET_ROUTES, GET_ARG_ROUTES)
        if routed is None:
            self._dispatch_unknown()
            return
        self._dispatch(routed[0], with_body=False, arg=routed[1])

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        routed = self._route(self.path, POST_ROUTES)
        if routed is None:
            self._dispatch_unknown()
            return
        self._dispatch(routed[0], with_body=True, arg=routed[1])

    def do_DELETE(self) -> None:  # noqa: N802 (http.server API)
        routed = self._route(self.path, DELETE_ROUTES, DELETE_ARG_ROUTES)
        if routed is None:
            self._dispatch_unknown()
            return
        self._dispatch(routed[0], with_body=False, arg=routed[1])

    # ------------------------------------------------------------------
    def _dispatch_unknown(self) -> None:
        known = sorted(GET_ROUTES) + sorted(POST_ROUTES)
        known += [f"{prefix}<id>" for prefix in sorted(GET_ARG_ROUTES)]
        known += [f"DELETE {prefix}<id>" for prefix in sorted(DELETE_ARG_ROUTES)]
        error = ApiError(
            404, f"no route for {self.path!r}; endpoints: {known}", "not_found"
        )
        self._finish("unknown", 404, error.to_payload(), time.perf_counter())

    def _dispatch(
        self, endpoint: str, with_body: bool, arg: str | None = None
    ) -> None:
        service = self.server.service
        started = time.perf_counter()
        try:
            if with_body:
                payload = self._read_json()
                result = getattr(service, endpoint)(payload)
            elif arg is not None:
                result = getattr(service, endpoint)(arg)
            else:
                result = getattr(service, endpoint)()
            # A method may return (status, payload) -- e.g. job
            # submission answers 202 Accepted with the queued job row.
            if (
                isinstance(result, tuple)
                and len(result) == 2
                and isinstance(result[0], int)
            ):
                status, result = result
            else:
                status = 200
        except ApiError as exc:
            status, result = exc.status, exc.to_payload()
        except Exception as exc:  # pragma: no cover - defensive boundary
            status = 500
            result = ApiError(
                500, f"{type(exc).__name__}: {exc}", "internal_error"
            ).to_payload()
        self._finish(endpoint, status, result, started)

    def _finish(
        self, endpoint: str, status: int, payload: dict, started: float
    ) -> None:
        elapsed = time.perf_counter() - started
        self.server.service.metrics.observe(
            endpoint, elapsed, error=status >= 400
        )
        body = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to salvage

    def _read_json(self) -> object:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            raise ApiError(400, "bad Content-Length header") from None
        if length <= 0:
            raise ApiError(400, "request needs a JSON body")
        if length > MAX_BODY_BYTES:
            raise ApiError(
                413, f"body exceeds {MAX_BODY_BYTES} bytes", "payload_too_large"
            )
        # One read() is not enough: a client that stalls or disconnects
        # mid-body yields a short read, which json.loads would misreport
        # as bad_json.  Loop until the declared length arrives (bounded
        # by the handler's socket timeout) and give truncation its own
        # error code.
        chunks: list[bytes] = []
        received = 0
        while received < length:
            try:
                chunk = self.rfile.read(length - received)
            except TimeoutError:
                chunk = b""
            if not chunk:
                # Drop keep-alive: bytes the client sends after the
                # stall would otherwise be parsed as the next request.
                self.close_connection = True
                raise ApiError(
                    400,
                    f"request body ended after {received} of {length} "
                    "declared bytes",
                    "incomplete_body",
                )
            chunks.append(chunk)
            received += len(chunk)
        raw = b"".join(chunks)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ApiError(400, f"invalid JSON body: {exc}", "bad_json") from None

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the QueryService for its handlers."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: QueryService | ShardedQueryService,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.verbose = verbose


def build_server(
    service: QueryService | ShardedQueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ServiceHTTPServer:
    """Bind (but do not run) the HTTP server; port 0 picks one free."""
    return ServiceHTTPServer((host, port), service, verbose=verbose)


@dataclass
class RunningService:
    """A service running in a background thread, with clean shutdown."""

    service: QueryService | ShardedQueryService
    server: ServiceHTTPServer
    thread: threading.Thread

    @property
    def port(self) -> int:
        return self.server.server_address[1]

    @property
    def base_url(self) -> str:
        host = self.server.server_address[0]
        return f"http://{host}:{self.port}"

    def stop(self) -> None:
        """Stop serving, join the thread and close every connection."""
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)
        self.service.close()

    def __enter__(self) -> "RunningService":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def _start_in_thread(
    service: QueryService | ShardedQueryService,
    host: str,
    port: int,
) -> RunningService:
    server = build_server(service, host=host, port=port)
    thread = threading.Thread(
        target=server.serve_forever, name="staccato-service", daemon=True
    )
    thread.start()
    return RunningService(service=service, server=server, thread=thread)


def start_service(
    db_path: str,
    host: str = "127.0.0.1",
    port: int = 0,
    **service_kwargs,
) -> RunningService:
    """Start a query service in a daemon thread; returns its handle."""
    return _start_in_thread(
        QueryService(db_path, **service_kwargs), host, port
    )


def start_sharded_service(
    shard_dir: str,
    num_shards: int,
    host: str = "127.0.0.1",
    port: int = 0,
    **service_kwargs,
) -> RunningService:
    """Start a sharded query service in a daemon thread (tests, examples)."""
    return _start_in_thread(
        ShardedQueryService(shard_dir, num_shards, **service_kwargs),
        host,
        port,
    )


def serve_forever(
    db_path: str | None = None,
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = True,
    shards: int = 0,
    shard_dir: str | None = None,
    replicas: int = 1,
    warm_start: bool = False,
    **service_kwargs,
) -> None:
    """Run the service in the foreground until interrupted (CLI path).

    Pass ``db_path`` for the single-database service, or ``shards`` and
    ``shard_dir`` for the shard router of :mod:`repro.service.shards`
    (optionally with ``replicas`` read copies per shard).
    ``warm_start`` replays the last ``cache_snapshot`` job's output so
    the restarted service does not begin with a cold result cache.
    """
    if shards > 0:
        if shard_dir is None:
            raise ValueError("sharded serving needs --shard-dir")
        service: QueryService | ShardedQueryService = ShardedQueryService(
            shard_dir, shards, replicas=replicas, **service_kwargs
        )
        target = f"shards={shards} dir={shard_dir} replicas={replicas}"
    else:
        if db_path is None:
            raise ValueError("serving needs --db (or --shards/--shard-dir)")
        if replicas > 1:
            raise ValueError("replicas need a sharded service (--shards)")
        service = QueryService(db_path, **service_kwargs)
        target = f"db={db_path}"
    if warm_start:
        loaded = service.warm_start()
        print(f"warm start: {loaded} cached result(s) restored")
    server = build_server(service, host=host, port=port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(
        f"staccato service listening on http://{bound_host}:{bound_port} "
        f"({target})"
    )
    print(
        "endpoints: GET /health, GET /stats, POST /ingest, "
        "POST /search, POST /sql, POST /index, POST /replicas, "
        "POST /jobs, GET /jobs, GET /jobs/<id>, DELETE /jobs/<id>"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
