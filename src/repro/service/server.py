"""The threaded HTTP front end, plus backend-agnostic server lifecycle.

The thread-per-request backend: a thin shim over the stdlib
``ThreadingHTTPServer`` (one daemonic thread per request).  Routing,
JSON framing and response rendering live in the shared
:mod:`repro.service.http_common` core, so this handler and the asyncio
front end of :mod:`repro.service.aio` produce byte-identical payloads;
only the transport differs.

Two entry points drive either backend (``backend="thread"`` or
``"asyncio"``):

* :func:`start_service` / :func:`start_sharded_service` -- start in a
  background thread on an ephemeral port, returning a
  :class:`RunningService` handle (tests, examples);
* :func:`serve_forever` -- blocking foreground server (the
  ``python -m repro serve`` command).
"""

from __future__ import annotations

import contextlib
import signal
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from . import trace
from .aio import DEFAULT_MAX_INFLIGHT, AsyncHTTPServer
from .app import QueryService
from .http_common import (
    MAX_BODY_BYTES,  # noqa: F401  (re-exported; the historical home)
    UNTRACED_ENDPOINTS,
    body_length,
    decode_json,
    dispatch,
    incomplete_body,
    resolve,
    respond,
    split_path,
    split_query,
    unread_body,
)
from .shards import ShardedQueryService
from .validation import ApiError

__all__ = [
    "BACKENDS",
    "build_server",
    "start_service",
    "start_sharded_service",
    "serve_forever",
    "RunningService",
]

#: The serving front ends ``serve --backend`` can pick.
BACKENDS = ("thread", "asyncio")


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's QueryService."""

    server: "ServiceHTTPServer"
    protocol_version = "HTTP/1.1"
    #: Socket timeout: without it a client that declares a Content-Length
    #: and never finishes sending would pin its handler thread forever.
    timeout = 60.0
    #: Responses go out as two writes (headers, then body).  With Nagle
    #: on, the body write sits in the kernel until the client ACKs the
    #: headers -- and once a keep-alive connection leaves Linux's
    #: initial quickack mode, that ACK is delayed ~40ms, stalling every
    #: request on a reused connection.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802 (http.server API)
        self._handle("DELETE")

    def __getattr__(self, name: str):
        # http.server dispatches on ``do_<METHOD>`` and answers an HTML
        # 501 page when the attribute is missing; synthesizing a handler
        # for every other method keeps the JSON-only contract (405 with
        # an Allow header) for PUT/PATCH/HEAD/anything else.
        if name.startswith("do_"):
            return lambda: self._handle(name[3:])
        raise AttributeError(name)

    # ------------------------------------------------------------------
    def _handle(self, method: str) -> None:
        started = time.perf_counter()
        declared = self.headers.get("Content-Length")
        try:
            routed = resolve(
                method,
                split_path(self.path),
                getattr(self.server.service, "EXTRA_ROUTES", None),
            )
        except ApiError as exc:
            if unread_body(declared):
                # The body was never read; reusing the connection would
                # parse those bytes as the next request.
                self.close_connection = True
            self._finish(
                "unknown", exc.status, exc.to_payload(), started,
                suppress_body=method == "HEAD",
            )
            return
        service = self.server.service
        tracer = getattr(service, "tracer", None)
        root = None
        if tracer is not None and routed.endpoint not in UNTRACED_ENDPOINTS:
            root = tracer.begin_request(
                routed.endpoint,
                method,
                self.path,
                self.headers.get(trace.TRACE_HEADER),
                parent_span_id=self.headers.get(trace.PARENT_SPAN_HEADER),
            )
        try:
            payload: object = None
            if routed.with_body:
                try:
                    with trace.span("read_body"):
                        payload = self._read_json(declared)
                except ApiError as exc:
                    if exc.close_connection:  # framing error: body unread
                        self.close_connection = True
                    self._finish(
                        routed.endpoint, exc.status, exc.to_payload(), started
                    )
                    return
            elif unread_body(declared):
                self.close_connection = True  # GET/DELETE body left unread
            with trace.span("handler"):
                status, result = dispatch(
                    service, routed, payload, split_query(self.path)
                )
            self._finish(routed.endpoint, status, result, started)
        finally:
            if root is not None:
                tracer.release(root)

    def _finish(
        self,
        endpoint: str,
        status: int,
        payload: dict,
        started: float,
        suppress_body: bool = False,
    ) -> None:
        response = respond(
            self.server.service, endpoint, status, payload, started
        )
        try:
            self.send_response(status)
            for name, value in response.headers:
                self.send_header(name, value)
            self.end_headers()
            if not suppress_body:  # HEAD states the length, sends no body
                self.wfile.write(response.body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to salvage

    def _read_json(self, declared: str | None) -> object:
        length = body_length(declared)
        # One read() is not enough: a client that stalls or disconnects
        # mid-body yields a short read, which json.loads would misreport
        # as bad_json.  Loop until the declared length arrives (bounded
        # by the handler's socket timeout) and give truncation its own
        # error code.
        chunks: list[bytes] = []
        received = 0
        while received < length:
            try:
                chunk = self.rfile.read(length - received)
            except TimeoutError:
                chunk = b""
            if not chunk:
                # incomplete_body carries close_connection: bytes the
                # client sends after the stall would otherwise be
                # parsed as the next request.
                raise incomplete_body(received, length)
            chunks.append(chunk)
            received += len(chunk)
        return decode_json(b"".join(chunks))

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the QueryService for its handlers."""

    daemon_threads = True
    #: The socketserver default backlog of 5 drops SYNs under a burst of
    #: fresh connections (the client then waits out a ~1s retransmit).
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        service: QueryService | ShardedQueryService,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.verbose = verbose


def build_server(
    service: QueryService | ShardedQueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ServiceHTTPServer:
    """Bind (but do not run) the threaded server; port 0 picks one free."""
    return ServiceHTTPServer((host, port), service, verbose=verbose)


@dataclass
class RunningService:
    """A service running in a background thread, with clean shutdown.

    ``server`` is either a :class:`ServiceHTTPServer` (thread backend)
    or an :class:`~repro.service.aio.AsyncHTTPServer` (asyncio
    backend); both expose ``server_address``, ``shutdown()`` and
    ``server_close()``.
    """

    service: QueryService | ShardedQueryService
    server: ServiceHTTPServer | AsyncHTTPServer
    thread: threading.Thread

    @property
    def port(self) -> int:
        return self.server.server_address[1]

    @property
    def base_url(self) -> str:
        host = self.server.server_address[0]
        return f"http://{host}:{self.port}"

    def stop(self) -> None:
        """Stop serving, join the thread and close every connection."""
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)
        self.service.close()

    def __enter__(self) -> "RunningService":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def _check_backend(backend: str) -> None:
    """Reject a bad backend name *before* any service is constructed --
    the error path must not leak an open connection pool."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")


def _start_in_thread(
    service: QueryService | ShardedQueryService,
    host: str,
    port: int,
    backend: str = "thread",
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
) -> RunningService:
    _check_backend(backend)
    if backend == "asyncio":
        aio = AsyncHTTPServer(
            service, host=host, port=port, max_inflight=max_inflight
        )
        thread = aio.start()
        return RunningService(service=service, server=aio, thread=thread)
    server = build_server(service, host=host, port=port)
    thread = threading.Thread(
        target=server.serve_forever, name="staccato-service", daemon=True
    )
    thread.start()
    return RunningService(service=service, server=server, thread=thread)


def start_service(
    db_path: str,
    host: str = "127.0.0.1",
    port: int = 0,
    backend: str = "thread",
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    **service_kwargs,
) -> RunningService:
    """Start a query service in a daemon thread; returns its handle."""
    _check_backend(backend)
    return _start_in_thread(
        QueryService(db_path, **service_kwargs),
        host,
        port,
        backend=backend,
        max_inflight=max_inflight,
    )


def start_sharded_service(
    shard_dir: str,
    num_shards: int,
    host: str = "127.0.0.1",
    port: int = 0,
    backend: str = "thread",
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    **service_kwargs,
) -> RunningService:
    """Start a sharded query service in a daemon thread (tests, examples)."""
    _check_backend(backend)
    return _start_in_thread(
        ShardedQueryService(shard_dir, num_shards, **service_kwargs),
        host,
        port,
        backend=backend,
        max_inflight=max_inflight,
    )


def start_worker_service(
    shard_dir: str,
    num_shards: int,
    host: str = "127.0.0.1",
    port: int = 0,
    backend: str = "thread",
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    **service_kwargs,
) -> RunningService:
    """Start the subprocess-worker topology in a daemon thread.

    Same wire contract as :func:`start_sharded_service`, but each shard
    is owned by a worker *process* (see :mod:`repro.service.workers`)
    and the in-process side is only the fan-out router.
    """
    _check_backend(backend)
    # Imported lazily: workers.py imports from this module at top level.
    from .workers import WorkerRouterService

    return _start_in_thread(
        WorkerRouterService(shard_dir, num_shards, **service_kwargs),
        host,
        port,
        backend=backend,
        max_inflight=max_inflight,
    )


def serve_forever(
    db_path: str | None = None,
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = True,
    shards: int = 0,
    shard_dir: str | None = None,
    replicas: int = 1,
    warm_start: bool = False,
    backend: str = "thread",
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    worker_procs: bool = False,
    **service_kwargs,
) -> None:
    """Run the service in the foreground until interrupted (CLI path).

    Pass ``db_path`` for the single-database service, or ``shards`` and
    ``shard_dir`` for the shard router of :mod:`repro.service.shards`
    (optionally with ``replicas`` read copies per shard).
    ``worker_procs`` promotes each shard to a worker subprocess behind
    the fan-out router of :mod:`repro.service.workers`.
    ``warm_start`` replays the last ``cache_snapshot`` job's output so
    the restarted service does not begin with a cold result cache.
    ``backend`` picks the front end: ``"thread"`` (one OS thread per
    request) or ``"asyncio"`` (event loop + a ``max_inflight``-wide
    executor for the blocking service calls).
    """
    _check_backend(backend)
    if worker_procs and shards <= 0:
        raise ValueError("--worker-procs needs a sharded service (--shards)")
    if shards > 0:
        if shard_dir is None:
            raise ValueError("sharded serving needs --shard-dir")
        if worker_procs:
            from .workers import WorkerRouterService

            service: QueryService | ShardedQueryService = WorkerRouterService(
                shard_dir, shards, replicas=replicas, **service_kwargs
            )
            target = (
                f"shards={shards} dir={shard_dir} replicas={replicas} "
                f"worker-procs"
            )
        else:
            service = ShardedQueryService(
                shard_dir, shards, replicas=replicas, **service_kwargs
            )
            target = f"shards={shards} dir={shard_dir} replicas={replicas}"
    else:
        if db_path is None:
            raise ValueError("serving needs --db (or --shards/--shard-dir)")
        if replicas > 1:
            raise ValueError("replicas need a sharded service (--shards)")
        service = QueryService(db_path, **service_kwargs)
        target = f"db={db_path}"
    if warm_start:
        loaded = service.warm_start()
        print(f"warm start: {loaded} cached result(s) restored")
    if backend == "asyncio":
        server: ServiceHTTPServer | AsyncHTTPServer = AsyncHTTPServer(
            service, host=host, port=port,
            max_inflight=max_inflight, verbose=verbose,
        )
        loop_thread = server.start()
    else:
        server = build_server(service, host=host, port=port, verbose=verbose)
        loop_thread = None
    bound_host, bound_port = server.server_address[:2]
    print(
        f"staccato service listening on http://{bound_host}:{bound_port} "
        f"({target}, backend={backend})"
    )
    print(
        "endpoints: GET /health, GET /stats, GET /metrics, "
        "GET /traces, GET /traces/<id>, POST /ingest, "
        "POST /search, POST /sql, POST /index, POST /replicas, "
        "POST /jobs, GET /jobs, GET /jobs/<id>, DELETE /jobs/<id>"
    )
    # SIGTERM must take the same graceful path as Ctrl-C: the finally
    # block below is what terminates (and drains) the worker
    # subprocesses of a --worker-procs topology -- without this, a
    # plain `kill` of the router orphans every worker.
    def _graceful_term(signum, frame):
        raise KeyboardInterrupt

    with contextlib.suppress(ValueError):  # signal needs the main thread
        signal.signal(signal.SIGTERM, _graceful_term)
    try:
        if loop_thread is not None:
            loop_thread.join()
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if loop_thread is not None:
            server.shutdown()
        server.server_close()
        service.close()
