"""A stdlib sampling profiler for the query service.

Spans say where wall-clock time went per request; the profiler says
where the *process* spends CPU across requests, at function granularity,
without instrumenting anything: a daemon thread wakes ``hz`` times a
second, walks every request thread's current Python frame stack via
``sys._current_frames()``, and counts collapsed stacks (the
``root;child;leaf`` text format Brendan Gregg's flamegraph tools and
speedscope consume).

Attribution works through a *tag registry*: the dispatch layer wraps
every service call in :meth:`SamplingProfiler.tag`, which maps the
handling thread's id to its endpoint for the duration of the request.
Samples land under ``<endpoint>;frame;...``; threads not handling a
request (executors parked in ``wait``, the supervisor, the sampler
itself) are not sampled -- this is a *request* attribution tool, and
skipping parked threads keeps the store small and the signal clean.

Costs, by construction:

* ``hz == 0`` (the default): no sampler thread exists; ``tag`` is one
  dict write and delete per request.
* sampling on: the request threads pay nothing extra -- the walk
  happens on the sampler thread, and ``sys._current_frames()`` holds
  the GIL only for the snapshot itself.

The store is bounded (``max_stacks`` distinct collapsed stacks;
overflow folds into a per-endpoint ``(other)`` bucket) so a long-lived
server's memory stays flat.
"""

from __future__ import annotations

import sys
import threading
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["SamplingProfiler", "DEFAULT_MAX_STACKS", "DEFAULT_MAX_DEPTH"]

#: Distinct collapsed stacks retained before folding into ``(other)``.
DEFAULT_MAX_STACKS = 4096

#: Frames kept per sample, leaf-most last (deep recursion is truncated
#: at the root end, which is the uninteresting end for self-time).
DEFAULT_MAX_DEPTH = 64

#: Default listing size for ``/profile`` responses.
_DEFAULT_TOP = 25


class SamplingProfiler:
    """Bounded collapsed-stack aggregation over ``sys._current_frames``."""

    def __init__(
        self,
        hz: float = 0.0,
        max_stacks: int = DEFAULT_MAX_STACKS,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ) -> None:
        if hz < 0:
            raise ValueError("hz must be >= 0")
        self.hz = float(hz)
        self.max_stacks = max_stacks
        self.max_depth = max_depth
        self._lock = threading.Lock()
        #: thread id -> endpoint label, while a request is in flight.
        self._tags: dict[int, str] = {}
        #: collapsed stack (tuple of frame labels) -> sample count.
        self._stacks: dict[tuple[str, ...], int] = {}
        self._samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def enabled(self) -> bool:
        return self.hz > 0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Start the sampler thread (a no-op when ``hz == 0``)."""
        if not self.enabled or self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="sampling-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5)

    def _run(self) -> None:
        interval = 1.0 / self.hz
        while not self._stop.wait(interval):
            self.sample_once()

    # -- attribution ---------------------------------------------------
    @contextmanager
    def tag(self, label: str) -> Iterator[None]:
        """Attribute this thread's samples to ``label`` while inside."""
        ident = threading.get_ident()
        with self._lock:
            previous = self._tags.get(ident)
            self._tags[ident] = label
        try:
            yield
        finally:
            with self._lock:
                if previous is None:
                    self._tags.pop(ident, None)
                else:
                    self._tags[ident] = previous

    # -- sampling ------------------------------------------------------
    def sample_once(self) -> int:
        """Walk every tagged thread's stack once; returns threads seen."""
        frames = sys._current_frames()
        with self._lock:
            tags = dict(self._tags)
        seen = 0
        for ident, label in tags.items():
            frame = frames.get(ident)
            if frame is None:
                continue
            stack: list[str] = []
            while frame is not None and len(stack) < self.max_depth:
                code = frame.f_code
                stack.append(f"{code.co_name} ({code.co_filename.rsplit('/', 1)[-1]}:{frame.f_lineno})")
                frame = frame.f_back
            stack.append(label)
            key = tuple(reversed(stack))
            with self._lock:
                if key not in self._stacks and len(self._stacks) >= self.max_stacks:
                    key = (label, "(other)")
                self._stacks[key] = self._stacks.get(key, 0) + 1
                self._samples += 1
            seen += 1
        return seen

    # -- exposition ----------------------------------------------------
    def snapshot(self, top: int | None = None) -> dict[str, Any]:
        """The JSON ``/profile`` view: config, totals, top frames/stacks.

        Self-time per frame is the number of samples in which that frame
        was the leaf -- the standard flamegraph reading of a sample set.
        """
        top = top or _DEFAULT_TOP
        with self._lock:
            stacks = dict(self._stacks)
            samples = self._samples
        self_time: dict[str, int] = {}
        by_endpoint: dict[str, int] = {}
        for key, count in stacks.items():
            leaf = key[-1]
            self_time[leaf] = self_time.get(leaf, 0) + count
            by_endpoint[key[0]] = by_endpoint.get(key[0], 0) + count
        heaviest = sorted(
            stacks.items(), key=lambda item: item[1], reverse=True
        )[:top]
        return {
            "enabled": self.enabled,
            "hz": self.hz,
            "samples": samples,
            "distinct_stacks": len(stacks),
            "endpoints": dict(sorted(by_endpoint.items())),
            "top_self": [
                {"frame": frame, "samples": count}
                for frame, count in sorted(
                    self_time.items(),
                    key=lambda item: item[1],
                    reverse=True,
                )[:top]
            ],
            "top_stacks": [
                {"stack": ";".join(key), "samples": count}
                for key, count in heaviest
            ],
        }

    def render_collapsed(self, top: int | None = None) -> str:
        """Collapsed-stack text (``frame;frame;... count`` per line)."""
        with self._lock:
            stacks = sorted(
                self._stacks.items(), key=lambda item: item[1], reverse=True
            )
        if top is not None:
            stacks = stacks[:top]
        return "".join(
            f"{';'.join(key)} {count}\n" for key, count in stacks
        )
