"""The transport-independent core of the HTTP layer.

Both serving front ends -- the thread-per-request backend in
:mod:`repro.service.server` and the event-loop backend in
:mod:`repro.service.aio` -- speak the same JSON API over the same
routes.  Everything that defines that wire contract lives here, once:

* the route tables (exact paths and ``/jobs/<id>``-style prefixes);
* request-target splitting (the query string is not part of the route);
* method dispatch, including the JSON 405 for unsupported methods;
* JSON body framing limits and error codes (``bad Content-Length``,
  ``payload_too_large``, ``incomplete_body``, ``bad_json``);
* ``(status, payload)`` normalization of service-method returns, with
  :class:`~repro.service.validation.ApiError` and unexpected exceptions
  mapped to structured error bodies;
* metrics observation and response encoding.

A backend owns only the transport: socket accept/read/write, timeouts,
and where the blocking service call runs (the request thread, or a
bounded executor behind an event loop).  Responses are byte-identical
across backends because every payload is produced here.
"""

from __future__ import annotations

import contextlib
import json
import time
import urllib.parse
from dataclasses import dataclass, field
from typing import Mapping

from . import trace
from .validation import ApiError

__all__ = [
    "MAX_BODY_BYTES",
    "ALLOWED_METHODS",
    "ALLOW_HEADER",
    "GET_ROUTES",
    "POST_ROUTES",
    "DELETE_ROUTES",
    "GET_ARG_ROUTES",
    "DELETE_ARG_ROUTES",
    "QUERY_ROUTES",
    "UNTRACED_ENDPOINTS",
    "PROMETHEUS_CONTENT_TYPE",
    "Routed",
    "HttpResponse",
    "TextPayload",
    "split_path",
    "split_query",
    "resolve",
    "not_found",
    "method_not_allowed",
    "unread_body",
    "body_length",
    "incomplete_body",
    "decode_json",
    "dispatch",
    "respond",
]

#: Largest accepted request body; OCR batches are text, so 32 MiB is
#: generous while still bounding a misbehaving client.
MAX_BODY_BYTES = 32 * 1024 * 1024

GET_ROUTES = {
    "/health": "health",
    "/stats": "stats",
    "/jobs": "jobs_list",
    "/metrics": "metrics_text",
    "/traces": "traces_list",
    "/profile": "profile",
}
POST_ROUTES = {
    "/ingest": "ingest",
    "/search": "search",
    "/sql": "sql",
    "/index": "index_job",
    "/replicas": "replicas",
    "/jobs": "jobs_submit",
}
DELETE_ROUTES: dict[str, str] = {}
#: Prefix routes: the path segment after the prefix is passed to the
#: service method as its argument (e.g. ``GET /jobs/<id>``).  The
#: segment must not itself contain ``/`` -- ``/jobs/a/b`` is a 404,
#: not a lookup of the id ``"a/b"``.
GET_ARG_ROUTES = {"/jobs/": "jobs_get", "/traces/": "traces_get"}
DELETE_ARG_ROUTES = {"/jobs/": "jobs_cancel"}

#: Endpoints that receive the parsed query string (``?endpoint=search``)
#: instead of a body or path argument.
QUERY_ROUTES = {"traces_list", "profile"}

#: The Prometheus text exposition format ``GET /metrics`` serves.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Methods the API serves; anything else is a JSON 405 whose ``Allow``
#: header lists exactly these.
ALLOWED_METHODS = ("DELETE", "GET", "POST")
ALLOW_HEADER = ", ".join(ALLOWED_METHODS)

#: Per method: (exact table, prefix table, whether a JSON body is read).
_METHOD_TABLES: dict[str, tuple[dict, dict, bool]] = {
    "GET": (GET_ROUTES, GET_ARG_ROUTES, False),
    "POST": (POST_ROUTES, {}, True),
    "DELETE": (DELETE_ROUTES, DELETE_ARG_ROUTES, False),
}


@dataclass(frozen=True, slots=True)
class Routed:
    """One resolved route: the service method to call and how."""

    endpoint: str
    arg: str | None
    with_body: bool


@dataclass(frozen=True, slots=True)
class TextPayload:
    """A non-JSON response body (e.g. the Prometheus exposition).

    Service methods normally return JSON-able dicts; returning one of
    these instead makes :func:`respond` write ``text`` verbatim under
    ``content_type``.
    """

    text: str
    content_type: str = "text/plain; charset=utf-8"


@dataclass(slots=True)
class HttpResponse:
    """A fully rendered response, ready for either transport to write."""

    status: int
    body: bytes
    headers: list[tuple[str, str]] = field(default_factory=list)
    #: The transport must not reuse the connection (framing is, or may
    #: be, desynchronized -- e.g. a request body was left unread).
    close: bool = False


def split_path(target: str) -> str:
    """The routable path of a request target (query string dropped).

    ``GET /health?probe=1`` routes as ``/health``; routing on the raw
    target would 404 every URL with a query string.
    """
    return urllib.parse.urlsplit(target).path


def split_query(target: str) -> dict[str, str]:
    """The request target's query string as a flat dict (last value wins)."""
    raw = urllib.parse.parse_qs(
        urllib.parse.urlsplit(target).query, keep_blank_values=True
    )
    return {key: values[-1] for key, values in raw.items()}


def known_endpoints() -> list[str]:
    """The endpoint list quoted in 404 bodies."""
    known = sorted(GET_ROUTES) + sorted(POST_ROUTES)
    known += [f"{prefix}<id>" for prefix in sorted(GET_ARG_ROUTES)]
    known += [f"DELETE {prefix}<id>" for prefix in sorted(DELETE_ARG_ROUTES)]
    return known


def not_found(path: str) -> ApiError:
    return ApiError(
        404, f"no route for {path!r}; endpoints: {known_endpoints()}",
        "not_found",
    )


def method_not_allowed(method: str) -> ApiError:
    """The JSON 405 for PUT/PATCH/HEAD/anything else.

    Without this, the thread backend would fall through to
    ``http.server``'s default HTML 501 page, breaking the JSON-only
    contract.  Transports add ``Allow: DELETE, GET, POST`` whenever
    they write a 405 (see :func:`respond`).
    """
    return ApiError(
        405,
        f"method {method} is not supported; allowed methods: "
        f"{ALLOW_HEADER}",
        "method_not_allowed",
    )


def resolve(
    method: str,
    path: str,
    extra_routes: Mapping[tuple[str, str], str] | None = None,
) -> Routed:
    """Resolve ``(method, path)`` to a service method, or raise.

    Raises :class:`ApiError` 405 for methods outside the API and 404
    for unrouted paths -- including a prefix route whose trailing
    segment contains ``/`` (``GET /jobs/abc/def`` must not leak
    ``"abc/def"`` into a job lookup and answer a confusing
    ``job_not_found``).

    ``extra_routes`` maps ``(method, exact_path) -> endpoint`` for
    routes a *specific service instance* serves beyond the public
    contract -- the shard worker processes of
    :mod:`repro.service.workers` expose their internal ``/worker/*``
    RPC surface this way (transports read it off
    ``service.EXTRA_ROUTES``).  Keeping these out of the module-level
    tables keeps the public wire contract -- and the docs that are
    checked against it -- unchanged.
    """
    tables = _METHOD_TABLES.get(method)
    if tables is None:
        raise method_not_allowed(method)
    exact, by_prefix, with_body = tables
    endpoint = exact.get(path)
    if endpoint is not None:
        return Routed(endpoint, None, with_body)
    for prefix, endpoint in by_prefix.items():
        if path.startswith(prefix) and len(path) > len(prefix):
            arg = path[len(prefix):]
            if "/" not in arg:
                return Routed(endpoint, arg, with_body)
    if extra_routes:
        endpoint = extra_routes.get((method, path))
        if endpoint is not None:
            return Routed(endpoint, None, with_body)
    raise not_found(path)


# ----------------------------------------------------------------------
# JSON body framing
# ----------------------------------------------------------------------
def _framing_error(status: int, message: str, code: str = "bad_request") -> ApiError:
    """An error that leaves request bytes unread -> must drop keep-alive."""
    error = ApiError(status, message, code)
    error.close_connection = True
    return error


def unread_body(content_length: str | None) -> bool:
    """True when a request declared a body no handler will consume.

    Used for unrouted/unsupported requests (404/405, including HEAD --
    the *response* body is suppressed but the *request* body is still
    on the socket) and for GET/DELETE sent with a body: the transport
    must close after responding or those bytes become the next
    "request".
    """
    return bool(content_length) and content_length != "0"


def body_length(raw: str | None) -> int:
    """Validate a ``Content-Length`` header for a body-carrying route.

    Every error here is a framing error (the declared body, if any,
    stays unread), so each carries ``close_connection`` -- notably the
    413: answering ``payload_too_large`` without reading 33 MiB is the
    point, but the connection cannot be reused after.
    """
    try:
        length = int(raw or 0)
    except (TypeError, ValueError):
        raise _framing_error(400, "bad Content-Length header") from None
    if length <= 0:
        raise _framing_error(400, "request needs a JSON body")
    if length > MAX_BODY_BYTES:
        raise _framing_error(
            413, f"body exceeds {MAX_BODY_BYTES} bytes", "payload_too_large"
        )
    return length


def incomplete_body(received: int, length: int) -> ApiError:
    """The client stalled or hung up mid-body (transport detected)."""
    return _framing_error(
        400,
        f"request body ended after {received} of {length} declared bytes",
        "incomplete_body",
    )


def decode_json(raw: bytes) -> object:
    try:
        return json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ApiError(400, f"invalid JSON body: {exc}", "bad_json") from None


# ----------------------------------------------------------------------
# Dispatch and response rendering
# ----------------------------------------------------------------------
#: Endpoints that observe the service rather than serve data: they are
#: not traced themselves (a scrape loop or trace poll would otherwise
#: fill the trace ring with its own requests).
UNTRACED_ENDPOINTS = {"metrics_text", "traces_list", "traces_get", "profile"}


def dispatch(
    service,
    routed: Routed,
    payload: object = None,
    query: Mapping[str, str] | None = None,
) -> tuple[int, dict]:
    """Call the routed service method; normalize to ``(status, payload)``.

    A method may return a bare payload (200) or ``(status, payload)``
    -- e.g. job submission answers 202 Accepted with the queued job
    row.  ApiError becomes its structured body; anything else is a
    defensive 500 so one bad request can never take the worker down.

    A body containing ``"trace": true`` gets the request's own span
    tree (as recorded so far -- serialization still lies ahead) echoed
    under ``"trace"`` in a successful response; a request that arrived
    with an ``X-Parent-Span-Id`` header (a cross-process hop from the
    worker router) gets the same echo unconditionally, so the caller
    can graft this process's subtree into its own trace.  A body with
    ``"profile": true`` echoes the sampling profiler's aggregate under
    ``"profile"``.
    """
    try:
        method = getattr(service, routed.endpoint)
        profiler = getattr(service, "profiler", None)
        with contextlib.ExitStack() as stack:
            if profiler is not None and profiler.enabled:
                stack.enter_context(profiler.tag(routed.endpoint))
            if routed.endpoint in QUERY_ROUTES:
                result = method(query or {})
            elif routed.with_body:
                result = method(payload)
            elif routed.arg is not None:
                result = method(routed.arg)
            else:
                result = method()
        if (
            isinstance(result, tuple)
            and len(result) == 2
            and isinstance(result[0], int)
        ):
            status, result = result
        else:
            status = 200
        if isinstance(result, dict):
            want_trace = (
                isinstance(payload, Mapping) and payload.get("trace") is True
            )
            root = trace.current_root()
            stitching = root is not None and root.attrs.get("parent_span")
            if root is not None and (want_trace or stitching):
                # Copy before annotating: the handler may have returned
                # a dict the result cache also holds.
                result = dict(result)
                result["trace"] = {
                    "trace_id": root.trace_id,
                    "spans": root.to_dict(),
                }
            if (
                isinstance(payload, Mapping)
                and payload.get("profile") is True
            ):
                result = dict(result)
                result["profile"] = (
                    profiler.snapshot()
                    if profiler is not None
                    else {"enabled": False, "hz": 0.0, "samples": 0}
                )
        return status, result
    except ApiError as exc:
        return exc.status, exc.to_payload()
    except Exception as exc:  # pragma: no cover - defensive boundary
        error = ApiError(500, f"{type(exc).__name__}: {exc}", "internal_error")
        return 500, error.to_payload()


def respond(
    service,
    endpoint: str,
    status: int,
    payload: dict,
    started: float,
    close: bool = False,
) -> HttpResponse:
    """Time the request into the metrics registry, render the body, and
    -- when the request is being traced -- close out its span tree
    (serialization span, trace record, slow-query/access log lines,
    ``X-Trace-Id`` response header)."""
    elapsed = time.perf_counter() - started
    service.metrics.observe(endpoint, elapsed, error=status >= 400)
    with trace.span("serialize"):
        if isinstance(payload, TextPayload):
            body = payload.text.encode("utf-8")
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
    headers = [
        ("Content-Type", content_type),
        ("Content-Length", str(len(body))),
    ]
    if status == 405:
        headers.append(("Allow", ALLOW_HEADER))
    tracer = getattr(service, "tracer", None)
    root = trace.current_root() if tracer is not None else None
    if root is not None:
        tracer.finish_request(root, status=status)
        if root.trace_id:
            headers.append((trace.TRACE_HEADER, root.trace_id))
    return HttpResponse(status=status, body=body, headers=headers, close=close)
