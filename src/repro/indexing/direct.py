"""Direct (dictionary-less) indexing and its exponential blowup (Fig. 5).

"Directly applying an inverted index to transducer data is essentially
doomed to failure": the representation stores ``k**m`` strings, and
indexing every term occurrence of every stored string needs a posting for
each.  This module computes that posting count *exactly* (big-integer
dynamic program, no enumeration) so the Figure 5 curves can be
regenerated; an enumeration cross-check is provided for test-sized
automata.
"""

from __future__ import annotations

from ..sfa.model import Sfa
from ..sfa.ops import enumerate_strings, string_count, topological_order

__all__ = ["direct_posting_count", "direct_posting_count_enumerated"]

# Path-state classes for the token-counting DP: what the previous emitted
# character was (affects whether the next non-space char starts a token).
_BOUNDARY = 0  # start of line or after a space
_IN_TOKEN = 1


def _token_starts(text: str, entering_state: int) -> tuple[int, int]:
    """Number of token starts when reading ``text`` from a given state,
    plus the state after reading it."""
    state = entering_state
    starts = 0
    for ch in text:
        if ch == " ":
            state = _BOUNDARY
        else:
            if state == _BOUNDARY:
                starts += 1
            state = _IN_TOKEN
    return starts, state


def direct_posting_count(sfa: Sfa) -> int:
    """Total postings from directly indexing every stored string.

    Counts, over all ``string_count(sfa)`` stored strings, the number of
    whitespace-delimited term occurrences -- each needs one posting.
    Computed by a DP carrying ``(path count, total token starts)`` per
    (node, boundary-state) pair, so it is exact even when the number of
    strings overflows machine integers (the paper notes the 64-bit
    overflow beyond m = 60 in Figure 5(B)).
    """
    # state: node -> {boundary-state: (paths, tokens)}
    table: dict[int, dict[int, tuple[int, int]]] = {
        node: {} for node in sfa.nodes
    }
    table[sfa.start][_BOUNDARY] = (1, 0)
    for node in topological_order(sfa):
        cell = table[node]
        if not cell:
            continue
        for succ in set(sfa.successors(node)):
            succ_cell = table[succ]
            for emission in sfa.emissions(node, succ):
                for state, (paths, tokens) in cell.items():
                    starts, nxt_state = _token_starts(emission.string, state)
                    prev_paths, prev_tokens = succ_cell.get(nxt_state, (0, 0))
                    succ_cell[nxt_state] = (
                        prev_paths + paths,
                        prev_tokens + tokens + paths * starts,
                    )
    final = table[sfa.final]
    return sum(tokens for _, tokens in final.values())


def direct_posting_count_enumerated(sfa: Sfa, limit: int = 100_000) -> int:
    """Cross-check by brute-force enumeration (tests only)."""
    if string_count(sfa) > limit:
        raise ValueError("too many strings to enumerate; use the DP")
    total = 0
    for text, _ in enumerate_strings(sfa):
        total += len(text.split())
    return total
