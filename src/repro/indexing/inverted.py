"""Dictionary-based inverted index construction over SFAs.

Implements the paper's Algorithms 3 and 4 (Appendix F): the dictionary of
terms is compiled into a prefix-trie automaton with one final state per
term; a dynamic program walks the SFA's edges in topological order and
runs the trie over every stored string, starting a fresh run at every
character offset.  Runs still alive at the end of a string are passed to
successor edges as *augmented states* -- (trie state, original posting)
pairs -- which is how terms straddling several edges/chunks are found.
Whenever a final state is reached, the posting recorded is the location
where the term *started*.
"""

from __future__ import annotations

from ..automata.trie import DictionaryTrie
from ..sfa.model import Sfa
from ..sfa.ops import topological_order
from .postings import Posting

__all__ = ["build_sfa_postings", "build_kmap_postings"]

# An augmented-state table: trie state -> set of start postings.
AugmentedStates = dict[int, set[Posting]]


def _run_dfa(
    trie: DictionaryTrie,
    incoming: AugmentedStates,
    u: int,
    v: int,
    rank: int,
    text: str,
    index: dict[str, set[Posting]],
) -> AugmentedStates:
    """Paper Algorithm 4 (RunDFA) for one stored string of one edge.

    Starts a fresh trie run at every offset of ``text``, continues every
    incoming augmented run, emits postings at final states, and returns
    the augmented states surviving past the end of the string.
    """
    survivors: AugmentedStates = {}

    # Fresh runs beginning inside this string.
    active: list[tuple[int, int]] = []  # (trie state, start offset)
    for j, ch in enumerate(text):
        active.append((trie.start, j))
        advanced: list[tuple[int, int]] = []
        for state, start in active:
            nxt = trie.step(state, ch)
            if nxt == trie.DEAD:
                continue
            advanced.append((nxt, start))
            if trie.is_final(nxt):
                index.setdefault(trie.term_at(nxt), set()).add(
                    Posting(u=u, v=v, rank=rank, offset=start)
                )
        active = advanced
    for state, start in active:
        if state != trie.start:
            survivors.setdefault(state, set()).add(
                Posting(u=u, v=v, rank=rank, offset=start)
            )

    # Runs continuing from predecessor edges.
    for state, origins in incoming.items():
        current = state
        died = False
        for ch in text:
            nxt = trie.step(current, ch)
            if nxt == trie.DEAD:
                died = True
                break
            current = nxt
            if trie.is_final(nxt):
                term = trie.term_at(nxt)
                bucket = index.setdefault(term, set())
                bucket.update(origins)
        if not died:
            survivors.setdefault(current, set()).update(origins)
    return survivors


def build_sfa_postings(
    sfa: Sfa, trie: DictionaryTrie
) -> dict[str, set[Posting]]:
    """Paper Algorithm 3: the index-construction DP over one SFA.

    Works uniformly over FullSFA data (single-character emissions) and
    Staccato chunk graphs (up to k string emissions per edge).  Returns
    ``term -> postings`` for this line.
    """
    index: dict[str, set[Posting]] = {}
    # Augmented states are aggregated per *node*: the union over all
    # incoming edges' survivors, available to every outgoing edge.
    at_node: dict[int, AugmentedStates] = {node: {} for node in sfa.nodes}
    for node in topological_order(sfa):
        incoming = at_node[node]
        for succ in set(sfa.successors(node)):
            for rank, emission in enumerate(sfa.emissions(node, succ)):
                survivors = _run_dfa(
                    trie, incoming, node, succ, rank, emission.string, index
                )
                bucket = at_node[succ]
                for state, origins in survivors.items():
                    bucket.setdefault(state, set()).update(origins)
    return index


def build_kmap_postings(
    strings: list[tuple[str, float]], trie: DictionaryTrie
) -> dict[str, set[Posting]]:
    """Standard text indexing of a k-MAP string list (paper: "indexing
    k-MAP data is pretty straightforward").

    Postings use the convention ``u = v = -1`` (there is no graph) with
    ``rank`` identifying the stored string.
    """
    index: dict[str, set[Posting]] = {}
    for rank, (text, _) in enumerate(strings):
        active: list[tuple[int, int]] = []
        for j, ch in enumerate(text):
            active.append((trie.start, j))
            advanced = []
            for state, start in active:
                nxt = trie.step(state, ch)
                if nxt == trie.DEAD:
                    continue
                advanced.append((nxt, start))
                if trie.is_final(nxt):
                    index.setdefault(trie.term_at(nxt), set()).add(
                        Posting(u=-1, v=-1, rank=rank, offset=start)
                    )
            active = advanced
    return index
