"""Posting lists for the SFA inverted index (paper Section 4).

A posting records where a dictionary term *starts* inside one line's
representation: the edge (chunk), the rank of the string on that edge,
and the character offset inside that string.  Terms that straddle edges
are recorded at the edge/offset where they began (paper Algorithm 4).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Posting", "PostingIndex"]


@dataclass(frozen=True, slots=True)
class Posting:
    """Start location of a term occurrence inside one SFA."""

    u: int
    v: int
    rank: int
    offset: int


class PostingIndex:
    """An in-memory inverted index: term -> set of postings per line.

    The RDBMS-backed form (:mod:`repro.db`) stores the same tuples in a
    relational table with a B-tree on the term column, as the paper does;
    this class is the per-SFA construction result and the in-memory query
    structure.
    """

    def __init__(self) -> None:
        self._by_term: dict[str, dict[int, set[Posting]]] = {}

    def add(self, term: str, line_id: int, posting: Posting) -> None:
        """Record one posting for ``term`` on ``line_id``."""
        self._by_term.setdefault(term, {}).setdefault(line_id, set()).add(posting)

    def merge_line(
        self, line_id: int, term_postings: dict[str, set[Posting]]
    ) -> None:
        """Fold one line's construction output into the global index."""
        for term, postings in term_postings.items():
            for posting in postings:
                self.add(term, line_id, posting)

    def lines_for(self, term: str) -> dict[int, set[Posting]]:
        """All lines containing ``term``, with their postings."""
        return {
            line_id: set(postings)
            for line_id, postings in self._by_term.get(term, {}).items()
        }

    def terms(self) -> list[str]:
        """All indexed terms, sorted."""
        return sorted(self._by_term)

    def num_postings(self) -> int:
        """Total posting count across terms and lines."""
        return sum(
            len(postings)
            for lines in self._by_term.values()
            for postings in lines.values()
        )

    def selectivity(self, term: str, num_lines: int) -> float:
        """Fraction of lines the term's posting list touches (Figure 20)."""
        if num_lines == 0:
            return 0.0
        return len(self._by_term.get(term, {})) / num_lines
