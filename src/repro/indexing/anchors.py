"""Left-anchor extraction for index-assisted queries (paper Sections 2.1, 4).

An *anchored* regular expression begins (or ends) with words of the
language -- e.g. ``no.(2|3)`` is anchored, ``(no|num).(2|8)`` is not.  For
a left-anchored query whose anchor word is in the index dictionary, the
posting list of the anchor prunes the lines that must be scanned.
"""

from __future__ import annotations

from ..automata.regex import literal_prefix, parse
from ..automata.trie import DictionaryTrie
from ..query.like import like_to_pattern

__all__ = ["left_anchor_word", "anchor_for_query"]

_MIN_ANCHOR_LENGTH = 2


def left_anchor_word(pattern: str) -> str | None:
    """The first complete word of the pattern's literal prefix, if any.

    ``Public Law (8|9)\\d`` -> ``public`` (lowercased to match the
    dictionary trie's normalization).  Returns ``None`` when the pattern
    starts with a wildcard/alternation (not left-anchored) or the prefix
    has no complete word.
    """
    prefix = literal_prefix(parse(pattern))
    if not prefix:
        return None
    words = prefix.split(" ")
    # A word is only *complete* if something follows it (a space or more
    # pattern); otherwise the pattern might continue the word.
    if len(words) >= 2:
        candidate = words[0]
    else:
        return None
    candidate = candidate.strip().lower()
    if len(candidate) < _MIN_ANCHOR_LENGTH or not candidate.isalpha():
        return None
    return candidate


def anchor_for_query(like: str, trie: DictionaryTrie) -> str | None:
    """The usable anchor of a LIKE/REGEX query: a left-anchor word that is
    present in the index dictionary (otherwise the index cannot help and
    the engine falls back to a filescan)."""
    pattern, _ = like_to_pattern(like)
    word = left_anchor_word(pattern)
    if word is not None and trie.contains(word):
        return word
    return None
