"""SFA projection: evaluate only the neighborhood of a posting.

Traditional text search reads just the matched region of a document; the
paper extends the idea to SFAs (Section 4): from a posting's start
location, a breadth-first search collects the descendant nodes reachable
within the term length, giving a (deliberate over-) estimate of the part
of the automaton needed to verify the match.  Evaluating the query DP on
that window is much cheaper than on the whole line.

The window probability is the mass of paths that (a) reach the window
entry and (b) match the pattern starting inside the window -- an
approximation of the full line-match probability that never misses an
anchored match (the anchor *starts* at the posting by construction).
"""

from __future__ import annotations

from collections import deque

from .. import counters
from ..automata import dfa
from ..automata.dfa import Dfa
from ..sfa.model import Sfa
from ..sfa.ops import backward_mass, forward_mass, topological_order
from .postings import Posting

__all__ = ["projection_nodes", "projected_match_probability"]


def projection_nodes(sfa: Sfa, start_node: int, depth: int) -> set[int]:
    """Nodes reachable from ``start_node`` by at most ``depth`` edges."""
    seen = {start_node}
    frontier = deque([(start_node, 0)])
    while frontier:
        node, dist = frontier.popleft()
        if dist == depth:
            continue
        for succ in sfa.successors(node):
            if succ not in seen:
                seen.add(succ)
                frontier.append((succ, dist + 1))
    return seen


def projected_match_probability(
    sfa: Sfa,
    query: Dfa,
    postings: set[Posting],
    window: int,
) -> float:
    """Match probability restricted to the posting windows.

    ``window`` bounds the BFS depth (an upper estimate of how many edges
    the pattern can span).  The DP runs once over the union of windows:
    mass is injected at each window entry (weighted by the full-line
    forward mass of that node) and accepted mass is folded out through the
    full-line backward masses.  The result is an *estimate* of the line
    match probability: positive exactly when some window matches (so
    anchored recall is unaffected), but paths crossing several windows can
    be counted more than once, hence the final clamp.
    """
    if not postings:
        return 0.0
    if not query.match_anywhere:
        raise ValueError("projection only supports match-anywhere queries")
    entries = {p.u for p in postings}
    allowed: set[int] = set()
    for entry in entries:
        allowed |= projection_nodes(sfa, entry, window)
    forward = forward_mass(sfa)
    backward = backward_mass(sfa)
    matched = 0.0
    cells = 0
    transitions = 0
    masses: dict[int, dict[int, float]] = {node: {} for node in allowed}
    for entry in entries:
        if forward[entry] > 0.0:
            masses[entry][query.start] = (
                masses[entry].get(query.start, 0.0) + forward[entry]
            )
    for node in topological_order(sfa):
        if node not in allowed:
            continue
        dist = masses[node]
        if not dist:
            continue
        cells += len(dist)
        for succ in set(sfa.successors(node)):
            if succ not in allowed:
                continue
            succ_dist = masses[succ]
            for emission in sfa.emissions(node, succ):
                transitions += len(dist)
                for state, mass in dist.items():
                    nxt = query.step_string(state, emission.string)
                    if nxt == dfa.DEAD:
                        continue
                    weight = mass * emission.prob
                    if query.is_accepting(nxt):
                        matched += weight * backward[succ]
                    else:
                        succ_dist[nxt] = succ_dist.get(nxt, 0.0) + weight
    counters.add(dp_cells=cells, dp_transitions=transitions)
    return min(matched, 1.0)
