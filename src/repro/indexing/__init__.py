"""Inverted indexing over probabilistic OCR data (paper Section 4)."""

from .anchors import anchor_for_query, left_anchor_word
from .direct import direct_posting_count, direct_posting_count_enumerated
from .inverted import build_kmap_postings, build_sfa_postings
from .postings import Posting, PostingIndex
from .projection import projected_match_probability, projection_nodes

__all__ = [
    "anchor_for_query",
    "left_anchor_word",
    "direct_posting_count",
    "direct_posting_count_enumerated",
    "build_kmap_postings",
    "build_sfa_postings",
    "Posting",
    "PostingIndex",
    "projected_match_probability",
    "projection_nodes",
]
