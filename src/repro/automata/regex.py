"""Parser for the paper's query-pattern language.

Staccato's ``LIKE`` predicate accepts keyword and regular-expression
patterns that are compiled to DFAs (paper Section 2.1).  The language used
in the evaluation (Tables 4 and 6) consists of:

* literal characters (``.`` and space are literals: ``U.S.C. 2\\d\\d\\d``);
* ``\\d`` -- any decimal digit;
* ``\\x`` -- any character;
* ``( a | b | ... )`` -- alternation of sub-patterns (``(8|9)``, ``(no|num)``);
* ``*`` -- Kleene star on the preceding atom (``(\\x)*``);
* ``\\c`` -- escape for a literal ``(``, ``)``, ``|``, ``*`` or ``\\``.

The parser produces a small AST that :mod:`repro.automata.nfa` compiles via
Thompson's construction.
"""

from __future__ import annotations

import string as _string
from dataclasses import dataclass

__all__ = [
    "RegexError",
    "Node",
    "Literal",
    "AnyChar",
    "Digit",
    "Concat",
    "Alternation",
    "Star",
    "Epsilon",
    "parse",
    "literal_prefix",
]

DIGITS = frozenset(_string.digits)


class RegexError(ValueError):
    """Raised on a malformed pattern."""


class Node:
    """Base class for pattern AST nodes."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Literal(Node):
    """A single literal character."""

    char: str


@dataclass(frozen=True, slots=True)
class AnyChar(Node):
    """``\\x`` -- matches any single character."""


@dataclass(frozen=True, slots=True)
class Digit(Node):
    """``\\d`` -- matches any single decimal digit."""


@dataclass(frozen=True, slots=True)
class Concat(Node):
    """Concatenation of sub-patterns."""

    parts: tuple[Node, ...]


@dataclass(frozen=True, slots=True)
class Alternation(Node):
    """``(a|b|...)`` alternation."""

    options: tuple[Node, ...]


@dataclass(frozen=True, slots=True)
class Star(Node):
    """Kleene star on the inner pattern."""

    inner: Node


@dataclass(frozen=True, slots=True)
class Epsilon(Node):
    """Matches the empty string."""


_SPECIAL = {"(", ")", "|", "*", "\\"}


class _Parser:
    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.pos = 0

    def peek(self) -> str | None:
        if self.pos < len(self.pattern):
            return self.pattern[self.pos]
        return None

    def take(self) -> str:
        ch = self.pattern[self.pos]
        self.pos += 1
        return ch

    def parse_alternation(self) -> Node:
        options = [self.parse_concat()]
        while self.peek() == "|":
            self.take()
            options.append(self.parse_concat())
        if len(options) == 1:
            return options[0]
        return Alternation(tuple(options))

    def parse_concat(self) -> Node:
        parts: list[Node] = []
        while self.peek() is not None and self.peek() not in (")", "|"):
            parts.append(self.parse_item())
        if not parts:
            return Epsilon()
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def parse_item(self) -> Node:
        atom = self.parse_atom()
        while self.peek() == "*":
            self.take()
            atom = Star(atom)
        return atom

    def parse_atom(self) -> Node:
        ch = self.take()
        if ch == "(":
            inner = self.parse_alternation()
            if self.peek() != ")":
                raise RegexError(f"unclosed group in pattern {self.pattern!r}")
            self.take()
            return inner
        if ch == "\\":
            escaped = self.peek()
            if escaped is None:
                raise RegexError(f"dangling escape in pattern {self.pattern!r}")
            self.take()
            if escaped == "d":
                return Digit()
            if escaped == "x":
                return AnyChar()
            return Literal(escaped)
        if ch == "*":
            raise RegexError(f"'*' with nothing to repeat in {self.pattern!r}")
        if ch == ")":
            raise RegexError(f"unbalanced ')' in pattern {self.pattern!r}")
        return Literal(ch)


def parse(pattern: str) -> Node:
    """Parse ``pattern`` into its AST.

    The empty pattern parses to :class:`Epsilon` (which, under the
    match-anywhere semantics of ``LIKE '%%'``, matches every document).
    """
    parser = _Parser(pattern)
    node = parser.parse_alternation()
    if parser.pos != len(pattern):
        raise RegexError(f"trailing characters in pattern {pattern!r}")
    return node


def literal_prefix(node: Node) -> str:
    """The maximal literal prefix of a pattern.

    Used by :mod:`repro.indexing.anchors` to decide whether a regex is
    *left-anchored* by a dictionary word (paper Sections 2.1 and 4): e.g.
    ``Public Law (8|9)\\d`` has literal prefix ``"Public Law "``.
    """
    if isinstance(node, Literal):
        return node.char
    if isinstance(node, Concat):
        prefix = []
        for part in node.parts:
            piece = literal_prefix(part)
            prefix.append(piece)
            if not _is_pure_literal(part):
                break
        return "".join(prefix)
    return ""


def _is_pure_literal(node: Node) -> bool:
    if isinstance(node, Literal):
        return True
    if isinstance(node, Concat):
        return all(_is_pure_literal(part) for part in node.parts)
    return False
