"""Thompson construction: pattern AST -> nondeterministic finite automaton.

The NFA is the intermediate form between the parsed query pattern and the
deterministic automaton used by the matrix-multiplication query evaluator
(paper Sections 2.1-2.2, citing Hopcroft/Motwani/Ullman [29]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import regex
from .regex import DIGITS, Node

__all__ = ["CharMatcher", "Nfa", "compile_pattern"]


@dataclass(frozen=True, slots=True)
class CharMatcher:
    """A transition label: a concrete char set, any-digit, or any-char.

    ``kind`` is one of ``"lit"``, ``"digit"``, ``"any"``; for ``"lit"`` the
    matched characters are in ``chars``.
    """

    kind: str
    chars: frozenset[str] = frozenset()

    def matches(self, ch: str) -> bool:
        """Whether this label matches character ``ch``."""
        if self.kind == "any":
            return True
        if self.kind == "digit":
            return ch in DIGITS
        return ch in self.chars


ANY = CharMatcher("any")
DIGIT = CharMatcher("digit")


def _lit(ch: str) -> CharMatcher:
    return CharMatcher("lit", frozenset((ch,)))


@dataclass
class Nfa:
    """An NFA with epsilon moves.

    ``transitions[s]`` is a list of ``(matcher, target)`` pairs;
    ``epsilon[s]`` a list of targets reachable on the empty string.
    ``accept`` is the single accepting state (Thompson's construction
    guarantees one).
    """

    start: int = 0
    accept: int = 1
    transitions: dict[int, list[tuple[CharMatcher, int]]] = field(
        default_factory=dict
    )
    epsilon: dict[int, list[int]] = field(default_factory=dict)
    _next_state: int = 0

    def new_state(self) -> int:
        """Allocate a fresh state id."""
        state = self._next_state
        self._next_state += 1
        self.transitions.setdefault(state, [])
        self.epsilon.setdefault(state, [])
        return state

    def add_transition(self, src: int, matcher: CharMatcher, dst: int) -> None:
        """Add a labeled transition."""
        self.transitions[src].append((matcher, dst))

    def add_epsilon(self, src: int, dst: int) -> None:
        """Add an epsilon move."""
        self.epsilon[src].append(dst)

    @property
    def num_states(self) -> int:
        """Number of allocated states."""
        return self._next_state

    def epsilon_closure(self, states: frozenset[int]) -> frozenset[int]:
        """All states reachable from ``states`` via epsilon moves."""
        closure = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for nxt in self.epsilon[state]:
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return frozenset(closure)

    def move(self, states: frozenset[int], ch: str) -> frozenset[int]:
        """States reachable from ``states`` by consuming ``ch`` (without the
        trailing epsilon closure)."""
        return frozenset(
            dst
            for state in states
            for matcher, dst in self.transitions[state]
            if matcher.matches(ch)
        )

    def outgoing_matchers(self, states: frozenset[int]) -> list[CharMatcher]:
        """The distinct matchers leaving a state set (drives the lazy DFA's
        alphabet partitioning)."""
        seen: set[CharMatcher] = set()
        out: list[CharMatcher] = []
        for state in states:
            for matcher, _ in self.transitions[state]:
                if matcher not in seen:
                    seen.add(matcher)
                    out.append(matcher)
        return out


def _build(nfa: Nfa, node: Node) -> tuple[int, int]:
    """Thompson construction; returns the fragment's (start, accept)."""
    if isinstance(node, regex.Literal):
        start, accept = nfa.new_state(), nfa.new_state()
        nfa.add_transition(start, _lit(node.char), accept)
        return start, accept
    if isinstance(node, regex.AnyChar):
        start, accept = nfa.new_state(), nfa.new_state()
        nfa.add_transition(start, ANY, accept)
        return start, accept
    if isinstance(node, regex.Digit):
        start, accept = nfa.new_state(), nfa.new_state()
        nfa.add_transition(start, DIGIT, accept)
        return start, accept
    if isinstance(node, regex.Epsilon):
        start, accept = nfa.new_state(), nfa.new_state()
        nfa.add_epsilon(start, accept)
        return start, accept
    if isinstance(node, regex.Concat):
        first_start, prev_accept = _build(nfa, node.parts[0])
        for part in node.parts[1:]:
            part_start, part_accept = _build(nfa, part)
            nfa.add_epsilon(prev_accept, part_start)
            prev_accept = part_accept
        return first_start, prev_accept
    if isinstance(node, regex.Alternation):
        start, accept = nfa.new_state(), nfa.new_state()
        for option in node.options:
            opt_start, opt_accept = _build(nfa, option)
            nfa.add_epsilon(start, opt_start)
            nfa.add_epsilon(opt_accept, accept)
        return start, accept
    if isinstance(node, regex.Star):
        start, accept = nfa.new_state(), nfa.new_state()
        inner_start, inner_accept = _build(nfa, node.inner)
        nfa.add_epsilon(start, inner_start)
        nfa.add_epsilon(start, accept)
        nfa.add_epsilon(inner_accept, inner_start)
        nfa.add_epsilon(inner_accept, accept)
        return start, accept
    raise TypeError(f"unknown AST node {node!r}")


def compile_pattern(pattern: str | Node) -> Nfa:
    """Compile a pattern (text or pre-parsed AST) to an NFA."""
    node = regex.parse(pattern) if isinstance(pattern, str) else pattern
    nfa = Nfa(transitions={}, epsilon={})
    start, accept = _build(nfa, node)
    nfa.start = start
    nfa.accept = accept
    return nfa
