"""Deterministic automata via (lazy) subset construction.

Queries are evaluated as DFAs over SFA data (paper Section 2.2): the
evaluation DP is cubic in the number of DFA states, so we keep the DFA
small two ways:

* **lazy construction** -- subsets are materialized only for characters
  actually seen in the data;
* **absorbing accept** -- for the ``LIKE '%p%'`` (match-anywhere)
  semantics, acceptance of a factor is monotone, so every accepting
  subset collapses into one absorbing accept state.

A materialized + minimized form is provided for the cost-model benches
(``q`` in Table 1) and for equivalence testing.
"""

from __future__ import annotations

from .nfa import Nfa, compile_pattern
from .regex import Node

__all__ = ["Dfa", "MaterializedDfa", "dfa_for_pattern", "minimize"]

DEAD = -1
_ACCEPT = 0  # the absorbing accept state id (match-anywhere mode)


class Dfa:
    """A lazily-determinized view of an NFA.

    ``match_anywhere=True`` gives the ``Sigma* L Sigma*`` semantics the
    paper's LIKE predicate uses: matching restarts at every offset and
    acceptance absorbs.  ``match_anywhere=False`` gives plain whole-string
    acceptance.
    """

    def __init__(self, nfa: Nfa, match_anywhere: bool = True) -> None:
        self._nfa = nfa
        self._match_anywhere = match_anywhere
        self._start_closure = nfa.epsilon_closure(frozenset((nfa.start,)))
        self._subsets: list[frozenset[int] | None] = []
        self._ids: dict[frozenset[int], int] = {}
        self._accepting: set[int] = set()
        self._cache: dict[tuple[int, str], int] = {}
        if match_anywhere:
            self._subsets.append(None)  # id 0: the absorbing accept state
            self._accepting.add(_ACCEPT)
        self.start = self._intern(self._start_closure)

    # ------------------------------------------------------------------
    def _is_nfa_accepting(self, subset: frozenset[int]) -> bool:
        return self._nfa.accept in subset

    def _intern(self, subset: frozenset[int]) -> int:
        if self._match_anywhere and self._is_nfa_accepting(subset):
            return _ACCEPT
        existing = self._ids.get(subset)
        if existing is not None:
            return existing
        state = len(self._subsets)
        self._subsets.append(subset)
        self._ids[subset] = state
        if not self._match_anywhere and self._is_nfa_accepting(subset):
            self._accepting.add(state)
        return state

    # ------------------------------------------------------------------
    def step(self, state: int, ch: str) -> int:
        """The transition function; ``DEAD`` is a sink for dead ends."""
        if state == DEAD:
            return DEAD
        if self._match_anywhere and state == _ACCEPT:
            return _ACCEPT
        key = (state, ch)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        subset = self._subsets[state]
        assert subset is not None
        moved = self._nfa.move(subset, ch)
        nxt_subset = self._nfa.epsilon_closure(moved)
        if self._match_anywhere:
            nxt_subset = nxt_subset | self._start_closure
        nxt = self._intern(nxt_subset) if nxt_subset else DEAD
        if self._match_anywhere and nxt == DEAD:
            # The restart closure is always live in match-anywhere mode.
            nxt = self._intern(self._start_closure)
        self._cache[key] = nxt
        return nxt

    def step_string(self, state: int, text: str) -> int:
        """Run the DFA over ``text`` from ``state``."""
        for ch in text:
            state = self.step(state, ch)
            if state == DEAD:
                return DEAD
            if self._match_anywhere and state == _ACCEPT:
                return _ACCEPT
        return state

    def is_accepting(self, state: int) -> bool:
        """True for accepting states (absorbing in match-anywhere mode)."""
        return state in self._accepting

    def accepts(self, text: str) -> bool:
        """Whole-run acceptance of ``text`` from the start state."""
        return self.is_accepting(self.step_string(self.start, text))

    @property
    def num_states(self) -> int:
        """Number of states materialized so far (the lazy ``q``)."""
        return len(self._subsets)

    @property
    def match_anywhere(self) -> bool:
        """Whether this DFA uses substring (Sigma* L Sigma*) semantics."""
        return self._match_anywhere

    # ------------------------------------------------------------------
    def materialize(self, alphabet: str) -> "MaterializedDfa":
        """Force every transition over ``alphabet`` and return a complete
        transition-table DFA (plus a dead sink)."""
        pending = [self.start]
        seen = {self.start}
        while pending:
            state = pending.pop()
            for ch in alphabet:
                nxt = self.step(state, ch)
                if nxt != DEAD and nxt not in seen:
                    seen.add(nxt)
                    pending.append(nxt)
        states = sorted(seen)
        index = {s: i for i, s in enumerate(states)}
        dead = len(states)
        table = [[dead] * len(alphabet) for _ in range(dead + 1)]
        for state in states:
            for j, ch in enumerate(alphabet):
                nxt = self.step(state, ch)
                table[index[state]][j] = dead if nxt == DEAD else index[nxt]
        accepting = frozenset(
            index[s] for s in states if self.is_accepting(s)
        )
        return MaterializedDfa(
            alphabet=alphabet,
            table=table,
            start=index[self.start],
            accepting=accepting,
            dead=dead,
        )


class MaterializedDfa:
    """A complete transition-table DFA over an explicit alphabet."""

    def __init__(
        self,
        alphabet: str,
        table: list[list[int]],
        start: int,
        accepting: frozenset[int],
        dead: int,
    ) -> None:
        self.alphabet = alphabet
        self._index = {ch: i for i, ch in enumerate(alphabet)}
        self.table = table
        self.start = start
        self.accepting = accepting
        self.dead = dead

    @property
    def num_states(self) -> int:
        """Total states including the dead sink."""
        return len(self.table)

    def step(self, state: int, ch: str) -> int:
        """Table-lookup transition; unknown characters go dead."""
        col = self._index.get(ch)
        if col is None:
            return self.dead
        return self.table[state][col]

    def is_accepting(self, state: int) -> bool:
        """True for accepting states."""
        return state in self.accepting

    def accepts(self, text: str) -> bool:
        """Whole-string acceptance over the materialized table."""
        state = self.start
        for ch in text:
            state = self.step(state, ch)
        return state in self.accepting


def minimize(dfa: MaterializedDfa) -> MaterializedDfa:
    """Moore partition-refinement minimization of a materialized DFA."""
    n = dfa.num_states
    # Initial partition: accepting vs non-accepting.
    block = [1 if s in dfa.accepting else 0 for s in range(n)]
    while True:
        signatures: dict[tuple[int, ...], int] = {}
        new_block = [0] * n
        for state in range(n):
            signature = (block[state],) + tuple(
                block[dfa.table[state][j]] for j in range(len(dfa.alphabet))
            )
            new_block[state] = signatures.setdefault(signature, len(signatures))
        if new_block == block:
            break
        block = new_block
    num_blocks = max(block) + 1
    table = [[0] * len(dfa.alphabet) for _ in range(num_blocks)]
    for state in range(n):
        for j in range(len(dfa.alphabet)):
            table[block[state]][j] = block[dfa.table[state][j]]
    accepting = frozenset(block[s] for s in dfa.accepting)
    return MaterializedDfa(
        alphabet=dfa.alphabet,
        table=table,
        start=block[dfa.start],
        accepting=accepting,
        dead=block[dfa.dead],
    )


def dfa_for_pattern(pattern: str | Node, match_anywhere: bool = True) -> Dfa:
    """Compile a query pattern straight to its (lazy) DFA."""
    return Dfa(compile_pattern(pattern), match_anywhere=match_anywhere)
