"""Query automata: the paper's pattern language, NFAs, DFAs and tries."""

from .dfa import DEAD, Dfa, MaterializedDfa, dfa_for_pattern, minimize
from .nfa import CharMatcher, Nfa, compile_pattern
from .regex import (
    Alternation,
    AnyChar,
    Concat,
    Digit,
    Epsilon,
    Literal,
    Node,
    RegexError,
    Star,
    literal_prefix,
    parse,
)
from .trie import DictionaryTrie

__all__ = [
    "DEAD",
    "Dfa",
    "MaterializedDfa",
    "dfa_for_pattern",
    "minimize",
    "CharMatcher",
    "Nfa",
    "compile_pattern",
    "Alternation",
    "AnyChar",
    "Concat",
    "Digit",
    "Epsilon",
    "Literal",
    "Node",
    "RegexError",
    "Star",
    "literal_prefix",
    "parse",
    "DictionaryTrie",
]
