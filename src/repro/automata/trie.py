"""Dictionary prefix-trie automaton (paper Section 4 and Appendix F).

The inverted-index construction compiles the user-supplied dictionary of
terms into a trie automaton "with multiple final states, each
corresponding to a term".  Algorithm 4 then walks SFA strings through this
automaton, starting a fresh run at every character offset, and records a
posting whenever a final state is reached.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["DictionaryTrie"]


class DictionaryTrie:
    """A deterministic trie over dictionary terms.

    States are integers, 0 is the root.  ``step`` returns ``-1`` when no
    transition exists (the automaton "dies", Algorithm 4).  Final states
    map back to the term they complete.
    """

    DEAD = -1

    def __init__(self, terms: Iterable[str] = (), case_sensitive: bool = False) -> None:
        self._children: list[dict[str, int]] = [{}]
        self._term_of: dict[int, str] = {}
        self._case_sensitive = case_sensitive
        for term in terms:
            self.add(term)

    def _normalize(self, text: str) -> str:
        return text if self._case_sensitive else text.lower()

    def add(self, term: str) -> None:
        """Insert ``term`` into the dictionary."""
        if not term:
            raise ValueError("cannot index the empty term")
        state = 0
        for ch in self._normalize(term):
            nxt = self._children[state].get(ch)
            if nxt is None:
                nxt = len(self._children)
                self._children.append({})
                self._children[state][ch] = nxt
            state = nxt
        self._term_of[state] = self._normalize(term)

    # ------------------------------------------------------------------
    @property
    def start(self) -> int:
        """The root state."""
        return 0

    @property
    def num_states(self) -> int:
        """Number of trie states."""
        return len(self._children)

    @property
    def num_terms(self) -> int:
        """Number of dictionary terms."""
        return len(self._term_of)

    def step(self, state: int, ch: str) -> int:
        """Transition on one character; DEAD when no branch exists."""
        if state == self.DEAD:
            return self.DEAD
        return self._children[state].get(self._normalize(ch), self.DEAD)

    def is_final(self, state: int) -> bool:
        """True when a term ends at ``state``."""
        return state in self._term_of

    def term_at(self, state: int) -> str:
        """The term completed at a final state."""
        return self._term_of[state]

    def final_states(self) -> list[int]:
        """All term-final states."""
        return list(self._term_of)

    def contains(self, term: str) -> bool:
        """Whole-term membership test."""
        state = 0
        for ch in self._normalize(term):
            state = self.step(state, ch)
            if state == self.DEAD:
                return False
        return self.is_final(state)

    def terms(self) -> list[str]:
        """The dictionary, sorted."""
        return sorted(self._term_of.values())
