"""Process-wide engine counters for performance attribution.

The span tree (``repro.service.trace``) answers *where wall-clock time
went*; these counters answer *how much algorithmic work was done*: DP
cells visited, chunk transitions relaxed, lines scanned vs. matched,
index postings probed.  Both views matter for the paper's Figure 10 arc
-- a speedup that halves latency without shrinking cells-per-line is a
constant-factor win, one that shrinks the counters is algorithmic.

Design constraints, in order:

* **Hot-path cost ~ one dict write per evaluation.**  The DP inner loop
  runs millions of times per filescan, so instrumentation accumulates
  into plain local integers inside the loop and flushes through
  :func:`add` exactly once per ``match_probability`` call.
* **No import cycles.**  This module imports nothing from the package,
  so ``query``/``indexing``/``db``/``service`` can all use it.
* **Two sinks.**  ``add`` writes to the innermost active *local
  collector* when one is installed (a contextvar, so concurrent handler
  threads never mix), else directly to the process-global aggregate.
  :func:`collect` installs a local collector, and on exit folds its
  totals into the enclosing collector (or the global aggregate at the
  outermost level) -- so a request-scoped view is exact *and* the
  global totals still see every unit of work.  The global aggregate
  feeds ``/metrics`` (``staccato_engine_*_total``) and ``/stats``; in
  the worker-process topology each worker process keeps its own exact
  aggregate, surfaced through its own endpoints and the router's
  ``/stats`` fan-out.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar

__all__ = [
    "COUNTER_NAMES",
    "add",
    "collect",
    "global_snapshot",
    "reset_global",
]

#: Every counter the engine emits, with the ``/metrics`` help text.
#: Adding a counter here is all that is needed for it to appear in the
#: Prometheus exposition and the ``/stats`` engine block.
COUNTER_NAMES: dict[str, str] = {
    "dp_cells": "DP cells visited ((SFA node, DFA state) pairs relaxed).",
    "dp_transitions": "Chunk/character transitions relaxed by the DP.",
    "lines_scanned": "Lines whose representation was evaluated.",
    "lines_matched": "Lines whose match probability cleared the cutoff.",
    "strings_evaluated": "Stored k-MAP strings run through the query DFA.",
    "postings_probed": "Dictionary-index posting entries materialized.",
    "index_candidates": "Candidate lines produced by index probes.",
    "plan_index": "Planner decisions that chose the index probe.",
    "plan_scan": "Planner decisions that chose the filescan.",
    "memo_hits": "Kernel evaluations served from the cross-request memo.",
    "memo_misses": "Kernel evaluations that had to run the DP.",
}

_global_lock = threading.Lock()
_global: dict[str, int] = {name: 0 for name in COUNTER_NAMES}

#: The innermost active local collector, or ``None`` when counts go
#: straight to the process aggregate.  A contextvar (not a thread-local)
#: so executor hops that propagate context keep attribution.
_LOCAL: ContextVar[dict[str, int] | None] = ContextVar(
    "engine_counters", default=None
)


def add(**deltas: int) -> None:
    """Accumulate counter deltas (unknown names are rejected loudly).

    Called once per engine operation, never per DP cell -- accumulate
    into plain ints inside hot loops and flush the totals here.
    """
    local = _LOCAL.get()
    if local is not None:
        for name, delta in deltas.items():
            if delta:
                local[name] = local.get(name, 0) + delta
        return
    with _global_lock:
        for name, delta in deltas.items():
            if name not in _global:
                raise KeyError(f"unknown engine counter {name!r}")
            if delta:
                _global[name] += delta


@contextmanager
def collect():
    """Install a local collector; yields the dict of counts so far.

    On exit the collected totals are folded into the enclosing collector
    (nested ``collect`` blocks compose) or the process-global aggregate,
    so scoped observation never loses counts.
    """
    counts: dict[str, int] = {}
    token = _LOCAL.set(counts)
    try:
        yield counts
    finally:
        _LOCAL.reset(token)
        if counts:
            add(**counts)


def global_snapshot() -> dict[str, int]:
    """A consistent copy of the process-global totals."""
    with _global_lock:
        return dict(_global)


def reset_global() -> None:
    """Zero the process aggregate (test isolation only)."""
    with _global_lock:
        for name in _global:
            _global[name] = 0
