"""Staccato: probabilistic management of OCR data using an RDBMS.

A full reproduction of Kumar & Re (VLDB 2011).  The public API is organized
in subpackages:

* :mod:`repro.sfa`       -- stochastic finite automata (the OCR data model)
* :mod:`repro.automata`  -- regex / NFA / DFA / dictionary-trie machinery
* :mod:`repro.ocr`       -- a simulated OCR engine and synthetic corpora
* :mod:`repro.core`      -- the Staccato approximation (the contribution)
* :mod:`repro.query`     -- probabilistic query evaluation
* :mod:`repro.indexing`  -- dictionary-based inverted indexing over SFAs
* :mod:`repro.db`        -- the RDBMS integration (SQLite substrate)
* :mod:`repro.bench`     -- metrics, workloads and the experiment harness
"""

__version__ = "1.0.0"
