"""Probabilistic query processing over OCR representations."""

from .answers import Answer, rank_answers
from .eval_sfa import match_probability, match_probability_exact
from .eval_strings import match_probability_strings, matching_strings
from .like import REGEX_PREFIX, compile_like, escape_literal, like_to_pattern
from .spans import MatchSite, expected_match_count, expected_matches_at

__all__ = [
    "Answer",
    "rank_answers",
    "match_probability",
    "match_probability_exact",
    "match_probability_strings",
    "matching_strings",
    "REGEX_PREFIX",
    "compile_like",
    "escape_literal",
    "like_to_pattern",
    "MatchSite",
    "expected_match_count",
    "expected_matches_at",
]
