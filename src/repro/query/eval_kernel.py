"""Batched query evaluation over compiled SFA kernels.

Two evaluators for the same program (:class:`repro.sfa.kernel.CompiledKernel`):

* a **pure-python replay** that mirrors the dict evaluator of
  :mod:`repro.query.eval_sfa` step for step -- the always-on correctness
  reference.  It beats the dict DP by caching the DFA transition of each
  ``(state, symbol)`` pair once *per evaluator* (one filescan shares the
  cache across every line) instead of re-walking the symbol's characters
  per line;
* a **numpy lockstep batch** path that advances many lines through the
  DP at once: step ``t`` processes the ``t``-th topological node of every
  line in one set of vectorized operations, and the full
  ``(symbol, state)`` transition table is built up front by composing
  per-character transition columns, so the per-line python work drops to
  almost nothing.

Both paths are bit-for-bit equal to the dict evaluator: products are the
same IEEE multiplies, and sums into each (node, DFA-state) cell are
applied in the same order -- ``np.add.at`` accumulates repeated indices
sequentially, and per-cell insertion order is reconstructed from first
occurrences (``np.minimum.at``).  ``tests/test_kernel_equivalence.py``
pins this down property-style.

The numpy fast path is auto-detected at import; setting the
``REPRO_NO_NUMPY`` environment variable masks it (the CI matrix uses
this to exercise the pure-python fallback).
"""

from __future__ import annotations

import os
from typing import NamedTuple, Sequence

from ..automata import dfa as _dfa
from ..automata.dfa import Dfa
from ..sfa.kernel import CompiledKernel

if os.environ.get("REPRO_NO_NUMPY"):
    _np = None
else:
    try:
        import numpy as _np
    except ImportError:  # pragma: no cover - depends on the environment
        _np = None

HAVE_NUMPY = _np is not None

__all__ = ["HAVE_NUMPY", "LineResult", "KernelBatch", "KernelEvaluator"]

_DEAD = _dfa.DEAD
_ACCEPT = _dfa._ACCEPT
#: Sentinel for a not-yet-computed transition in the python row cache;
#: distinct from ``DEAD`` (-1), which is a legitimate transition.
_UNFILLED = -2


class LineResult(NamedTuple):
    """One line's evaluation: probability plus its exact DP counters."""

    probability: float
    dp_cells: int
    dp_transitions: int


class KernelBatch:
    """Query-independent lockstep layout over a fixed list of kernels.

    Building the layout -- a global symbol table plus the per-step
    concatenation of every line's program segment -- costs one pass over
    the kernels and is reusable for every query evaluated against the
    same batch (the bench harness and the engine cache it next to the
    kernels).  Without numpy only the kernel list is kept; the evaluator
    then falls back to the per-line python replay.
    """

    __slots__ = (
        "kernels",
        "num_lines",
        "max_steps",
        "sym_strings",
        "syms_flat",
        "probs_flat",
        "dst_flat",
        "back_flat",
        "step_bounds",
        "e_counts",
        "start_pos",
        "final_pos",
        "chars",
        "compose_plan",
    )

    def __init__(self, kernels: Sequence[CompiledKernel]) -> None:
        self.kernels = list(kernels)
        self.num_lines = len(self.kernels)
        self.max_steps = max(
            (k.num_nodes for k in self.kernels), default=0
        )
        self.sym_strings: list[str] = []
        if _np is None or not self.kernels:
            return
        np = _np
        gid: dict[str, int] = {}
        per_kernel = []
        for kernel in self.kernels:
            syms, probs, dst, _backward, flat_back = kernel.numpy_arrays(np)
            remap = np.empty(max(len(kernel.symbols), 1), dtype=np.int64)
            for i, sym in enumerate(kernel.symbols):
                g = gid.get(sym)
                if g is None:
                    g = gid[sym] = len(self.sym_strings)
                    self.sym_strings.append(sym)
                remap[i] = g
            gsyms = remap[syms] if len(syms) else syms
            per_kernel.append((gsyms, probs, dst, flat_back, kernel))
        # Step-major, line-minor concatenation of every program segment.
        syms_parts, probs_parts, dst_parts, back_parts = [], [], [], []
        bounds = [0]
        total = 0
        e_counts = np.zeros(
            (self.max_steps, self.num_lines), dtype=np.int64
        )
        for t in range(self.max_steps):
            for ln, (gsyms, probs, dst, flat_back, kernel) in enumerate(
                per_kernel
            ):
                offsets = kernel.node_offsets
                if t + 1 >= len(offsets):
                    continue
                lo, hi = offsets[t], offsets[t + 1]
                if hi == lo:
                    continue
                e_counts[t, ln] = hi - lo
                total += hi - lo
                syms_parts.append(gsyms[lo:hi])
                probs_parts.append(probs[lo:hi])
                dst_parts.append(dst[lo:hi])
                back_parts.append(flat_back[lo:hi])
            bounds.append(total)
        empty_i = np.zeros(0, dtype=np.int64)
        empty_f = np.zeros(0, dtype=np.float64)
        self.syms_flat = (
            np.concatenate(syms_parts) if syms_parts else empty_i
        )
        self.probs_flat = (
            np.concatenate(probs_parts) if probs_parts else empty_f
        )
        self.dst_flat = (
            np.concatenate(dst_parts) if dst_parts else empty_i
        )
        self.back_flat = (
            np.concatenate(back_parts) if back_parts else empty_f
        )
        self.step_bounds = bounds
        self.e_counts = e_counts
        self.start_pos = np.asarray(
            [k.start_pos for k in self.kernels], dtype=np.int64
        )
        self.final_pos = np.asarray(
            [k.final_pos for k in self.kernels], dtype=np.int64
        )
        # Symbol -> character-index decomposition, grouped by symbol
        # length: the query-independent half of the transition-table
        # build (the query-dependent half composes per-char columns).
        self.chars = sorted(
            {ch for sym in self.sym_strings for ch in sym}
        )
        char_id = {ch: i for i, ch in enumerate(self.chars)}
        lengths = np.asarray(
            [len(sym) for sym in self.sym_strings], dtype=np.int64
        )
        self.compose_plan = []
        for length in np.unique(lengths).tolist():
            idx = np.flatnonzero(lengths == length)
            char_idx = np.asarray(
                [
                    [char_id[ch] for ch in self.sym_strings[i]]
                    for i in idx.tolist()
                ],
                dtype=np.int64,
            )
            self.compose_plan.append((length, idx, char_idx))


class KernelEvaluator:
    """Evaluates compiled kernels against one query DFA.

    One instance per (query, scan): the transition caches are shared
    across every line the instance evaluates, which is a large part of
    the win over the per-line dict DP.

    Counter accounting is returned per line (:class:`LineResult`), never
    flushed to :mod:`repro.counters` here -- callers flush, so batched
    and per-line scans report identical totals.
    """

    def __init__(self, query: Dfa) -> None:
        self.query = query
        #: symbol string -> per-state transition row (python replay).
        self._rows: dict[str, list[int]] = {}

    # ------------------------------------------------------------------
    def evaluate(self, kernel: CompiledKernel) -> LineResult:
        """One line through the pure-python replay."""
        if self.query.match_anywhere:
            return self._python_absorbing(kernel)
        return self._python_general(kernel)

    def evaluate_batch(
        self,
        batch: KernelBatch | Sequence[CompiledKernel],
        use_numpy: bool | None = None,
    ) -> list[LineResult]:
        """Many lines at once; numpy lockstep when available.

        ``use_numpy=None`` auto-selects; ``False`` forces the python
        replay (the A/B tests compare both against the dict DP).
        """
        if use_numpy is None:
            use_numpy = HAVE_NUMPY
        if use_numpy and not HAVE_NUMPY:
            raise RuntimeError("numpy is not available in this process")
        if not isinstance(batch, KernelBatch):
            if use_numpy:
                batch = KernelBatch(batch)
            else:
                return [self.evaluate(kernel) for kernel in batch]
        if not batch.kernels:
            return []
        if not use_numpy:
            return [self.evaluate(kernel) for kernel in batch.kernels]
        return self._numpy_batch(batch)

    # ------------------------------------------------------------------
    # Pure-python replay (always available; the correctness reference)
    # ------------------------------------------------------------------
    def _row_for(self, sym: str) -> list[int]:
        row = self._rows.get(sym)
        if row is None:
            row = self._rows[sym] = []
        return row

    def _python_general(self, kernel: CompiledKernel) -> LineResult:
        query = self.query
        step_string = query.step_string
        symbols = kernel.symbols
        syms = kernel.step_syms
        probs = kernel.step_probs
        dsts = kernel.step_dst
        offsets = kernel.node_offsets
        rows_local: list[list[int] | None] = [None] * len(symbols)
        n = kernel.num_nodes
        masses: list[dict[int, float]] = [{} for _ in range(n)]
        masses[kernel.start_pos][query.start] = 1.0
        cells = 0
        transitions = 0
        for t in range(n):
            dist = masses[t]
            if not dist:
                continue
            cells += len(dist)
            lo, hi = offsets[t], offsets[t + 1]
            if lo == hi:
                continue
            items = dist.items()  # safe: destinations are strictly later nodes
            num_states = len(items)
            for j in range(lo, hi):
                transitions += num_states
                sid = syms[j]
                row = rows_local[sid]
                if row is None:
                    row = rows_local[sid] = self._row_for(symbols[sid])
                prob = probs[j]
                succ_dist = masses[dsts[j]]
                for state, mass in items:
                    try:
                        nxt = row[state]
                    except IndexError:
                        row.extend(
                            (_UNFILLED,) * (state + 1 - len(row))
                        )
                        nxt = _UNFILLED
                    if nxt == _UNFILLED:
                        nxt = row[state] = step_string(
                            state, symbols[sid]
                        )
                    if nxt == _DEAD:
                        continue
                    weight = mass * prob
                    succ_dist[nxt] = succ_dist.get(nxt, 0.0) + weight
        probability = sum(
            mass
            for state, mass in masses[kernel.final_pos].items()
            if query.is_accepting(state)
        )
        return LineResult(probability, cells, transitions)

    def _python_absorbing(self, kernel: CompiledKernel) -> LineResult:
        query = self.query
        if query.is_accepting(query.start):
            # Pattern matches the empty string: everything matches, and
            # the dict evaluator returns before counting anything.
            return LineResult(kernel.backward[kernel.start_pos], 0, 0)
        step_string = query.step_string
        symbols = kernel.symbols
        syms = kernel.step_syms
        probs = kernel.step_probs
        dsts = kernel.step_dst
        offsets = kernel.node_offsets
        backward = kernel.backward
        rows_local: list[list[int] | None] = [None] * len(symbols)
        n = kernel.num_nodes
        masses: list[dict[int, float]] = [{} for _ in range(n)]
        masses[kernel.start_pos][query.start] = 1.0
        matched = 0.0
        cells = 0
        transitions = 0
        for t in range(n):
            dist = masses[t]
            if not dist:
                continue
            cells += len(dist)
            lo, hi = offsets[t], offsets[t + 1]
            if lo == hi:
                continue
            items = dist.items()  # safe: destinations are strictly later nodes
            num_states = len(items)
            for j in range(lo, hi):
                transitions += num_states
                sid = syms[j]
                row = rows_local[sid]
                if row is None:
                    row = rows_local[sid] = self._row_for(symbols[sid])
                prob = probs[j]
                dst = dsts[j]
                succ_dist = masses[dst]
                back = backward[dst]
                for state, mass in items:
                    try:
                        nxt = row[state]
                    except IndexError:
                        row.extend(
                            (_UNFILLED,) * (state + 1 - len(row))
                        )
                        nxt = _UNFILLED
                    if nxt == _UNFILLED:
                        nxt = row[state] = step_string(
                            state, symbols[sid]
                        )
                    weight = mass * prob
                    # In match-anywhere mode the only accepting state is
                    # the absorbing _ACCEPT; DEAD never occurs.
                    if nxt == _ACCEPT:
                        matched += weight * back
                    else:
                        succ_dist[nxt] = succ_dist.get(nxt, 0.0) + weight
        return LineResult(matched, cells, transitions)

    # ------------------------------------------------------------------
    # Numpy lockstep batch
    # ------------------------------------------------------------------
    def _full_table(self, np, batch: KernelBatch):
        """The complete (symbol, state) transition matrix.

        Built by materializing per-character transition columns to a
        fixpoint of the lazy DFA, then composing them per symbol with
        vectorized gathers (the symbol -> character decomposition is
        precomputed on the batch).  ``DEAD`` is represented by an extra
        absorbing sentinel row (index ``num_states``) so compositions
        stay valid array indices; the returned matrix maps
        ``M[symbol_id, state] -> next state`` with ``dead_id`` standing
        in for ``DEAD``.  Transitions are exactly ``step_string``'s:
        integer function composition, no float involved.
        """
        query = self.query
        chars = batch.chars
        columns: dict[str, list[int]] = {ch: [] for ch in chars}
        filled = 0
        while True:
            num_states = query.num_states
            if filled == num_states:
                break
            for ch in chars:
                column = columns[ch]
                for state in range(filled, num_states):
                    column.append(query.step(state, ch))
            filled = num_states
        num_states = query.num_states
        dead_id = num_states
        if chars:
            col_mat = np.empty(
                (len(chars), num_states + 1), dtype=np.int64
            )
            for i, ch in enumerate(chars):
                col = np.asarray(columns[ch], dtype=np.int64)
                col[col == _DEAD] = dead_id
                col_mat[i, :num_states] = col
            col_mat[:, dead_id] = dead_id
        else:
            col_mat = np.full((1, num_states + 1), dead_id, np.int64)
        table = np.empty(
            (len(batch.sym_strings), num_states + 1), dtype=np.int64
        )
        for length, idx, char_idx in batch.compose_plan:
            if length == 0:  # step_string(state, "") is the identity
                table[idx] = np.arange(num_states + 1, dtype=np.int64)
                continue
            current = col_mat[char_idx[:, 0]]
            for pos in range(1, length):
                current = col_mat[char_idx[:, pos, None], current]
            table[idx] = current
        return table, dead_id

    def _numpy_batch(self, batch: KernelBatch) -> list[LineResult]:
        np = _np
        query = self.query
        match_anywhere = query.match_anywhere
        kernels = batch.kernels
        num_lines = batch.num_lines
        if match_anywhere and query.is_accepting(query.start):
            return [
                LineResult(k.backward[k.start_pos], 0, 0) for k in kernels
            ]
        table, dead_id = self._full_table(np, batch)
        mod = dead_id + 1  # states are < dead_id in every bucket
        line_ids = np.arange(num_lines, dtype=np.int64)
        max_steps = batch.max_steps
        final_pos = batch.final_pos
        bounds = batch.step_bounds
        e_counts = batch.e_counts

        # Pending contributions per destination topological position:
        # (line, state, weight) arrays appended in program order, which
        # is the dict evaluator's insertion order into each node's dict.
        pending: list[list] = [[] for _ in range(max_steps + 1)]
        start_pos = batch.start_pos
        init_state = np.full(num_lines, query.start, dtype=np.int64)
        init_mass = np.ones(num_lines, dtype=np.float64)
        if num_lines and int(start_pos.min()) == int(start_pos.max()):
            pending[int(start_pos[0])].append(
                (line_ids, init_state, init_mass)
            )
        else:  # degenerate kernels (tests): route per start position
            for pos in np.unique(start_pos).tolist():
                sel = start_pos == pos
                pending[pos].append(
                    (line_ids[sel], init_state[sel], init_mass[sel])
                )

        matched = [0.0] * num_lines  # absorbing accumulators (in order)
        finals: list[tuple[list[int], list[float]] | None] = (
            [None] * num_lines
        )
        cells_per_line = np.zeros(num_lines, dtype=np.int64)
        trans_per_line = np.zeros(num_lines, dtype=np.int64)
        num_buckets = num_lines * mod

        for t in range(max_steps):
            segments = pending[t]
            pending[t] = []
            if not segments:
                continue
            if len(segments) == 1:
                e_line, e_state, e_mass = segments[0]
            else:
                e_line = np.concatenate([s[0] for s in segments])
                e_state = np.concatenate([s[1] for s in segments])
                e_mass = np.concatenate([s[2] for s in segments])

            # Rebuild each line's mass dict for node t as dense buckets
            # keyed (line, state): per-cell sums accumulate in entry
            # order (np.add.at is unbuffered and sequential) and cell
            # order within a line is first-occurrence order -- both
            # exactly matching the dict evaluator.
            key = e_line * mod + e_state
            acc = np.zeros(num_buckets, dtype=np.float64)
            np.add.at(acc, key, e_mass)
            big = len(key)
            first = np.full(num_buckets, big, dtype=np.int64)
            np.minimum.at(
                first, key, np.arange(big, dtype=np.int64)
            )
            present = np.flatnonzero(first != big)
            order = np.lexsort((first[present], present // mod))
            bkeys = present[order]
            b_line = bkeys // mod
            b_state = bkeys % mod
            b_mass = acc[bkeys]

            cells_per_line += np.bincount(b_line, minlength=num_lines)

            # Lines whose final node is position t: capture their dist
            # (the general path's answer).  The buckets stay in the work
            # set -- a final node normally has no program steps, and if
            # a degenerate kernel gives it some, the dict DP processes
            # them too.
            at_final = final_pos[b_line] == t
            if at_final.any():
                f_line = b_line[at_final]
                f_state = b_state[at_final]
                f_mass = b_mass[at_final]
                # b_line is line-major, so each captured line is one
                # contiguous run (in its dict-insertion order).
                run_bounds = np.flatnonzero(np.diff(f_line)) + 1
                start = 0
                for end in list(run_bounds.tolist()) + [len(f_line)]:
                    if end == start:
                        continue
                    finals[int(f_line[start])] = (
                        f_state[start:end].tolist(),
                        f_mass[start:end].tolist(),
                    )
                    start = end

            # Expand to one entry per (line, emission, state), emission-
            # major / state-minor: the dict evaluator's inner order.
            p_arr = np.bincount(b_line, minlength=num_lines)
            e_arr = e_counts[t]
            counts = e_arr * p_arr
            trans_per_line += counts
            total = int(counts.sum())
            if total == 0:
                continue
            sl = slice(bounds[t], bounds[t + 1])
            syms_cat = batch.syms_flat[sl]
            probs_cat = batch.probs_flat[sl]
            dst_cat = batch.dst_flat[sl]

            rep_p = np.repeat(p_arr, e_arr)
            sym_rep = np.repeat(syms_cat, rep_p)
            prob_rep = np.repeat(probs_cat, rep_p)
            dst_rep = np.repeat(dst_cat, rep_p)
            line_rep = np.repeat(line_ids, counts)
            bucket_base = np.concatenate(([0], np.cumsum(p_arr)[:-1]))
            entry_start = np.concatenate(([0], np.cumsum(counts)[:-1]))
            j_local = np.arange(total, dtype=np.int64) - np.repeat(
                entry_start, counts
            )
            p_rep = np.repeat(p_arr, counts)
            bidx = np.repeat(bucket_base, counts) + (j_local % p_rep)

            nxt = table[sym_rep, b_state[bidx]]
            weights = b_mass[bidx] * prob_rep

            if match_anywhere:
                accepted = nxt == _ACCEPT
                if accepted.any():
                    back_rep = np.repeat(batch.back_flat[sl], rep_p)
                    contrib = weights[accepted] * back_rep[accepted]
                    # Scalar accumulation in entry order: matched is a
                    # running python-float sum in the dict evaluator.
                    for ln, value in zip(
                        line_rep[accepted].tolist(), contrib.tolist()
                    ):
                        matched[ln] += value
                keep = ~accepted
            else:
                keep = nxt != dead_id
            if keep.all():
                k_line, k_nxt, k_w, k_dst = (
                    line_rep,
                    nxt,
                    weights,
                    dst_rep,
                )
            else:
                k_line = line_rep[keep]
                k_nxt = nxt[keep]
                k_w = weights[keep]
                k_dst = dst_rep[keep]
            if len(k_line) == 0:
                continue
            lo_dst = int(k_dst.min())
            hi_dst = int(k_dst.max())
            if lo_dst == hi_dst:
                pending[lo_dst].append((k_line, k_nxt, k_w))
            else:
                for d in np.unique(k_dst).tolist():
                    sel = k_dst == d
                    pending[d].append(
                        (k_line[sel], k_nxt[sel], k_w[sel])
                    )

        results = []
        if match_anywhere:
            for ln in range(num_lines):
                results.append(
                    LineResult(
                        matched[ln],
                        int(cells_per_line[ln]),
                        int(trans_per_line[ln]),
                    )
                )
        else:
            is_accepting = query.is_accepting
            for ln in range(num_lines):
                captured = finals[ln]
                if captured is None:
                    probability = sum(())  # dict DP's empty sum: int 0
                else:
                    states, ms = captured
                    probability = sum(
                        mass
                        for state, mass in zip(states, ms)
                        if is_accepting(state)
                    )
                results.append(
                    LineResult(
                        probability,
                        int(cells_per_line[ln]),
                        int(trans_per_line[ln]),
                    )
                )
        return results
