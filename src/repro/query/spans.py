"""Non-Boolean queries: where do matches occur, and how many are expected?

Paper Section 2.2 notes that beyond Boolean LIKE predicates, "Staccato
handles non-Boolean queries using algorithms in Kimelfeld and Re [34]" --
transducer queries whose output is the *locations* of matches over the
uncertain document.  This module implements the two primitives
applications actually consume:

* :func:`expected_matches_at` -- for every SFA location (node, offset),
  the expected number of pattern occurrences *starting* there.  This is
  the probabilistic analogue of a posting list and is what an extraction
  pipeline aggregates.
* :func:`expected_match_count` -- the expected total number of
  occurrences in the line (by linearity, the sum of the above; compare
  with the Boolean ``match_probability``, which is P[at least one]).

Both are exact dynamic programs under the unique-paths property.
"""

from __future__ import annotations

from ..automata import dfa
from ..automata.dfa import Dfa
from ..sfa.model import Sfa
from ..sfa.ops import backward_mass, forward_mass, topological_order

__all__ = ["MatchSite", "expected_matches_at", "expected_match_count"]

MatchSite = tuple[int, int, int, int]  # (u, v, rank, offset)


def expected_matches_at(
    sfa: Sfa, query: Dfa
) -> dict[MatchSite, float]:
    """Expected number of occurrences starting at each location.

    ``query`` must be an *exact-match* DFA (``match_anywhere=False``): an
    occurrence at a location means the pattern matches the emitted text
    beginning exactly there.  A location is ``(u, v, rank, offset)`` --
    the same addressing the inverted index uses for postings.

    The DP runs one exact-DFA instance from every offset of every stored
    string; runs that survive an edge continue into every successor
    emission weighted by its probability, and whenever a run is in an
    accepting state the (start-location, mass) pair is credited.  Because
    expectation is linear, overlapping occurrences need no inclusion-
    exclusion -- which is exactly why this query is tractable while
    "P[at least one match]" needs the Boolean evaluator.
    """
    if query.match_anywhere:
        raise ValueError(
            "expected_matches_at needs an exact-match DFA; compile the "
            "pattern with match_anywhere=False"
        )
    forward = forward_mass(sfa)
    backward = backward_mass(sfa)
    expected: dict[MatchSite, float] = {}
    # live[node]: dict[(site, state)] -> mass of paths carrying that run.
    live: dict[int, dict[tuple[MatchSite, int], float]] = {
        node: {} for node in sfa.nodes
    }
    for node in topological_order(sfa):
        incoming = live[node]
        for succ in set(sfa.successors(node)):
            for rank, emission in enumerate(sfa.emissions(node, succ)):
                text = emission.string
                weight = emission.prob
                # Continue runs arriving from predecessor edges.
                for (site, state), mass in incoming.items():
                    current = state
                    carried = mass * weight
                    dead = False
                    for ch in text:
                        current = query.step(current, ch)
                        if current == dfa.DEAD:
                            dead = True
                            break
                        if query.is_accepting(current):
                            expected[site] = (
                                expected.get(site, 0.0) + carried * backward[succ]
                            )
                    if not dead:
                        key = (site, current)
                        live[succ][key] = live[succ].get(key, 0.0) + carried
                # Start fresh runs at every offset of this string.
                path_mass = forward[node] * weight
                for offset in range(len(text)):
                    site = (node, succ, rank, offset)
                    current = query.start
                    dead = False
                    for ch in text[offset:]:
                        current = query.step(current, ch)
                        if current == dfa.DEAD:
                            dead = True
                            break
                        if query.is_accepting(current):
                            expected[site] = (
                                expected.get(site, 0.0)
                                + path_mass * backward[succ]
                            )
                    if not dead:
                        key = (site, current)
                        live[succ][key] = live[succ].get(key, 0.0) + path_mass
    return expected


def expected_match_count(sfa: Sfa, query: Dfa) -> float:
    """Expected total number of occurrences in the line (linearity)."""
    return sum(expected_matches_at(sfa, query).values())
