"""Probabilistic query evaluation over SFAs (paper Section 2.2).

``Pr[q] = sum over strings x accepted by the query DFA of Pr(x)`` is
computed without enumeration by the dynamic program of Re et al. [45]:
propagate, in topological order, the probability mass of every (SFA node,
DFA state) pair.  The running time is linear in the SFA and (at worst)
cubic in the number of DFA states -- the ``l*q*k + q^3(m-1)`` /
``l*q*|Sigma| + q^3(l-1)`` costs of the paper's Table 1.

The same evaluator serves the FullSFA baseline (character emissions) and
Staccato chunk graphs (string emissions); only the data differs, exactly
as in the paper where both data and query are transducers.

One optimization matters in practice: the match-anywhere DFA has an
*absorbing* accept state, so once a path's mass reaches it the rest of its
suffix mass is fully matched.  We fold that mass out immediately using the
precomputed backward masses instead of dragging it through the DP.
"""

from __future__ import annotations

from .. import counters
from ..automata import dfa
from ..automata.dfa import Dfa
from ..sfa.model import Sfa
from ..sfa.ops import backward_mass, topological_order

__all__ = ["match_probability", "match_probability_exact"]


def match_probability(sfa: Sfa, query: Dfa) -> float:
    """Probability that a string emitted by ``sfa`` satisfies ``query``.

    Exact under the unique-paths property (each string = one path, so path
    probabilities sum to string probabilities).
    """
    if query.match_anywhere:
        return _match_probability_absorbing(sfa, query)
    return _match_probability_general(sfa, query)


# Backwards-compatible alias used by tests that force the general path.
def match_probability_exact(sfa: Sfa, query: Dfa) -> float:
    """The general DP without the absorbing-accept shortcut."""
    return _match_probability_general(sfa, query)


def _match_probability_general(sfa: Sfa, query: Dfa) -> float:
    # The counters accumulate in plain locals; one counters.add() flush
    # per evaluation keeps the instrumented inner loop allocation-free.
    cells = 0
    transitions = 0
    masses: dict[int, dict[int, float]] = {node: {} for node in sfa.nodes}
    masses[sfa.start][query.start] = 1.0
    for node in topological_order(sfa):
        dist = masses[node]
        if not dist:
            continue
        cells += len(dist)
        for succ in set(sfa.successors(node)):
            succ_dist = masses[succ]
            for emission in sfa.emissions(node, succ):
                transitions += len(dist)
                for state, mass in dist.items():
                    nxt = query.step_string(state, emission.string)
                    if nxt == dfa.DEAD:
                        continue
                    weight = mass * emission.prob
                    succ_dist[nxt] = succ_dist.get(nxt, 0.0) + weight
    counters.add(dp_cells=cells, dp_transitions=transitions)
    return sum(
        mass
        for state, mass in masses[sfa.final].items()
        if query.is_accepting(state)
    )


def _match_probability_absorbing(sfa: Sfa, query: Dfa) -> float:
    """Match-anywhere DP: accepted mass is folded out through the backward
    masses the moment the absorbing accept state is reached."""
    backward = backward_mass(sfa)
    matched = 0.0
    cells = 0
    transitions = 0
    masses: dict[int, dict[int, float]] = {node: {} for node in sfa.nodes}
    start_state = query.start
    if query.is_accepting(start_state):
        # Pattern matches the empty string: everything matches.
        return backward[sfa.start]
    masses[sfa.start][start_state] = 1.0
    for node in topological_order(sfa):
        dist = masses[node]
        if not dist:
            continue
        cells += len(dist)
        for succ in set(sfa.successors(node)):
            succ_dist = masses[succ]
            for emission in sfa.emissions(node, succ):
                transitions += len(dist)
                for state, mass in dist.items():
                    nxt = query.step_string(state, emission.string)
                    weight = mass * emission.prob
                    if query.is_accepting(nxt):
                        matched += weight * backward[succ]
                    else:
                        succ_dist[nxt] = succ_dist.get(nxt, 0.0) + weight
    counters.add(dp_cells=cells, dp_transitions=transitions)
    return matched
