"""Query evaluation over the k-MAP representation.

Each stored string of a line is a disjoint probabilistic event, so the
probability that the line matches is simply the sum of the probabilities
of the stored strings the DFA accepts (paper Section 3, "Baseline
Approaches").
"""

from __future__ import annotations

from typing import Iterable

from .. import counters
from ..automata.dfa import Dfa

__all__ = ["match_probability_strings", "matching_strings"]


def match_probability_strings(
    strings: Iterable[tuple[str, float]], query: Dfa
) -> float:
    """Summed probability of the stored strings accepted by ``query``."""
    total = 0.0
    evaluated = 0
    for text, prob in strings:
        evaluated += 1
        if query.accepts(text):
            total += prob
    counters.add(strings_evaluated=evaluated)
    return total


def matching_strings(
    strings: Iterable[tuple[str, float]], query: Dfa
) -> list[tuple[str, float]]:
    """The accepted subset, in storage (rank) order."""
    return [(text, prob) for text, prob in strings if query.accepts(text)]
