"""Cross-request memoization of kernel evaluations.

A filescan's unit of work -- evaluating one compiled kernel against one
query automaton -- is a pure function of ``(kernel content, query)``.
The memo caches its result keyed on the kernel's content fingerprint
(:func:`repro.sfa.kernel.kernel_fingerprint`) and the query's pattern
fingerprint, so repeated probes of hot chunks skip the DP entirely.

Although content-addressed keys can never serve a *wrong* answer, the
memo still honours the service's write model: :meth:`invalidate` bumps a
generation clock exactly like :class:`repro.service.cache.QueryCache`,
and :meth:`put` is generation-fenced so an entry computed against
pre-ingest data cannot land after the ingest's invalidation.  The engine
invalidates its memo on every ingest batch; the sharded service gives
each shard its own memo instance, so the existing per-shard generation
clocks carry over unchanged.

Hits and misses are reported both through :meth:`stats` (the ``/stats``
memo block) and the process-wide ``memo_hits``/``memo_misses`` engine
counters (``/metrics``).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

__all__ = ["KernelMemo", "query_fingerprint"]


def query_fingerprint(pattern: str) -> str:
    """Content digest of a query automaton.

    The DFA is fully determined by its LIKE/regex pattern (compilation
    is deterministic), so hashing the pattern hashes the automaton.
    """
    return hashlib.sha256(pattern.encode("utf-8")).hexdigest()[:32]


class KernelMemo:
    """Bounded LRU of (kernel fingerprint, query fingerprint) -> result.

    Values are ``(probability, dp_cells, dp_transitions)`` triples --
    the full :class:`repro.query.eval_kernel.LineResult` payload.  All
    operations take the internal lock; one instance is shared by every
    connection serving a shard.  ``capacity <= 0`` disables the memo.
    """

    def __init__(self, capacity: int = 65536) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._data: OrderedDict[
            tuple[str, str], tuple[float, int, int]
        ] = OrderedDict()
        self._generation = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def generation(self) -> int:
        """Bumped by every invalidation; snapshot before evaluating."""
        with self._lock:
            return self._generation

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(
        self, kernel_fp: str, query_fp: str
    ) -> tuple[float, int, int] | None:
        """The memoized result, marking it recently used; None on miss."""
        key = (kernel_fp, query_fp)
        with self._lock:
            value = self._data.get(key)
            if value is not None:
                self._data.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
            return value

    def put(
        self,
        kernel_fp: str,
        query_fp: str,
        value: tuple[float, int, int],
        generation: int | None = None,
    ) -> None:
        """Store one result; a no-op if an invalidation raced the compute."""
        if self.capacity <= 0:
            return
        with self._lock:
            if generation is not None and generation != self._generation:
                return
            self._data[(kernel_fp, query_fp)] = value
            self._data.move_to_end((kernel_fp, query_fp))
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def invalidate(self) -> None:
        """Drop everything and advance the generation clock (per ingest)."""
        with self._lock:
            self._data.clear()
            self._generation += 1
            self.invalidations += 1

    def stats(self) -> dict[str, float | int]:
        """Snapshot for the ``/stats`` memo block."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "size": len(self._data),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / lookups if lookups else 0.0,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "generation": self._generation,
            }
