"""Probabilistic answers: ranking and the NumAns cutoff.

A single-table select-project query over OCR data produces a
*probabilistic relation*: one row per line with the probability the line
matches (paper Sections 1-2).  The evaluation ranks rows by probability
and returns the top ``NumAns`` (the paper sets NumAns = 100, larger than
every ground-truth answer set; Appendix H.3 studies its sensitivity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["Answer", "rank_answers"]


@dataclass(frozen=True, slots=True)
class Answer:
    """One row of the probabilistic result relation."""

    line_id: int
    doc_id: int
    line_no: int
    probability: float

    def key(self) -> int:
        """The stable identity of this row (its line id)."""
        return self.line_id


def rank_answers(
    answers: Iterable[Answer],
    num_ans: int | None = 100,
    min_probability: float = 0.0,
) -> list[Answer]:
    """Rank by descending probability, drop non-matches, cut at NumAns.

    Ties are broken by line id for determinism.  ``num_ans=None`` returns
    every matching row (used when a downstream probabilistic RDBMS ingests
    the full relation).
    """
    kept = [a for a in answers if a.probability > min_probability]
    kept.sort(key=lambda a: (-a.probability, a.line_id))
    if num_ans is None:
        return kept
    return kept[:num_ans]
