"""SQL LIKE translation (paper Sections 1-2).

Staccato exposes OCR data through the ordinary ``LIKE`` predicate:
``DocData LIKE '%Ford%'``.  ``%`` matches any (possibly empty) substring
and ``_`` any single character; everything else is literal.  We translate
to the paper's pattern language (:mod:`repro.automata.regex`):
``% -> (\\x)*``, ``_ -> \\x``, with metacharacters escaped.  The common
``'%p%'`` shape is recognized and compiled to the efficient
match-anywhere DFA instead of carrying explicit ``(\\x)*`` wrappers.

Beyond standard SQL, a pattern may opt into the paper's full regex
language with the ``REGEX:`` prefix (used by the evaluation's regex
queries, e.g. ``REGEX:U.S.C. 2\\d\\d\\d`` -- these are implicitly
match-anywhere, like all queries in the paper's workload).
"""

from __future__ import annotations

from ..automata.dfa import Dfa, dfa_for_pattern

__all__ = ["escape_literal", "like_to_pattern", "compile_like"]

_METACHARACTERS = set("()|*\\")
REGEX_PREFIX = "REGEX:"


def escape_literal(text: str) -> str:
    """Escape pattern metacharacters so ``text`` matches literally."""
    return "".join(f"\\{ch}" if ch in _METACHARACTERS else ch for ch in text)


def like_to_pattern(like: str) -> tuple[str, bool]:
    """Translate a LIKE pattern to ``(pattern, match_anywhere)``.

    ``match_anywhere=True`` means the pattern should be compiled with the
    substring (``Sigma* L Sigma*``) semantics; in that case leading and
    trailing ``%`` have already been stripped.
    """
    if like.startswith(REGEX_PREFIX):
        return like[len(REGEX_PREFIX):], True
    body = like
    anywhere = False
    if body.startswith("%") and body.endswith("%") and len(body) >= 2:
        anywhere = True
        body = body[1:-1]
    parts: list[str] = []
    for ch in body:
        if ch == "%":
            parts.append("(\\x)*")
        elif ch == "_":
            parts.append("\\x")
        else:
            parts.append(escape_literal(ch))
    pattern = "".join(parts)
    if not anywhere:
        # Whole-string LIKE semantics: no implicit wildcards at the ends.
        return pattern, False
    return pattern, True


def compile_like(like: str) -> Dfa:
    """Compile a LIKE pattern (or ``REGEX:`` pattern) to its query DFA."""
    pattern, anywhere = like_to_pattern(like)
    return dfa_for_pattern(pattern, match_anywhere=anywhere)
