"""Compiled SFA kernels: the evaluation DP lowered to flat arrays.

:mod:`repro.query.eval_sfa` evaluates a query DFA against an SFA by
walking the graph's dicts -- successor lists, per-edge emission lists,
per-node mass dicts.  That shape is flexible but slow: every filescan
re-discovers the same topological order, re-hashes the same emission
strings and re-walks the DFA character by character.

A :class:`CompiledKernel` is the same DP *program* precomputed once, at
construction time:

* nodes renumbered by topological position (``0 .. num_nodes-1``);
* emission strings compacted into a per-line symbol table, so the
  evaluator can cache DFA transitions per ``(state, symbol)`` instead of
  stepping character by character;
* the transition program flattened into parallel ``(symbol, prob,
  destination)`` arrays recorded in **exactly** the iteration order of
  the dict evaluator (topological order, then ``set(successors)``
  order, then emission order), so a replay performs bit-for-bit the
  same float operations;
* the backward masses of :func:`repro.sfa.ops.backward_mass`
  precomputed per node, for the absorbing-accept shortcut.

The kernel serializes to a versioned blob (``KRN1``) stored alongside
the ``SFA1`` blobs; its content fingerprint keys the cross-request
memo in :mod:`repro.query.memo`.
"""

from __future__ import annotations

import hashlib
import struct

from .model import Sfa, SfaError
from .ops import backward_mass, topological_order

__all__ = [
    "KERNEL_VERSION",
    "CompiledKernel",
    "compile_kernel",
    "kernel_to_bytes",
    "kernel_from_bytes",
    "kernel_fingerprint",
]

#: Bump when the blob layout or the compiled program semantics change;
#: loaders recompile from the ``SFA1`` blob on mismatch.
KERNEL_VERSION = 1

_MAGIC = b"KRN1"
_HEADER = struct.Struct("<4sHIIIII")  # magic, version, nodes, syms, steps, start, final
_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")
_STEP = struct.Struct("<IId")  # sym, dst, prob


class CompiledKernel:
    """One SFA's evaluation program in flat, replayable form.

    ``node_offsets[t] : node_offsets[t+1]`` bounds the program steps of
    the node at topological position ``t``; each step ``j`` emits symbol
    ``symbols[step_syms[j]]`` with probability ``step_probs[j]`` into the
    node at position ``step_dst[j]``.
    """

    __slots__ = (
        "num_nodes",
        "start_pos",
        "final_pos",
        "symbols",
        "node_offsets",
        "step_syms",
        "step_probs",
        "step_dst",
        "backward",
        "_fingerprint",
        "_np_arrays",
    )

    def __init__(
        self,
        num_nodes: int,
        start_pos: int,
        final_pos: int,
        symbols: list[str],
        node_offsets: list[int],
        step_syms: list[int],
        step_probs: list[float],
        step_dst: list[int],
        backward: list[float],
    ) -> None:
        self.num_nodes = num_nodes
        self.start_pos = start_pos
        self.final_pos = final_pos
        self.symbols = symbols
        self.node_offsets = node_offsets
        self.step_syms = step_syms
        self.step_probs = step_probs
        self.step_dst = step_dst
        self.backward = backward
        self._fingerprint: str | None = None
        self._np_arrays = None

    # ------------------------------------------------------------------
    @property
    def num_steps(self) -> int:
        """Total program steps (one per stored emission)."""
        return len(self.step_syms)

    @property
    def fingerprint(self) -> str:
        """Content digest of the serialized kernel (memo key half)."""
        if self._fingerprint is None:
            self._fingerprint = kernel_fingerprint(self)
        return self._fingerprint

    def numpy_arrays(self, np):
        """The program as numpy arrays (built once, cached).

        Returns ``(syms, probs, dst, backward, flat_back)`` where
        ``flat_back[j] = backward[step_dst[j]]`` pre-gathers the
        absorbing shortcut's per-step backward mass.
        """
        if self._np_arrays is None:
            syms = np.asarray(self.step_syms, dtype=np.int64)
            probs = np.asarray(self.step_probs, dtype=np.float64)
            dst = np.asarray(self.step_dst, dtype=np.int64)
            backward = np.asarray(self.backward, dtype=np.float64)
            flat_back = (
                backward[dst] if len(self.step_dst) else backward[:0]
            )
            self._np_arrays = (syms, probs, dst, backward, flat_back)
        return self._np_arrays

    def __repr__(self) -> str:
        return (
            f"CompiledKernel(nodes={self.num_nodes}, "
            f"steps={self.num_steps}, symbols={len(self.symbols)})"
        )


def compile_kernel(sfa: Sfa) -> CompiledKernel:
    """Lower ``sfa`` into its compiled kernel.

    The program is recorded in the *exact* iteration order of the dict
    evaluator (:func:`repro.query.eval_sfa.match_probability`) --
    topological order, ``set(successors)`` order, emission order -- so
    replaying it performs the identical float operation sequence.
    """
    order = topological_order(sfa)
    pos = {node: i for i, node in enumerate(order)}
    symbols: list[str] = []
    sym_ids: dict[str, int] = {}
    node_offsets = [0]
    step_syms: list[int] = []
    step_probs: list[float] = []
    step_dst: list[int] = []
    for node in order:
        # set(...) mirrors the dict evaluator's successor iteration; the
        # resulting order is deterministic for identical successor lists
        # (small-int hashing), which the A/B equivalence tests pin down.
        for succ in set(sfa.successors(node)):
            dst = pos[succ]
            for emission in sfa.emissions(node, succ):
                sid = sym_ids.get(emission.string)
                if sid is None:
                    sid = sym_ids[emission.string] = len(symbols)
                    symbols.append(emission.string)
                step_syms.append(sid)
                step_probs.append(emission.prob)
                step_dst.append(dst)
        node_offsets.append(len(step_syms))
    back = backward_mass(sfa)
    return CompiledKernel(
        num_nodes=len(order),
        start_pos=pos[sfa.start],
        final_pos=pos[sfa.final],
        symbols=symbols,
        node_offsets=node_offsets,
        step_syms=step_syms,
        step_probs=step_probs,
        step_dst=step_dst,
        backward=[back[node] for node in order],
    )


# ----------------------------------------------------------------------
# Blob codec (versioned; loaders recompile on any mismatch)
# ----------------------------------------------------------------------
def kernel_to_bytes(kernel: CompiledKernel) -> bytes:
    """Serialize a kernel to its ``KRN1`` blob."""
    parts = [
        _HEADER.pack(
            _MAGIC,
            KERNEL_VERSION,
            kernel.num_nodes,
            len(kernel.symbols),
            kernel.num_steps,
            kernel.start_pos,
            kernel.final_pos,
        )
    ]
    parts.extend(_U32.pack(off) for off in kernel.node_offsets)
    parts.extend(_F64.pack(mass) for mass in kernel.backward)
    for sym in kernel.symbols:
        raw = sym.encode("utf-8")
        parts.append(_U32.pack(len(raw)))
        parts.append(raw)
    parts.extend(
        _STEP.pack(sym, dst, prob)
        for sym, dst, prob in zip(
            kernel.step_syms, kernel.step_dst, kernel.step_probs
        )
    )
    return b"".join(parts)


def kernel_from_bytes(blob: bytes) -> CompiledKernel:
    """Deserialize a ``KRN1`` blob (raises :class:`SfaError` if not one)."""
    if len(blob) < _HEADER.size:
        raise SfaError("truncated kernel blob")
    magic, version, n_nodes, n_syms, n_steps, start, final = _HEADER.unpack_from(
        blob, 0
    )
    if magic != _MAGIC:
        raise SfaError(f"bad kernel blob magic {magic!r}")
    if version != KERNEL_VERSION:
        raise SfaError(
            f"kernel blob version {version} != supported {KERNEL_VERSION}"
        )
    offset = _HEADER.size
    node_offsets = list(
        struct.unpack_from(f"<{n_nodes + 1}I", blob, offset)
    )
    offset += (n_nodes + 1) * _U32.size
    backward = list(struct.unpack_from(f"<{n_nodes}d", blob, offset))
    offset += n_nodes * _F64.size
    symbols = []
    for _ in range(n_syms):
        (byte_len,) = _U32.unpack_from(blob, offset)
        offset += _U32.size
        symbols.append(blob[offset : offset + byte_len].decode("utf-8"))
        offset += byte_len
    step_syms: list[int] = []
    step_probs: list[float] = []
    step_dst: list[int] = []
    for _ in range(n_steps):
        sym, dst, prob = _STEP.unpack_from(blob, offset)
        offset += _STEP.size
        step_syms.append(sym)
        step_dst.append(dst)
        step_probs.append(prob)
    if offset != len(blob):
        raise SfaError("trailing bytes in kernel blob")
    if node_offsets[0] != 0 or node_offsets[-1] != n_steps:
        raise SfaError("kernel blob offsets are inconsistent")
    return CompiledKernel(
        num_nodes=n_nodes,
        start_pos=start,
        final_pos=final,
        symbols=symbols,
        node_offsets=node_offsets,
        step_syms=step_syms,
        step_probs=step_probs,
        step_dst=step_dst,
        backward=backward,
    )


def kernel_fingerprint(kernel: CompiledKernel) -> str:
    """Stable content digest of the kernel (hex, 32 chars).

    Computed over the serialized blob, so two kernels compiled from
    structurally identical SFAs -- in the same or different processes --
    share a fingerprint, and any change to the program (probabilities,
    symbols, topology, blob version) changes it.
    """
    return hashlib.sha256(kernel_to_bytes(kernel)).hexdigest()[:32]
