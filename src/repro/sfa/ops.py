"""Graph and probability operations over SFAs.

These are the primitives the rest of the system is built from: topological
order, reachability, the forward/backward sum-product masses used both for
query probabilities and for Staccato's incremental candidate scoring
(paper Section 3.1), validation of the SFA structural invariants, the
unique-paths check of Section 2.2, and the KL-divergence material from
Appendix C.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterator

from .model import Sfa, SfaError

__all__ = [
    "topological_order",
    "validate",
    "is_valid",
    "ancestors",
    "descendants",
    "forward_mass",
    "backward_mass",
    "total_mass",
    "string_count",
    "enumerate_strings",
    "string_distribution",
    "has_unique_paths",
    "kl_divergence",
    "retained_mass",
]


def topological_order(sfa: Sfa) -> list[int]:
    """Return the nodes of ``sfa`` in a topological order.

    Raises :class:`SfaError` if the graph contains a cycle.  The order is
    deterministic (Kahn's algorithm with a sorted frontier).
    """
    in_deg = {node: sfa.in_degree(node) for node in sfa.nodes}
    frontier = sorted(node for node, deg in in_deg.items() if deg == 0)
    order: list[int] = []
    queue = deque(frontier)
    while queue:
        node = queue.popleft()
        order.append(node)
        for succ in sorted(sfa.succ(node)):
            in_deg[succ] -= 1
            if in_deg[succ] == 0:
                queue.append(succ)
    if len(order) != sfa.num_nodes:
        raise SfaError("SFA graph contains a cycle")
    return order


def validate(sfa: Sfa, require_stochastic: bool = False) -> None:
    """Check the SFA structural invariants of paper Section 2.2.

    * the graph is a DAG;
    * ``start`` is the unique source and ``final`` the unique sink;
    * every node lies on some start-to-final path;
    * when ``require_stochastic``, the outgoing emission probabilities of
      every non-final node sum to 1 (the original OCR output satisfies
      this; approximations generally do not).

    Raises :class:`SfaError` on the first violation.
    """
    order = topological_order(sfa)  # raises on cycles
    for node in order:
        if node != sfa.start and sfa.in_degree(node) == 0:
            raise SfaError(f"node {node} is a source but is not the start node")
        if node != sfa.final and sfa.out_degree(node) == 0:
            raise SfaError(f"node {node} is a sink but is not the final node")
    reachable = descendants(sfa, sfa.start) | {sfa.start}
    if set(sfa.nodes) - reachable:
        raise SfaError("some nodes are unreachable from the start node")
    co_reachable = ancestors(sfa, sfa.final) | {sfa.final}
    if set(sfa.nodes) - co_reachable:
        raise SfaError("some nodes cannot reach the final node")
    if require_stochastic:
        for node in sfa.nodes:
            if node == sfa.final:
                continue
            out = sum(sfa.edge_mass(node, succ) for succ in set(sfa.successors(node)))
            if abs(out - 1.0) > 1e-6:
                raise SfaError(
                    f"outgoing probability of node {node} is {out}, expected 1.0"
                )


def is_valid(sfa: Sfa, require_stochastic: bool = False) -> bool:
    """Boolean form of :func:`validate`."""
    try:
        validate(sfa, require_stochastic=require_stochastic)
    except SfaError:
        return False
    return True


def _reach(sfa: Sfa, sources: set[int], forward: bool) -> set[int]:
    step = sfa.succ if forward else sfa.pred
    seen: set[int] = set()
    queue = list(sources)
    while queue:
        node = queue.pop()
        for nxt in step(node):
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return seen


def descendants(sfa: Sfa, node: int) -> set[int]:
    """Nodes strictly reachable from ``node``."""
    return _reach(sfa, {node}, forward=True)


def ancestors(sfa: Sfa, node: int) -> set[int]:
    """Nodes that strictly reach ``node``."""
    return _reach(sfa, {node}, forward=False)


def forward_mass(sfa: Sfa) -> dict[int, float]:
    """Sum-product forward pass: ``F[v]`` = total probability of all labeled
    paths from the start node to ``v`` (``F[start] = 1``)."""
    mass = {node: 0.0 for node in sfa.nodes}
    mass[sfa.start] = 1.0
    for node in topological_order(sfa):
        if mass[node] == 0.0:
            continue
        for succ in set(sfa.successors(node)):
            mass[succ] += mass[node] * sfa.edge_mass(node, succ)
    return mass


def backward_mass(sfa: Sfa) -> dict[int, float]:
    """Sum-product backward pass: ``B[v]`` = total probability of all labeled
    paths from ``v`` to the final node (``B[final] = 1``)."""
    mass = {node: 0.0 for node in sfa.nodes}
    mass[sfa.final] = 1.0
    for node in reversed(topological_order(sfa)):
        if mass[node] == 0.0:
            continue
        for pred in set(sfa.predecessors(node)):
            mass[pred] += mass[node] * sfa.edge_mass(pred, node)
    return mass


def total_mass(sfa: Sfa) -> float:
    """Total probability mass retained by the SFA.

    Equals 1 for the raw OCR output; less than 1 after k-MAP or Staccato
    pruning (the quantity maximized by paper Proposition 3.1).
    """
    return forward_mass(sfa)[sfa.final]


def string_count(sfa: Sfa) -> int:
    """The number of labeled start-to-final paths (stored strings).

    Exact big-integer DP; this is the quantity that grows as ``k**m`` for a
    Staccato representation (paper Figure 2) and drives the Figure 5
    direct-indexing blowup.
    """
    count = {node: 0 for node in sfa.nodes}
    count[sfa.start] = 1
    for node in topological_order(sfa):
        if count[node] == 0:
            continue
        for succ in set(sfa.successors(node)):
            count[succ] += count[node] * len(sfa.emissions(node, succ))
    return count[sfa.final]


def enumerate_strings(
    sfa: Sfa, limit: int | None = None
) -> Iterator[tuple[str, float]]:
    """Yield every ``(string, probability)`` pair the SFA can emit.

    Depth-first, so memory stays proportional to the longest path.  Strings
    produced by several paths (a unique-paths violation) are yielded once
    per path; use :func:`string_distribution` to aggregate.  ``limit`` caps
    the number of results for safety on large automata.
    """
    produced = 0
    stack: list[tuple[int, str, float]] = [(sfa.start, "", 1.0)]
    while stack:
        node, prefix, prob = stack.pop()
        if node == sfa.final:
            yield prefix, prob
            produced += 1
            if limit is not None and produced >= limit:
                return
            continue
        for succ in sorted(set(sfa.successors(node)), reverse=True):
            for emission in reversed(sfa.emissions(node, succ)):
                stack.append((succ, prefix + emission.string, prob * emission.prob))


def string_distribution(sfa: Sfa, limit: int = 1_000_000) -> dict[str, float]:
    """The full distribution over emitted strings, aggregated by string.

    Intended for tests and small automata; raises if more than ``limit``
    paths would need enumerating.
    """
    if string_count(sfa) > limit:
        raise SfaError(f"SFA emits more than {limit} strings; refusing to enumerate")
    dist: dict[str, float] = {}
    for string, prob in enumerate_strings(sfa):
        dist[string] = dist.get(string, 0.0) + prob
    return dist


def has_unique_paths(sfa: Sfa, limit: int = 100_000) -> bool:
    """Check the unique-paths property of paper Section 2.2.

    Every string with non-zero probability must be generated by exactly one
    labeled path.  Verified by enumeration, so only suitable for automata
    with at most ``limit`` paths (tests, OCR-simulator output audits).
    """
    if string_count(sfa) > limit:
        raise SfaError(f"SFA emits more than {limit} strings; refusing to check")
    seen: set[str] = set()
    for string, _ in enumerate_strings(sfa):
        if string in seen:
            return False
        seen.add(string)
    return True


def retained_mass(original: Sfa, approximation: Sfa) -> float:
    """``Pr_S[Emit(alpha)]`` -- the mass the approximation retains.

    Sums, under the *original* distribution, the probability of every
    string the approximation can emit (paper Section 3.2).  Enumerates the
    approximation, so use on test-sized automata.
    """
    original_dist = string_distribution(original)
    emitted = {string for string, _ in enumerate_strings(approximation)}
    return sum(original_dist.get(string, 0.0) for string in emitted)


def kl_divergence(original: Sfa, approximation: Sfa) -> float:
    """KL divergence between the conditioned approximation and the original.

    Appendix C shows the optimal probability assignment for a retained
    string set ``X`` is the original distribution conditioned on ``X``, and
    that ``KL(mu|X || mu) = -log Z`` where ``Z`` is the retained mass.  We
    return exactly that quantity, so smaller is better and 0 means nothing
    was lost.
    """
    mass = retained_mass(original, approximation)
    if mass <= 0.0:
        return math.inf
    return -math.log(mass)
