"""Semiring-generic shortest distance over SFAs (OpenFST style).

Paper footnote 5: "Many (including OpenFST) tools use a formalization
with log-odds instead of probabilities.  It has some intuitive property
for graph concepts, e.g., the shortest path corresponds to the most
likely string."  OpenFST expresses all of its algorithms over abstract
semirings; this module provides the same abstraction for SFAs and shows
the specialized dynamic programs of :mod:`repro.sfa.ops` and
:mod:`repro.sfa.paths` are instances of one generic single-source
shortest-distance recursion over a DAG:

* ``REAL``     (+, x)            -> total probability mass (sum-product);
* ``VITERBI``  (max, x)          -> MAP probability (max-product);
* ``TROPICAL`` (min, +) on -log  -> MAP cost, the OpenFST view;
* ``COUNT``    (+, x) on counts  -> number of labeled paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from .model import Sfa
from .ops import topological_order

__all__ = ["Semiring", "REAL", "VITERBI", "TROPICAL", "COUNT", "shortest_distance"]


@dataclass(frozen=True, slots=True)
class Semiring:
    """An abstract commutative semiring with an emission-weight map.

    ``plus``/``times`` with identities ``zero``/``one``; ``weight`` maps
    an emission probability into the semiring's domain.
    """

    name: str
    plus: Callable[[float, float], float]
    times: Callable[[float, float], float]
    zero: float
    one: float
    weight: Callable[[float], float]


REAL = Semiring(
    name="real",
    plus=lambda a, b: a + b,
    times=lambda a, b: a * b,
    zero=0.0,
    one=1.0,
    weight=lambda p: p,
)

VITERBI = Semiring(
    name="viterbi",
    plus=max,
    times=lambda a, b: a * b,
    zero=0.0,
    one=1.0,
    weight=lambda p: p,
)

TROPICAL = Semiring(
    name="tropical",
    plus=min,
    times=lambda a, b: a + b,
    zero=math.inf,
    one=0.0,
    weight=lambda p: -math.log(p) if p > 0.0 else math.inf,
)

COUNT = Semiring(
    name="count",
    plus=lambda a, b: a + b,
    times=lambda a, b: a * b,
    zero=0,
    one=1,
    weight=lambda p: 1 if p > 0.0 else 0,
)


def shortest_distance(sfa: Sfa, semiring: Semiring = REAL) -> dict[int, float]:
    """Single-source generalized shortest distance from the start node.

    ``d[v] = plus over labeled paths p: start->v of times over p of
    weight(emission prob)`` -- computed in one topological sweep, exactly
    OpenFST's ``ShortestDistance`` on an acyclic machine.

    Instances: ``REAL`` gives :func:`repro.sfa.ops.forward_mass`;
    ``VITERBI`` at the final node gives the MAP probability; ``TROPICAL``
    gives its -log cost; ``COUNT`` gives :func:`repro.sfa.ops.string_count`.
    """
    distance = {node: semiring.zero for node in sfa.nodes}
    distance[sfa.start] = semiring.one
    for node in topological_order(sfa):
        current = distance[node]
        if current == semiring.zero:
            continue
        for succ in set(sfa.succ(node)):
            acc = distance[succ]
            for emission in sfa.emissions(node, succ):
                acc = semiring.plus(
                    acc, semiring.times(current, semiring.weight(emission.prob))
                )
            distance[succ] = acc
    return distance
