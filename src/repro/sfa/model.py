"""The stochastic finite automaton (SFA) data model.

An SFA is the probabilistic representation that OCR software (the paper uses
Google's OCRopus) emits for one line of scanned text.  It is a directed
acyclic graph with a unique start node and a unique final node; every edge
carries one or more *emissions* -- ``(string, probability)`` pairs -- and
every source-to-sink labeled path spells out one candidate transcription of
the line, whose probability is the product of the emission probabilities
along the path (paper Section 2.2).

The paper's Section 3 generalizes the transition function from single
characters to strings, ``delta: E x Sigma+ -> [0, 1]``, so that a Staccato
chunk (several collapsed transitions) fits the same definition.  This module
implements that *generalized* SFA directly; a plain character-level SFA is
simply the special case where every emission has length one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["Emission", "Sfa", "SfaError"]


class SfaError(ValueError):
    """Raised when an operation would produce a structurally invalid SFA."""


@dataclass(frozen=True, slots=True)
class Emission:
    """One labeled transition on an edge: emit ``string`` with ``prob``."""

    string: str
    prob: float

    def __post_init__(self) -> None:
        if not self.string:
            raise SfaError("emission string must be non-empty")
        if not 0.0 <= self.prob <= 1.0 + 1e-12:
            raise SfaError(f"emission probability {self.prob} outside [0, 1]")


class Sfa:
    """A generalized stochastic finite automaton over a DAG.

    Nodes are integers.  Edges are ordered pairs ``(u, v)`` and carry a list
    of :class:`Emission` objects sorted by descending probability.  The
    distinguished ``start`` and ``final`` nodes are the unique source and
    sink of the DAG.

    The class enforces *structural* validity (no duplicate edges, no
    self-loops, acyclicity is checked by :func:`repro.sfa.ops.validate`) but
    deliberately does not force the stochastic normalization condition:
    Staccato approximations legitimately retain less than the full
    probability mass (paper Section 3.1).
    """

    __slots__ = ("_succ", "_pred", "_emissions", "start", "final")

    def __init__(self, start: int = 0, final: int = 1) -> None:
        if start == final:
            raise SfaError("start and final nodes must be distinct")
        self._succ: dict[int, list[int]] = {start: [], final: []}
        self._pred: dict[int, list[int]] = {start: [], final: []}
        self._emissions: dict[tuple[int, int], list[Emission]] = {}
        self.start = start
        self.final = final

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: int) -> int:
        """Add an isolated node (a no-op if it already exists)."""
        if node not in self._succ:
            self._succ[node] = []
            self._pred[node] = []
        return node

    def fresh_node(self) -> int:
        """Add and return a node with an id not yet in use."""
        node = max(self._succ) + 1
        return self.add_node(node)

    def add_edge(
        self, u: int, v: int, emissions: Iterable[tuple[str, float] | Emission]
    ) -> None:
        """Add edge ``(u, v)`` carrying ``emissions``.

        Emissions are normalized to :class:`Emission` instances and stored
        sorted by descending probability (ties broken by string, so the
        order is deterministic).  Duplicate strings on one edge are merged
        by summing their probabilities.
        """
        if u == v:
            raise SfaError(f"self-loop on node {u} not allowed in a DAG")
        if (u, v) in self._emissions:
            raise SfaError(f"duplicate edge ({u}, {v})")
        merged: dict[str, float] = {}
        for item in emissions:
            emission = item if isinstance(item, Emission) else Emission(*item)
            merged[emission.string] = merged.get(emission.string, 0.0) + emission.prob
        if not merged:
            raise SfaError(f"edge ({u}, {v}) must carry at least one emission")
        self.add_node(u)
        self.add_node(v)
        self._succ[u].append(v)
        self._pred[v].append(u)
        self._emissions[(u, v)] = sorted(
            (Emission(s, p) for s, p in merged.items()),
            key=lambda e: (-e.prob, e.string),
        )

    def remove_edge(self, u: int, v: int) -> None:
        """Remove edge ``(u, v)``; endpoints are kept."""
        if (u, v) not in self._emissions:
            raise SfaError(f"edge ({u}, {v}) does not exist")
        del self._emissions[(u, v)]
        self._succ[u].remove(v)
        self._pred[v].remove(u)

    def remove_node(self, node: int) -> None:
        """Remove ``node`` and every incident edge."""
        if node in (self.start, self.final):
            raise SfaError("cannot remove the start or final node")
        if node not in self._succ:
            raise SfaError(f"node {node} does not exist")
        for v in list(self._succ[node]):
            self.remove_edge(node, v)
        for u in list(self._pred[node]):
            self.remove_edge(u, node)
        del self._succ[node]
        del self._pred[node]

    def replace_emissions(
        self, u: int, v: int, emissions: Iterable[tuple[str, float] | Emission]
    ) -> None:
        """Replace the emission list of an existing edge."""
        self.remove_edge(u, v)
        self.add_edge(u, v, emissions)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[int]:
        """All node ids."""
        return list(self._succ)

    @property
    def edges(self) -> list[tuple[int, int]]:
        """All edges as (u, v) pairs."""
        return list(self._emissions)

    @property
    def num_nodes(self) -> int:
        """Node count."""
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        """Edge count (the m of a Staccato representation)."""
        return len(self._emissions)

    def successors(self, node: int) -> list[int]:
        """Copy of the successor list of ``node``."""
        return list(self._succ[node])

    def predecessors(self, node: int) -> list[int]:
        """Copy of the predecessor list of ``node``."""
        return list(self._pred[node])

    # No-copy views for hot paths (callers must not mutate the results).
    def succ(self, node: int) -> list[int]:
        """Successor list view (do not mutate)."""
        return self._succ[node]

    def pred(self, node: int) -> list[int]:
        """Predecessor list view (do not mutate)."""
        return self._pred[node]

    def out_degree(self, node: int) -> int:
        """Number of outgoing edges."""
        return len(self._succ[node])

    def in_degree(self, node: int) -> int:
        """Number of incoming edges."""
        return len(self._pred[node])

    def emissions(self, u: int, v: int) -> list[Emission]:
        """The (string, prob) labels on edge (u, v), most likely first."""
        return list(self._emissions[(u, v)])

    def has_edge(self, u: int, v: int) -> bool:
        """True when edge (u, v) exists."""
        return (u, v) in self._emissions

    def has_node(self, node: int) -> bool:
        """True when ``node`` exists."""
        return node in self._succ

    def iter_edge_emissions(self) -> Iterator[tuple[int, int, Emission]]:
        """Yield ``(u, v, emission)`` for every emission in the SFA."""
        for (u, v), emissions in self._emissions.items():
            for emission in emissions:
                yield u, v, emission

    def edge_mass(self, u: int, v: int) -> float:
        """Total probability carried by edge ``(u, v)``."""
        return sum(e.prob for e in self._emissions[(u, v)])

    def num_emissions(self) -> int:
        """Total number of stored ``(edge, string)`` pairs."""
        return sum(len(e) for e in self._emissions.values())

    def max_strings_per_edge(self) -> int:
        """The effective ``k`` of this representation."""
        if not self._emissions:
            return 0
        return max(len(e) for e in self._emissions.values())

    # ------------------------------------------------------------------
    # Copying / equality / debugging
    # ------------------------------------------------------------------
    def copy(self) -> "Sfa":
        """An independent structural copy."""
        clone = Sfa(self.start, self.final)
        for node in self._succ:
            clone.add_node(node)
        for (u, v), emissions in self._emissions.items():
            clone.add_edge(u, v, emissions)
        return clone

    def structurally_equal(self, other: "Sfa") -> bool:
        """True when nodes, edges and emissions all coincide."""
        if (self.start, self.final) != (other.start, other.final):
            return False
        if set(self._succ) != set(other._succ):
            return False
        if set(self._emissions) != set(other._emissions):
            return False
        for key, emissions in self._emissions.items():
            theirs = other._emissions[key]
            if len(emissions) != len(theirs):
                return False
            for mine, its in zip(emissions, theirs):
                if mine.string != its.string or abs(mine.prob - its.prob) > 1e-9:
                    return False
        return True

    def __repr__(self) -> str:
        return (
            f"Sfa(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"emissions={self.num_emissions()}, start={self.start}, "
            f"final={self.final})"
        )
