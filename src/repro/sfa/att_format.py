"""AT&T / OpenFST text-format interop for SFAs.

OCRopus emits its transducers in the OpenFST ecosystem (paper Section 1,
footnote: "Our prototype uses the same weighted finite state transducer
model that is used by OpenFST and OCRopus").  The AT&T text format is the
ecosystem's interchange representation:

    src  dst  input  output  weight      # one line per arc
    final_state  [weight]                # one line per final state

We read and write the *acceptor* flavour (input == output == the emitted
string) with either probability weights or negative-log weights (OpenFST's
log semiring, paper footnote 5: "the shortest path corresponds to the most
likely string").  Symbols containing spaces are escaped with the
conventional ``<space>`` token; ``<epsilon>`` is rejected because SFAs
have no epsilon emissions.
"""

from __future__ import annotations

import math

from .model import Sfa, SfaError

__all__ = ["to_att", "from_att"]

_SPACE = "<space>"
_EPSILON = "<epsilon>"


def _encode_symbol(string: str) -> str:
    if not string:
        raise SfaError("cannot encode an empty emission")
    return string.replace(" ", _SPACE)


def _decode_symbol(token: str) -> str:
    if token == _EPSILON:
        raise SfaError("epsilon arcs are not valid in an SFA")
    return token.replace(_SPACE, " ")


def to_att(sfa: Sfa, log_weights: bool = True) -> str:
    """Serialize to AT&T text format.

    ``log_weights=True`` writes OpenFST-style negative log probabilities
    (the tropical/log-semiring convention); ``False`` writes raw
    probabilities.
    """
    lines = []
    for u, v in sorted(sfa.edges):
        for emission in sfa.emissions(u, v):
            if log_weights:
                weight = (
                    -math.log(emission.prob) if emission.prob > 0 else math.inf
                )
            else:
                weight = emission.prob
            symbol = _encode_symbol(emission.string)
            lines.append(f"{u}\t{v}\t{symbol}\t{symbol}\t{weight:.12g}")
    lines.append(f"{sfa.final}")
    return "\n".join(lines) + "\n"


def from_att(text: str, log_weights: bool = True, start: int | None = None) -> Sfa:
    """Parse the AT&T text format produced by :func:`to_att` (or by
    OpenFST's ``fstprint`` for acceptors).

    The start state defaults to the source of the first arc, per the
    OpenFST convention; pass ``start`` to override.  Arcs between the same
    state pair are merged onto one SFA edge.
    """
    arcs: list[tuple[int, int, str, float]] = []
    finals: list[int] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("\t") if "\t" in line else line.split()
        if len(fields) in (1, 2):
            finals.append(int(fields[0]))
            continue
        if len(fields) not in (4, 5):
            raise SfaError(f"malformed AT&T line {line_no}: {raw!r}")
        src, dst = int(fields[0]), int(fields[1])
        symbol_in = _decode_symbol(fields[2])
        symbol_out = _decode_symbol(fields[3])
        if symbol_in != symbol_out:
            raise SfaError(
                f"line {line_no}: transducer arc ({symbol_in!r} != "
                f"{symbol_out!r}); only acceptors map onto SFAs"
            )
        weight = float(fields[4]) if len(fields) == 5 else (0.0 if log_weights else 1.0)
        prob = math.exp(-weight) if log_weights else weight
        arcs.append((src, dst, symbol_out, prob))
    if not arcs:
        raise SfaError("AT&T text contains no arcs")
    if len(finals) != 1:
        raise SfaError(f"expected exactly one final state, got {finals}")
    start_state = arcs[0][0] if start is None else start
    sfa = Sfa(start=start_state, final=finals[0])
    by_edge: dict[tuple[int, int], list[tuple[str, float]]] = {}
    for src, dst, symbol, prob in arcs:
        by_edge.setdefault((src, dst), []).append((symbol, prob))
    for (src, dst), emissions in by_edge.items():
        sfa.add_edge(src, dst, emissions)
    return sfa
