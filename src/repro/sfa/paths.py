"""Most-likely-string extraction: MAP and k-MAP over SFAs.

The paper's k-MAP baseline stores the ``k`` highest-probability strings of
each line SFA (Section 3); Staccato applies the same extraction *inside*
each chunk.  On a DAG with the unique-paths property the k best strings are
the k best labeled paths, which a k-best extension of the Viterbi dynamic
program computes exactly (the paper cites Viterbi [26] plus Yen's
incremental variant [54]; on a DAG the merged-lists DP below is the
standard equivalent and is what we use throughout).
"""

from __future__ import annotations

import heapq
from typing import Iterable

from .model import Sfa
from .ops import topological_order

__all__ = ["k_best_strings", "map_string", "k_best_between"]


def _merge_top_k(
    candidates: Iterable[tuple[float, str]], k: int
) -> list[tuple[float, str]]:
    """Keep the ``k`` most probable candidates, ties broken by string."""
    return heapq.nsmallest(k, candidates, key=lambda c: (-c[0], c[1]))


def k_best_strings(sfa: Sfa, k: int) -> list[tuple[str, float]]:
    """The ``k`` highest-probability strings of the whole SFA.

    Returns at most ``k`` ``(string, prob)`` pairs sorted by descending
    probability.  Distinct paths that happen to spell the same string (a
    unique-paths violation) are merged by summing, then re-ranked, so the
    result is always a set of distinct strings.
    """
    return k_best_between(sfa, sfa.start, sfa.final, k)


def map_string(sfa: Sfa) -> tuple[str, float]:
    """The maximum a-posteriori string (paper: what Google Books stores)."""
    best = k_best_strings(sfa, 1)
    if not best:
        raise ValueError("SFA emits no strings")
    return best[0]


def k_best_between(
    sfa: Sfa,
    src: int,
    dst: int,
    k: int,
    within: set[int] | None = None,
) -> list[tuple[str, float]]:
    """The ``k`` best strings along ``src``-to-``dst`` paths.

    ``within`` optionally restricts the search to a node subset (used by
    Staccato's ``Collapse`` to rank the strings of a chunk region,
    paper Section 3.1).  Runs the k-best Viterbi DP in topological order:
    every node keeps its top-k partial ``(prob, string)`` paths, merged
    across incoming edges and emissions.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    best: dict[int, list[tuple[float, str]]] = {src: [(1.0, "")]}
    for node in topological_order(sfa):
        partials = best.get(node)
        if not partials:
            continue
        if node == dst:
            break
        for succ in set(sfa.successors(node)):
            if within is not None and succ not in within:
                continue
            extended = [
                (prob * emission.prob, string + emission.string)
                for prob, string in partials
                for emission in sfa.emissions(node, succ)
            ]
            existing = best.get(succ, [])
            best[succ] = _merge_top_k(existing + extended, k)
    finished = best.get(dst, [])
    # Merge duplicate strings (only possible without unique paths), re-rank.
    by_string: dict[str, float] = {}
    for prob, string in finished:
        by_string[string] = by_string.get(string, 0.0) + prob
    ranked = sorted(by_string.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:k]
