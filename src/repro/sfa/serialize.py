"""Binary (de)serialization of SFAs.

The FullSFA baseline stores the entire automaton as a BLOB inside the
RDBMS (paper Section 3, "Baseline Approaches"); Staccato stores each
line's chunk graph as a BLOB next to the per-chunk string table (paper
Appendix G, the ``StaccatoGraph`` table).  This module is the codec both
use.  The format is a compact little-endian struct layout:

    magic 'SFA1' | n_nodes u32 | n_edges u32 | start u32 | final u32
    node ids      : n_nodes * i64
    per edge      : u_index u32 | v_index u32 | n_emissions u32
                    then per emission: byte_len u32 | utf-8 bytes | prob f64

A JSON codec is provided as well for debugging and test fixtures.

Compiled evaluation kernels (:mod:`repro.sfa.kernel`) have their own
versioned ``KRN1`` blob layout, stored alongside the ``SFA1`` blobs in
the ``CompiledKernel`` table; their codec is re-exported here so this
module stays the single serialization surface of the SFA stack.
"""

from __future__ import annotations

import json
import struct

from .kernel import kernel_from_bytes, kernel_to_bytes
from .model import Sfa, SfaError

__all__ = [
    "to_bytes",
    "from_bytes",
    "to_json",
    "from_json",
    "blob_size",
    "kernel_to_bytes",
    "kernel_from_bytes",
]

_MAGIC = b"SFA1"
_HEADER = struct.Struct("<4sIIII")
_NODE = struct.Struct("<q")
_EDGE = struct.Struct("<III")
_EMISSION_HEAD = struct.Struct("<I")
_PROB = struct.Struct("<d")


def to_bytes(sfa: Sfa) -> bytes:
    """Serialize ``sfa`` to its binary BLOB representation."""
    nodes = sorted(sfa.nodes)
    index = {node: i for i, node in enumerate(nodes)}
    parts = [
        _HEADER.pack(
            _MAGIC,
            len(nodes),
            sfa.num_edges,
            index[sfa.start],
            index[sfa.final],
        )
    ]
    parts.extend(_NODE.pack(node) for node in nodes)
    for u, v in sorted(sfa.edges):
        emissions = sfa.emissions(u, v)
        parts.append(_EDGE.pack(index[u], index[v], len(emissions)))
        for emission in emissions:
            raw = emission.string.encode("utf-8")
            parts.append(_EMISSION_HEAD.pack(len(raw)))
            parts.append(raw)
            parts.append(_PROB.pack(emission.prob))
    return b"".join(parts)


def from_bytes(blob: bytes) -> Sfa:
    """Deserialize a BLOB produced by :func:`to_bytes`."""
    if len(blob) < _HEADER.size:
        raise SfaError("truncated SFA blob")
    magic, n_nodes, n_edges, start_idx, final_idx = _HEADER.unpack_from(blob, 0)
    if magic != _MAGIC:
        raise SfaError(f"bad SFA blob magic {magic!r}")
    offset = _HEADER.size
    nodes = []
    for _ in range(n_nodes):
        (node,) = _NODE.unpack_from(blob, offset)
        offset += _NODE.size
        nodes.append(node)
    sfa = Sfa(nodes[start_idx], nodes[final_idx])
    for node in nodes:
        sfa.add_node(node)
    for _ in range(n_edges):
        u_idx, v_idx, n_emissions = _EDGE.unpack_from(blob, offset)
        offset += _EDGE.size
        emissions = []
        for _ in range(n_emissions):
            (byte_len,) = _EMISSION_HEAD.unpack_from(blob, offset)
            offset += _EMISSION_HEAD.size
            string = blob[offset : offset + byte_len].decode("utf-8")
            offset += byte_len
            (prob,) = _PROB.unpack_from(blob, offset)
            offset += _PROB.size
            emissions.append((string, prob))
        sfa.add_edge(nodes[u_idx], nodes[v_idx], emissions)
    if offset != len(blob):
        raise SfaError("trailing bytes in SFA blob")
    return sfa


def blob_size(sfa: Sfa) -> int:
    """Size in bytes of the BLOB without materializing it.

    Used by the Table 2 dataset-statistics bench ("size as SFAs") and the
    tuner's size model.
    """
    size = _HEADER.size + sfa.num_nodes * _NODE.size + sfa.num_edges * _EDGE.size
    for u, v in sfa.edges:
        for emission in sfa.emissions(u, v):
            size += (
                _EMISSION_HEAD.size
                + len(emission.string.encode("utf-8"))
                + _PROB.size
            )
    return size


def to_json(sfa: Sfa) -> str:
    """Human-readable JSON form, for fixtures and debugging."""
    return json.dumps(
        {
            "start": sfa.start,
            "final": sfa.final,
            "nodes": sorted(sfa.nodes),
            "edges": [
                {
                    "u": u,
                    "v": v,
                    "emissions": [
                        [e.string, e.prob] for e in sfa.emissions(u, v)
                    ],
                }
                for u, v in sorted(sfa.edges)
            ],
        }
    )


def from_json(text: str) -> Sfa:
    """Inverse of :func:`to_json`."""
    data = json.loads(text)
    sfa = Sfa(data["start"], data["final"])
    for node in data["nodes"]:
        sfa.add_node(node)
    for edge in data["edges"]:
        sfa.add_edge(
            edge["u"], edge["v"], [(s, p) for s, p in edge["emissions"]]
        )
    return sfa
