"""Finite state transducers (paper Appendix A).

OCRopus actually emits weighted finite-state *transducers*: automata whose
arcs read a glyph symbol from an input alphabet and emit an ASCII string
from an output alphabet, with a conditional probability.  The body of the
paper simplifies FSTs to SFAs "only slightly for presentation"; this module
keeps the faithful model and provides the projection onto the output
alphabet that yields the SFA the rest of the system consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import Sfa, SfaError

__all__ = ["Arc", "Transducer"]


@dataclass(frozen=True, slots=True)
class Arc:
    """One weighted arc: read ``glyph``, emit ``output``, with ``prob``."""

    glyph: str
    output: str
    prob: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0 + 1e-12:
            raise SfaError(f"arc probability {self.prob} outside [0, 1]")


class Transducer:
    """A stochastic FST over a DAG (input glyphs -> output ASCII strings).

    Mirrors :class:`repro.sfa.model.Sfa` structurally; each edge carries
    :class:`Arc` objects instead of plain emissions.  ``delta(e, glyph,
    output)`` is the conditional probability of taking edge ``e`` while
    reading ``glyph`` and emitting ``output``.
    """

    __slots__ = ("_succ", "_pred", "_arcs", "start", "final")

    def __init__(self, start: int = 0, final: int = 1) -> None:
        if start == final:
            raise SfaError("start and final nodes must be distinct")
        self._succ: dict[int, list[int]] = {start: [], final: []}
        self._pred: dict[int, list[int]] = {start: [], final: []}
        self._arcs: dict[tuple[int, int], list[Arc]] = {}
        self.start = start
        self.final = final

    def add_node(self, node: int) -> int:
        """Add an isolated node (no-op if present)."""
        if node not in self._succ:
            self._succ[node] = []
            self._pred[node] = []
        return node

    def add_edge(self, u: int, v: int, arcs: list[Arc | tuple[str, str, float]]) -> None:
        """Add edge (u, v) carrying the given arcs."""
        if (u, v) in self._arcs:
            raise SfaError(f"duplicate edge ({u}, {v})")
        if not arcs:
            raise SfaError(f"edge ({u}, {v}) must carry at least one arc")
        normalized = [a if isinstance(a, Arc) else Arc(*a) for a in arcs]
        self.add_node(u)
        self.add_node(v)
        self._succ[u].append(v)
        self._pred[v].append(u)
        self._arcs[(u, v)] = sorted(
            normalized, key=lambda a: (-a.prob, a.output, a.glyph)
        )

    @property
    def nodes(self) -> list[int]:
        """All node ids."""
        return list(self._succ)

    @property
    def edges(self) -> list[tuple[int, int]]:
        """All edges as (u, v) pairs."""
        return list(self._arcs)

    def arcs(self, u: int, v: int) -> list[Arc]:
        """The weighted arcs on edge (u, v)."""
        return list(self._arcs[(u, v)])

    def input_alphabet(self) -> set[str]:
        """All glyph symbols read by some arc."""
        return {arc.glyph for arcs in self._arcs.values() for arc in arcs}

    def output_alphabet(self) -> set[str]:
        """All characters emitted by some arc."""
        return {
            ch
            for arcs in self._arcs.values()
            for arc in arcs
            for ch in arc.output
        }

    def project_output(self) -> Sfa:
        """Marginalize out the input alphabet, producing the SFA the paper
        works with: arcs that emit the same string on the same edge merge
        by probability summation."""
        sfa = Sfa(self.start, self.final)
        for node in self._succ:
            sfa.add_node(node)
        for (u, v), arcs in self._arcs.items():
            merged: dict[str, float] = {}
            for arc in arcs:
                if not arc.output:
                    raise SfaError(
                        "epsilon outputs cannot be projected onto an SFA"
                    )
                merged[arc.output] = merged.get(arc.output, 0.0) + arc.prob
            sfa.add_edge(u, v, list(merged.items()))
        return sfa
