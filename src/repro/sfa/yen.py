"""Yen's k-shortest-paths algorithm over SFAs (paper citation [54]).

The paper computes top-k strings "using the standard Viterbi algorithm
... To compute the top-k results more efficiently, we use an incremental
variant by Yen et al".  :mod:`repro.sfa.paths` uses the merged-lists
k-best Viterbi DP (equivalent on DAGs and simpler); this module provides
the cited algorithm itself, both as a fidelity artifact and as an
independent oracle the test suite cross-checks the DP against.

Weights follow the OpenFST convention of footnote 5: an emission of
probability p costs ``-log p``, so the shortest path is the most likely
string and path cost sums correspond to probability products.
"""

from __future__ import annotations

import heapq
import math

from .model import Sfa

__all__ = ["yen_k_best_strings"]

# A labeled step along a path: (node, emission index within its edge).
_Step = tuple[int, int]


def _labeled_successors(
    sfa: Sfa, node: int, banned_steps: set[tuple[int, _Step]]
) -> list[tuple[int, int, float, str]]:
    """(succ, emission index, cost, string) choices leaving ``node``."""
    out = []
    for succ in set(sfa.succ(node)):
        for idx, emission in enumerate(sfa.emissions(node, succ)):
            if (node, (succ, idx)) in banned_steps:
                continue
            if emission.prob <= 0.0:
                continue
            out.append((succ, idx, -math.log(emission.prob), emission.string))
    return out


def _shortest_path(
    sfa: Sfa,
    source: int,
    banned_steps: set[tuple[int, _Step]],
    banned_nodes: set[int],
) -> tuple[float, list[_Step], str] | None:
    """Dijkstra from ``source`` to the final node under the bans.

    Costs are non-negative (-log p), so Dijkstra is exact.  Returns
    (cost, labeled steps, emitted string) or None.
    """
    best: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, int, list[_Step], str]] = [(0.0, source, [], "")]
    while heap:
        cost, node, steps, text = heapq.heappop(heap)
        if node == sfa.final:
            return cost, steps, text
        if cost > best.get(node, math.inf):
            continue
        for succ, idx, step_cost, string in _labeled_successors(
            sfa, node, banned_steps
        ):
            if succ in banned_nodes:
                continue
            new_cost = cost + step_cost
            if new_cost < best.get(succ, math.inf) - 1e-15:
                best[succ] = new_cost
                heapq.heappush(
                    heap, (new_cost, succ, steps + [(succ, idx)], text + string)
                )
    return None


def yen_k_best_strings(sfa: Sfa, k: int) -> list[tuple[str, float]]:
    """The k most probable strings via Yen's loopless k-shortest paths.

    Under the unique-paths property the k best paths are the k best
    strings.  Returns ``(string, probability)`` pairs sorted by
    descending probability (ties by string, matching
    :func:`repro.sfa.paths.k_best_strings`).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    first = _shortest_path(sfa, sfa.start, set(), set())
    if first is None:
        return []
    accepted: list[tuple[float, list[_Step], str]] = [first]
    candidates: list[tuple[float, str, list[_Step]]] = []
    seen_candidates: set[str] = set()
    while len(accepted) < k:
        prev_cost, prev_steps, _prev_text = accepted[-1]
        # Spur from every prefix of the last accepted path.
        prefix_nodes = [sfa.start] + [node for node, _ in prev_steps]
        for i in range(len(prev_steps)):
            spur_node = prefix_nodes[i]
            root_steps = prev_steps[:i]
            # Ban the outgoing labeled steps used by accepted paths that
            # share this root, and the root's interior nodes.
            banned_steps: set[tuple[int, _Step]] = set()
            for cost, steps, _text in accepted:
                if steps[:i] == root_steps and len(steps) > i:
                    banned_steps.add((spur_node, steps[i]))
            banned_nodes = set(prefix_nodes[:i])
            spur = _shortest_path(sfa, spur_node, banned_steps, banned_nodes)
            if spur is None:
                continue
            spur_cost, spur_steps, spur_text = spur
            root_cost = 0.0
            root_text = []
            node = sfa.start
            for succ, idx in root_steps:
                emission = sfa.emissions(node, succ)[idx]
                root_cost += -math.log(emission.prob)
                root_text.append(emission.string)
                node = succ
            total_steps = root_steps + spur_steps
            total_text = "".join(root_text) + spur_text
            key = "|".join(f"{n}:{i}" for n, i in total_steps)
            if key in seen_candidates:
                continue
            seen_candidates.add(key)
            heapq.heappush(
                candidates,
                (root_cost + spur_cost, total_text, total_steps),
            )
        if not candidates:
            break
        cost, text, steps = heapq.heappop(candidates)
        accepted.append((cost, steps, text))
    results = [
        (text, math.exp(-cost)) for cost, _steps, text in accepted
    ]
    # Merge duplicate strings defensively (unique-paths violations) and
    # re-rank exactly as paths.k_best_strings does.
    merged: dict[str, float] = {}
    for text, prob in results:
        merged[text] = merged.get(text, 0.0) + prob
    ranked = sorted(merged.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:k]
