"""Stochastic finite automata: the probabilistic OCR data model.

This subpackage is the substrate the whole reproduction stands on: the
generalized SFA of paper Sections 2.2 and 3.1, graph/probability
operations, MAP / k-best string extraction, the FST model of Appendix A,
and the BLOB codec used for RDBMS storage.
"""

from .model import Emission, Sfa, SfaError
from .ops import (
    ancestors,
    backward_mass,
    descendants,
    enumerate_strings,
    forward_mass,
    has_unique_paths,
    is_valid,
    kl_divergence,
    retained_mass,
    string_count,
    string_distribution,
    topological_order,
    total_mass,
    validate,
)
from .att_format import from_att, to_att
from .paths import k_best_between, k_best_strings, map_string
from .semiring import COUNT, REAL, TROPICAL, VITERBI, Semiring, shortest_distance
from .serialize import blob_size, from_bytes, from_json, to_bytes, to_json
from .transducer import Arc, Transducer
from .yen import yen_k_best_strings
from . import builder

__all__ = [
    "Emission",
    "Sfa",
    "SfaError",
    "Arc",
    "Transducer",
    "ancestors",
    "backward_mass",
    "descendants",
    "enumerate_strings",
    "forward_mass",
    "has_unique_paths",
    "is_valid",
    "kl_divergence",
    "retained_mass",
    "string_count",
    "string_distribution",
    "topological_order",
    "total_mass",
    "validate",
    "k_best_between",
    "k_best_strings",
    "map_string",
    "blob_size",
    "from_bytes",
    "from_json",
    "to_bytes",
    "to_json",
    "from_att",
    "to_att",
    "COUNT",
    "REAL",
    "TROPICAL",
    "VITERBI",
    "Semiring",
    "shortest_distance",
    "yen_k_best_strings",
    "builder",
]
