"""Convenience constructors for SFAs.

Used by tests, examples and benchmarks: the chain SFA of the paper's
Table 1 cost model, the Figure 1 'Ford' example, the Figure 2 and Figure 3
pedagogical automata, and seeded random DAG generators for property-based
testing.
"""

from __future__ import annotations

import random
from typing import Sequence

from .model import Sfa

__all__ = [
    "chain_sfa",
    "from_string",
    "figure1_sfa",
    "figure2_sfa",
    "figure3_sfa",
    "random_chain_sfa",
    "random_chunk_sfa",
    "random_dag_sfa",
]


def chain_sfa(alternatives: Sequence[Sequence[tuple[str, float]]]) -> Sfa:
    """A chain SFA: node ``i`` -> ``i+1`` with the given emission list.

    ``alternatives[i]`` is the list of ``(string, prob)`` choices at
    position ``i``.  This is the "simple chain SFA (no branching)" of the
    paper's Table 1.
    """
    if not alternatives:
        raise ValueError("a chain SFA needs at least one position")
    sfa = Sfa(start=0, final=len(alternatives))
    for i, emissions in enumerate(alternatives):
        sfa.add_edge(i, i + 1, emissions)
    return sfa


def from_string(text: str) -> Sfa:
    """A deterministic chain SFA emitting exactly ``text``."""
    if not text:
        raise ValueError("cannot build an SFA for the empty string")
    return chain_sfa([[(ch, 1.0)] for ch in text])


def figure1_sfa() -> Sfa:
    """The paper's Figure 1(B): the 'Ford' / 'F0 rd' insurance example.

    MAP string is 'F0 rd' (prob ~0.21); the string 'Ford' exists with
    probability ~0.12 but is lost by the MAP approach.
    """
    sfa = Sfa(start=0, final=5)
    sfa.add_edge(0, 1, [("F", 0.8), ("T", 0.2)])
    sfa.add_edge(1, 2, [("0", 0.6), ("o", 0.4)])
    sfa.add_edge(2, 3, [(" ", 0.6)])
    sfa.add_edge(2, 4, [("r", 0.4)])
    sfa.add_edge(3, 4, [("r", 0.8), ("m", 0.2)])
    sfa.add_edge(4, 5, [("d", 0.9), ("3", 0.1)])
    return sfa


def figure2_sfa() -> Sfa:
    """The paper's Figure 2: the 4-position chain used to contrast k-MAP
    with Staccato's ``k**m`` string count."""
    return chain_sfa(
        [
            [("a", 0.6), ("p", 0.2), ("w", 0.1), ("e", 0.1)],
            [("b", 0.5), ("q", 0.3), ("x", 0.2)],
            [("c", 0.4), ("r", 0.3), ("y", 0.1), ("g", 0.2)],
            [("d", 0.7), ("s", 0.2), ("z", 0.1)],
        ]
    )


def figure3_sfa() -> Sfa:
    """The paper's Figure 3(A): emits exactly 'aef' and 'abcd'.

    Structure: 0 -a-> 1, then either 1 -e-> 4 -f-> 5 or
    1 -b-> 2 -c-> 3 -d-> 5.  Probabilities are added (the paper omits them
    for readability): the 'aef' branch gets 0.6, 'abcd' gets 0.4.
    """
    sfa = Sfa(start=0, final=5)
    sfa.add_edge(0, 1, [("a", 1.0)])
    sfa.add_edge(1, 4, [("e", 0.6)])
    sfa.add_edge(4, 5, [("f", 1.0)])
    sfa.add_edge(1, 2, [("b", 0.4)])
    sfa.add_edge(2, 3, [("c", 1.0)])
    sfa.add_edge(3, 5, [("d", 1.0)])
    return sfa


def _random_emissions(
    rng: random.Random, alphabet: str, max_choices: int
) -> list[tuple[str, float]]:
    count = rng.randint(1, max_choices)
    chars = rng.sample(alphabet, min(count, len(alphabet)))
    weights = [rng.random() + 0.05 for _ in chars]
    total = sum(weights)
    return [(ch, w / total) for ch, w in zip(chars, weights)]


def random_chain_sfa(
    rng: random.Random,
    length: int,
    alphabet: str = "abcdefgh",
    max_choices: int = 4,
) -> Sfa:
    """A seeded random chain SFA (normalized, unique paths by design)."""
    return chain_sfa(
        [_random_emissions(rng, alphabet, max_choices) for _ in range(length)]
    )


def random_chunk_sfa(
    rng: random.Random,
    chunks: int,
    alphabet: str = "abcdefgh",
    max_strings: int = 4,
    max_chunk_len: int = 5,
) -> Sfa:
    """A seeded random *chunk* SFA: multi-character string emissions.

    Shaped like a Staccato chunk graph (``staccato_approximate`` output):
    a chain whose edges emit whole strings rather than single characters.
    Strings within one chunk are distinct (required by the emission
    merge), and lowering such graphs exercises the compiled kernel's
    symbol table with symbols of varying length -- including the
    character-composition transition build of the numpy batch path.
    """
    positions = []
    for _ in range(chunks):
        count = rng.randint(1, max_strings)
        strings: set[str] = set()
        while len(strings) < count:
            length = rng.randint(1, max_chunk_len)
            strings.add(
                "".join(rng.choice(alphabet) for _ in range(length))
            )
        weights = [rng.random() + 0.05 for _ in strings]
        total = sum(weights)
        positions.append(
            [(s, w / total) for s, w in zip(sorted(strings), weights)]
        )
    return chain_sfa(positions)


def random_dag_sfa(
    rng: random.Random,
    length: int,
    alphabet: str = "abcdefgh",
    max_choices: int = 3,
    branch_prob: float = 0.3,
) -> Sfa:
    """A seeded random *branching* SFA with the unique-paths property.

    Built as a chain with occasional two-node parallel branches; the branch
    emissions use upper-case characters so no string can be produced by two
    different paths.  Outgoing probabilities at every node are normalized,
    making the result a valid stochastic SFA.
    """
    sfa = Sfa(start=0, final=length + 1_000_000)
    node = 0
    next_aux = length + 1  # auxiliary node ids, disjoint from chain ids
    position = 0
    while position < length:
        target = node + 1 if position + 1 < length else sfa.final
        if rng.random() < branch_prob and position + 2 <= length:
            # Diamond: node -> target2 directly and via an auxiliary node.
            target2 = node + 2 if position + 2 < length else sfa.final
            aux = next_aux
            next_aux += 1
            direct = _random_emissions(rng, alphabet, max_choices)
            upper = alphabet.upper()
            first = _random_emissions(rng, upper, max_choices)
            second = _random_emissions(rng, upper, max_choices)
            split = 0.4 + 0.2 * rng.random()
            sfa.add_edge(
                node, target2, [(s, p * split) for s, p in direct]
            )
            sfa.add_edge(
                node, aux, [(s, p * (1.0 - split)) for s, p in first]
            )
            sfa.add_edge(aux, target2, second)
            node = target2 if target2 != sfa.final else node
            position += 2
            if target2 == sfa.final:
                return sfa
        else:
            sfa.add_edge(node, target, _random_emissions(rng, alphabet, max_choices))
            node = target if target != sfa.final else node
            position += 1
            if target == sfa.final:
                return sfa
    return sfa
