"""Legacy setup shim: the environment has setuptools but no `wheel`
package, so editable installs must go through `setup.py develop`
(``pip install -e . --no-use-pep517 --no-build-isolation``)."""

from setuptools import setup

setup()
