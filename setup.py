"""Legacy setup shim: the environment has setuptools but no `wheel`
package, so editable installs must go through `setup.py develop`
(``pip install -e . --no-use-pep517 --no-build-isolation``)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Staccato: probabilistic management of OCR data using an RDBMS "
        "(VLDB 2011 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["staccato=repro.cli:main"]},
)
