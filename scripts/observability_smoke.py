#!/usr/bin/env python3
"""CI smoke test for the observability surface.

Starts a real service (ephemeral port), ingests a tiny corpus, then:

1. runs a traced ``/search`` (``"trace": true``) and checks the
   response carries ``X-Trace-Id`` plus an inline span tree with the
   expected legs (handler, plan, engine scan) and engine work counters
   on the ``engine_scan`` span;
2. re-fetches the same trace from the ring via ``GET /traces/<id>``;
3. repeats the scan with a different ``NumAns`` -- a query-cache miss
   that the cross-request kernel memo must serve -- then scrapes
   ``GET /metrics`` and validates it is well-formed Prometheus text
   exposition (content type, line grammar, HELP/TYPE pairing,
   cumulative histogram buckets) carrying every
   ``staccato_engine_*_total`` counter, with the memo hit/miss
   counters having moved;
4. pulls the sampling profiler's aggregate from ``GET /profile`` in
   both JSON and collapsed-stack form.

Exits non-zero on the first violation.

Run:  PYTHONPATH=src python scripts/observability_smoke.py
"""

from __future__ import annotations

import json
import re
import sys
import tempfile
import urllib.request

from repro import counters
from repro.bench.service_load import get_json, post_json
from repro.ocr.corpus import make_ca
from repro.service import start_service

SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+]?[0-9.eE+Inf]+$"
)


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def span_names(tree: dict) -> set[str]:
    names = {tree["name"]}
    for child in tree.get("children", ()):
        names |= span_names(child)
    return names


def find_span(tree: dict, name: str) -> dict | None:
    if tree["name"] == name:
        return tree
    for child in tree.get("children", ()):
        found = find_span(child, name)
        if found is not None:
            return found
    return None


def check_prometheus(text: str) -> None:
    helped, typed = set(), set()
    for line in text.splitlines():
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
        elif line.startswith("# TYPE "):
            typed.add(line.split()[2])
        elif line:
            if not SAMPLE.match(line):
                fail(f"malformed exposition line: {line!r}")
    if helped != typed:
        fail(f"HELP/TYPE mismatch: {helped ^ typed}")
    buckets = re.findall(
        r'staccato_requests_duration_ms_bucket\{endpoint="search",'
        r'le="[^"]+"\} (\d+)',
        text,
    )
    counts = [int(count) for count in buckets]
    if not counts or counts != sorted(counts):
        fail(f"histogram buckets missing or not cumulative: {counts}")
    if "staccato_uptime_seconds" not in text:
        fail("staccato_uptime_seconds gauge missing")
    engine = dict(
        re.findall(r"^staccato_engine_(\w+)_total (\d+)$", text, flags=re.M)
    )
    if set(engine) != set(counters.COUNTER_NAMES):
        fail(f"engine counter families wrong: {sorted(engine)}")
    if int(engine["lines_scanned"]) <= 0 or int(engine["dp_cells"]) <= 0:
        fail(f"engine counters did not move: {engine}")
    if int(engine["memo_hits"]) <= 0 or int(engine["memo_misses"]) <= 0:
        fail(f"kernel memo counters did not move: {engine}")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        running = start_service(f"{tmp}/smoke.db", k=4, m=6,
                                profile_hz=25.0)
        try:
            corpus = make_ca(num_docs=2, lines_per_doc=3, seed=1)
            status, _ = post_json(
                running.base_url,
                "/ingest",
                {
                    "documents": [
                        {
                            "doc_id": doc.doc_id,
                            "year": doc.year,
                            "lines": list(doc.lines),
                        }
                        for doc in corpus.documents
                    ],
                    "ocr_seed": 0,
                },
            )
            if status != 200:
                fail(f"ingest answered {status}")

            # 1. Traced request: header + inline span tree.
            request = urllib.request.Request(
                running.base_url + "/search",
                data=json.dumps(
                    {"pattern": "%Congress%", "plan": "filescan", "trace": True}
                ).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                trace_id = response.headers.get("X-Trace-Id")
                body = json.loads(response.read())
            if not trace_id:
                fail("traced response missing X-Trace-Id header")
            tree = body.get("trace", {}).get("spans")
            if not tree:
                fail("traced response missing inline span tree")
            names = span_names(tree)
            for expected in ("search", "handler", "plan", "engine_scan"):
                if expected not in names:
                    fail(f"span {expected!r} missing from trace: {names}")
            scan = find_span(tree, "engine_scan")
            span_counters = (scan.get("attrs") or {}).get("counters")
            if not span_counters or span_counters.get("lines_scanned", 0) <= 0:
                fail(f"engine_scan span lacks work counters: {scan}")

            # 2. The same trace is in the ring.
            status, record = get_json(running.base_url, f"/traces/{trace_id}")
            if status != 200 or record["trace_id"] != trace_id:
                fail(f"GET /traces/{trace_id} answered {status}")

            # 2b. The same scan with a different NumAns misses the
            # query cache but must be served by the kernel memo; the
            # /metrics scrape below asserts the hit counter moved.
            status, _ = post_json(
                running.base_url,
                "/search",
                {"pattern": "%Congress%", "plan": "filescan", "num_ans": 2},
            )
            if status != 200:
                fail(f"memo-warm search answered {status}")

            # 3. /metrics is valid Prometheus text.
            with urllib.request.urlopen(
                running.base_url + "/metrics", timeout=30
            ) as response:
                content_type = response.headers.get("Content-Type", "")
                text = response.read().decode("utf-8")
            if not content_type.startswith("text/plain; version=0.0.4"):
                fail(f"unexpected /metrics content type: {content_type}")
            check_prometheus(text)

            # 4. The sampling profiler answers in both formats.
            status, profile = get_json(running.base_url, "/profile")
            if status != 200 or not profile.get("enabled"):
                fail(f"GET /profile answered {status}: {profile}")
            if profile["hz"] != 25.0 or "top_self" not in profile:
                fail(f"unexpected /profile aggregate: {profile}")
            with urllib.request.urlopen(
                running.base_url + "/profile?format=collapsed", timeout=30
            ) as response:
                collapsed_type = response.headers.get("Content-Type", "")
                collapsed = response.read().decode("utf-8")
            if not collapsed_type.startswith("text/plain"):
                fail(f"collapsed profile content type: {collapsed_type}")
            for line in collapsed.splitlines():
                if not re.fullmatch(r"\S.*? \d+", line):
                    fail(f"malformed collapsed stack line: {line!r}")
        finally:
            running.stop()
    print("observability smoke: traced search + ring fetch + /metrics "
          "+ /profile OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
