#!/usr/bin/env python3
"""CI smoke test for the observability surface.

Starts a real service (ephemeral port), ingests a tiny corpus, then:

1. runs a traced ``/search`` (``"trace": true``) and checks the
   response carries ``X-Trace-Id`` plus an inline span tree with the
   expected legs (handler, plan, engine scan);
2. re-fetches the same trace from the ring via ``GET /traces/<id>``;
3. scrapes ``GET /metrics`` and validates it is well-formed Prometheus
   text exposition (content type, line grammar, HELP/TYPE pairing,
   cumulative histogram buckets).

Exits non-zero on the first violation.

Run:  PYTHONPATH=src python scripts/observability_smoke.py
"""

from __future__ import annotations

import json
import re
import sys
import tempfile
import urllib.request

from repro.bench.service_load import get_json, post_json
from repro.ocr.corpus import make_ca
from repro.service import start_service

SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+]?[0-9.eE+Inf]+$"
)


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def span_names(tree: dict) -> set[str]:
    names = {tree["name"]}
    for child in tree.get("children", ()):
        names |= span_names(child)
    return names


def check_prometheus(text: str) -> None:
    helped, typed = set(), set()
    for line in text.splitlines():
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
        elif line.startswith("# TYPE "):
            typed.add(line.split()[2])
        elif line:
            if not SAMPLE.match(line):
                fail(f"malformed exposition line: {line!r}")
    if helped != typed:
        fail(f"HELP/TYPE mismatch: {helped ^ typed}")
    buckets = re.findall(
        r'staccato_requests_duration_ms_bucket\{endpoint="search",'
        r'le="[^"]+"\} (\d+)',
        text,
    )
    counts = [int(count) for count in buckets]
    if not counts or counts != sorted(counts):
        fail(f"histogram buckets missing or not cumulative: {counts}")
    if "staccato_uptime_seconds" not in text:
        fail("staccato_uptime_seconds gauge missing")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        running = start_service(f"{tmp}/smoke.db", k=4, m=6)
        try:
            corpus = make_ca(num_docs=2, lines_per_doc=3, seed=1)
            status, _ = post_json(
                running.base_url,
                "/ingest",
                {
                    "documents": [
                        {
                            "doc_id": doc.doc_id,
                            "year": doc.year,
                            "lines": list(doc.lines),
                        }
                        for doc in corpus.documents
                    ],
                    "ocr_seed": 0,
                },
            )
            if status != 200:
                fail(f"ingest answered {status}")

            # 1. Traced request: header + inline span tree.
            request = urllib.request.Request(
                running.base_url + "/search",
                data=json.dumps(
                    {"pattern": "%Congress%", "plan": "filescan", "trace": True}
                ).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                trace_id = response.headers.get("X-Trace-Id")
                body = json.loads(response.read())
            if not trace_id:
                fail("traced response missing X-Trace-Id header")
            tree = body.get("trace", {}).get("spans")
            if not tree:
                fail("traced response missing inline span tree")
            names = span_names(tree)
            for expected in ("search", "handler", "plan", "engine_scan"):
                if expected not in names:
                    fail(f"span {expected!r} missing from trace: {names}")

            # 2. The same trace is in the ring.
            status, record = get_json(running.base_url, f"/traces/{trace_id}")
            if status != 200 or record["trace_id"] != trace_id:
                fail(f"GET /traces/{trace_id} answered {status}")

            # 3. /metrics is valid Prometheus text.
            with urllib.request.urlopen(
                running.base_url + "/metrics", timeout=30
            ) as response:
                content_type = response.headers.get("Content-Type", "")
                text = response.read().decode("utf-8")
            if not content_type.startswith("text/plain; version=0.0.4"):
                fail(f"unexpected /metrics content type: {content_type}")
            check_prometheus(text)
        finally:
            running.stop()
    print("observability smoke: traced search + ring fetch + /metrics OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
