#!/usr/bin/env python3
"""CI smoke test for the subprocess-worker topology.

Boots the real CLI (``python -m repro serve --shards 2 --shard-dir ...
--worker-procs``) on an ephemeral port, then:

1. ingests a tiny corpus and runs a traced ``/search`` whose span tree
   is stitched across the process boundary (the router's ``shard_leg``
   spans carry the workers' echoed subtrees as remote children, down to
   ``engine_scan`` work counters);
2. SIGKILLs one worker (pid taken from the ``GET /health`` worker
   census) and verifies the supervisor respawns it -- ``/health``
   returns to ``ok`` with a fresh pid and ``/metrics`` counts a
   ``worker_restart`` event;
3. SIGTERMs the router and verifies a clean exit that leaves no
   orphaned worker processes behind.

Exits non-zero on the first violation.

Run:  PYTHONPATH=src python scripts/workers_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

from repro.bench.service_load import get_json, post_json
from repro.ocr.corpus import make_ca

_SRC_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src")
)


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def pick_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def await_health(base_url: str, timeout_s: float = 60.0) -> dict:
    deadline = time.monotonic() + timeout_s
    health: dict = {}
    while time.monotonic() < deadline:
        try:
            status, health = get_json(base_url, "/health")
            if status == 200 and health.get("status") == "ok":
                return health
        except (urllib.error.URLError, OSError, ConnectionError):
            pass
        time.sleep(0.2)
    fail(f"service never became healthy: {health}")
    return health  # unreachable


def span_nodes(tree: dict):
    yield tree
    for child in tree.get("children", ()):
        yield from span_nodes(child)


def main() -> int:
    port = pick_port()
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_ROOT + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    with tempfile.TemporaryDirectory() as tmp:
        router = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--shards", "2", "--shard-dir", f"{tmp}/shards",
                "--worker-procs",
                "--host", "127.0.0.1", "--port", str(port),
                "--k", "4", "--m", "6",
            ],
            env=env,
        )
        base_url = f"http://127.0.0.1:{port}"
        worker_pids: list[int] = []
        try:
            health = await_health(base_url)
            workers = health.get("workers") or {}
            if set(workers) != {"0", "1"}:
                fail(f"expected 2 workers in /health, got {workers}")

            corpus = make_ca(num_docs=2, lines_per_doc=3, seed=1)
            status, reply = post_json(
                base_url,
                "/ingest",
                {
                    "documents": [
                        {
                            "doc_id": doc.doc_id,
                            "year": doc.year,
                            "lines": list(doc.lines),
                        }
                        for doc in corpus.documents
                    ],
                    "ocr_seed": 0,
                },
            )
            if status != 200:
                fail(f"ingest answered {status}: {reply}")

            # 1. Traced search: the span tree is stitched across the
            # process boundary (each shard_leg carries the worker's
            # echoed subtree grafted as a remote child).
            request = urllib.request.Request(
                base_url + "/search",
                data=json.dumps(
                    {"pattern": "%Congress%", "trace": True}
                ).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                trace_id = response.headers.get("X-Trace-Id")
                body = json.loads(response.read())
            if not trace_id:
                fail("traced response missing X-Trace-Id header")
            tree = body.get("trace", {}).get("spans")
            if not tree:
                fail("traced response missing inline span tree")
            legs = [
                node for node in span_nodes(tree)
                if node.get("name") == "shard_leg"
            ]
            if not legs:
                fail("no shard_leg spans in the routed trace")
            remote_roots = [
                child
                for leg in legs
                for child in leg.get("children", ())
                if (child.get("attrs") or {}).get("remote") is True
            ]
            if not remote_roots:
                fail("no worker-side span tree crossed the boundary")
            if not any(
                (node.get("attrs") or {}).get("counters", {}).get(
                    "lines_scanned", 0
                ) > 0
                for root in remote_roots
                for node in span_nodes(root)
                if node.get("name") == "engine_scan"
            ):
                fail("stitched worker subtree lacks engine_scan counters")

            # 2. Kill one worker; the supervisor must bring it back.
            victim = workers["0"]["pid"]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            recovered: dict = {}
            while time.monotonic() < deadline:
                status, health = get_json(base_url, "/health")
                recovered = (health.get("workers") or {}).get("0") or {}
                if (
                    status == 200
                    and health.get("status") == "ok"
                    and recovered.get("pid") not in (None, victim)
                    and recovered.get("restarts", 0) >= 1
                ):
                    break
                time.sleep(0.2)
            else:
                fail(f"worker 0 never recovered from SIGKILL: {recovered}")
            with urllib.request.urlopen(
                base_url + "/metrics", timeout=30
            ) as response:
                text = response.read().decode("utf-8")
            match = re.search(
                r'staccato_events_total\{event="worker_restart"\} (\d+)', text
            )
            if match is None or int(match.group(1)) < 1:
                fail("worker_restart event missing from /metrics")

            status, health = get_json(base_url, "/health")
            worker_pids = [
                block["pid"]
                for block in (health.get("workers") or {}).values()
                if block.get("pid")
            ]
        finally:
            if router.poll() is None:
                router.terminate()
                try:
                    router.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    router.kill()
                    fail("router did not exit within 30s of SIGTERM")

        # 3. Clean shutdown: exit 0, no orphaned workers.
        if router.returncode != 0:
            fail(f"router exited {router.returncode}")
        for pid in worker_pids:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                continue
            fail(f"worker pid {pid} survived router shutdown (orphan)")
    print(
        "workers smoke: traced fan-out + SIGKILL recovery + clean "
        "drain OK"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
