#!/usr/bin/env python3
"""Fail CI when the docs drift from reality.

Two checks:

1. **Relative links** -- every markdown link and image target in
   README.md / docs/*.md must resolve to an existing file or directory
   (external URLs and in-page anchors are skipped).
2. **HTTP endpoints, both directions** -- every ``METHOD /path`` named
   in docs/API.md must have a handler registered in the route tables
   of ``src/repro/service/http_common.py``, the transport-independent
   core both serving backends share (exact routes like ``POST /jobs``,
   or prefix routes like ``GET /jobs/<id>``), **and** every route
   those tables register must be named in docs/API.md.  Documenting an
   endpoint the server does not serve -- or shipping one the reference
   never mentions -- is exactly the drift this catches.

Exits 1 listing every broken link / served-vs-documented mismatch.

Run:  python scripts/check_docs_links.py
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Inline markdown links/images: [text](target) / ![alt](target).
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def doc_files() -> list[pathlib.Path]:
    files = sorted(REPO_ROOT.glob("*.md"))
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    return files


def strip_code(text: str) -> str:
    """Drop fenced and inline code spans (their parens are not links)."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def check_file(path: pathlib.Path) -> list[str]:
    broken = []
    for target in LINK.findall(strip_code(path.read_text())):
        if SCHEME.match(target) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            broken.append(
                f"{path.relative_to(REPO_ROOT)}: broken link -> {target}"
            )
    return broken


#: ``METHOD /path`` mentions in the API reference (tables, headings,
#: prose).  ``<id>``-style placeholders mark prefix-routed endpoints.
ENDPOINT = re.compile(r"\b(GET|POST|PUT|PATCH|DELETE)\s+(/[A-Za-z0-9_/<>-]+)")

#: Route tables in http_common.py: ``GET_ROUTES = {...}`` holds exact paths,
#: ``GET_ARG_ROUTES = {...}`` holds prefixes whose trailing segment is
#: passed to the handler (documented as ``/jobs/<id>``).
ROUTE_TABLE = re.compile(
    r"^(GET|POST|PUT|PATCH|DELETE)_(ARG_)?ROUTES(?:\s*:[^=]+)?\s*=\s*\{(.*?)\}",
    re.MULTILINE | re.DOTALL,
)
ROUTE_PATH = re.compile(r"\"(/[^\"]*)\"\s*:")


def server_routes() -> dict[str, tuple[set[str], set[str]]]:
    """Per method: the exact paths and argument prefixes the API serves."""
    source = (
        REPO_ROOT / "src" / "repro" / "service" / "http_common.py"
    ).read_text()
    routes: dict[str, tuple[set[str], set[str]]] = {}
    for method, is_prefix, body in ROUTE_TABLE.findall(source):
        exact, prefixes = routes.setdefault(method, (set(), set()))
        for path in ROUTE_PATH.findall(body):
            (prefixes if is_prefix else exact).add(path)
    return routes


def check_endpoints() -> list[str]:
    """Every endpoint docs/API.md names must be registered in the core."""
    api = REPO_ROOT / "docs" / "API.md"
    if not api.is_file():
        return []
    routes = server_routes()
    problems = []
    for method, path in sorted(set(ENDPOINT.findall(api.read_text()))):
        exact, prefixes = routes.get(method, (set(), set()))
        if "<" in path:
            prefix = path.split("<", 1)[0]
            served = prefix in prefixes
        else:
            served = path in exact or any(
                path.startswith(prefix) for prefix in prefixes
            )
        if not served:
            problems.append(
                f"docs/API.md: endpoint {method} {path} has no handler "
                "registered in src/repro/service/http_common.py"
            )
    return problems


def check_served_documented() -> list[str]:
    """Every route the core registers must be named in docs/API.md."""
    api = REPO_ROOT / "docs" / "API.md"
    if not api.is_file():
        return []
    documented = set(ENDPOINT.findall(api.read_text()))
    problems = []
    for method, (exact, prefixes) in sorted(server_routes().items()):
        for path in sorted(exact):
            if (method, path) not in documented:
                problems.append(
                    f"docs/API.md: served endpoint {method} {path} "
                    "is not documented"
                )
        for prefix in sorted(prefixes):
            # A prefix route is documented as e.g. ``GET /jobs/<id>``.
            if not any(
                m == method and p.startswith(prefix) and "<" in p
                for m, p in documented
            ):
                problems.append(
                    f"docs/API.md: served endpoint {method} {prefix}<arg> "
                    "is not documented"
                )
    return problems


def main() -> int:
    files = doc_files()
    broken = [problem for path in files for problem in check_file(path)]
    broken += check_endpoints()
    broken += check_served_documented()
    for problem in broken:
        print(problem, file=sys.stderr)
    print(
        f"checked {len(files)} markdown files + docs/API.md endpoints "
        f"(both directions): "
        f"{'OK' if not broken else f'{len(broken)} problems'}"
    )
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
