#!/usr/bin/env python3
"""Fail CI when README.md / docs/*.md contain broken relative links.

Checks every markdown link and image target in the repo's documentation
set.  External URLs (any scheme) and pure in-page anchors are skipped;
relative targets must resolve to an existing file or directory from the
linking file's location.  Exits 1 listing every broken link.

Run:  python scripts/check_docs_links.py
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Inline markdown links/images: [text](target) / ![alt](target).
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def doc_files() -> list[pathlib.Path]:
    files = sorted(REPO_ROOT.glob("*.md"))
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    return files


def strip_code(text: str) -> str:
    """Drop fenced and inline code spans (their parens are not links)."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def check_file(path: pathlib.Path) -> list[str]:
    broken = []
    for target in LINK.findall(strip_code(path.read_text())):
        if SCHEME.match(target) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            broken.append(
                f"{path.relative_to(REPO_ROOT)}: broken link -> {target}"
            )
    return broken


def main() -> int:
    files = doc_files()
    broken = [problem for path in files for problem in check_file(path)]
    for problem in broken:
        print(problem, file=sys.stderr)
    print(
        f"checked {len(files)} markdown files: "
        f"{'OK' if not broken else f'{len(broken)} broken links'}"
    )
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
