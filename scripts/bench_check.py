#!/usr/bin/env python3
"""Compare the latest bench-history entries against a committed baseline.

``repro.bench.history`` appends one schema-versioned JSON entry per run
to ``benchmarks/history/BENCH_<name>.json``; this script is the other
half of the loop: it reads each history file's newest entry, looks the
bench up in ``benchmarks/history/baseline.json`` and fails (exit 1)
when any metric regressed beyond ``--threshold`` in the direction the
metric itself declares::

    python scripts/bench_check.py                  # gate: exit 1 on regression
    python scripts/bench_check.py --report-only    # CI on shared runners
    python scripts/bench_check.py --update-baseline  # bless current numbers

The baseline maps bench name to its metrics block (same shape history
entries use)::

    {"fig10": {"map_runtime_ms_15": {"value": 1.9, "unit": "ms",
                                     "direction": "lower_is_better"}}}

A ``lower_is_better`` metric regresses when
``value > baseline * (1 + threshold)``; ``higher_is_better`` when
``value < baseline * (1 - threshold)``.  A zero baseline (e.g. an
``errors`` count) therefore flags *any* nonzero lower-is-better value
-- exactly right for error counters.  Metrics present on only one side
are reported but never fail the check, so adding a metric to a bench
does not break the gate until the baseline is re-blessed.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_HISTORY_DIR = REPO_ROOT / "benchmarks" / "history"
DEFAULT_THRESHOLD = 0.20

DIRECTIONS = ("higher_is_better", "lower_is_better")


def _load_json(path: pathlib.Path):
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return None


def _latest_entries(history_dir: pathlib.Path) -> dict[str, dict]:
    """Newest entry per bench name, keyed by name."""
    latest: dict[str, dict] = {}
    for path in sorted(history_dir.glob("BENCH_*.json")):
        entries = _load_json(path)
        if not isinstance(entries, list) or not entries:
            print(f"warning: {path.name} holds no entries", file=sys.stderr)
            continue
        entry = entries[-1]
        if not isinstance(entry, dict) or "metrics" not in entry:
            print(f"warning: {path.name} latest entry is malformed",
                  file=sys.stderr)
            continue
        name = entry.get("name") or path.stem[len("BENCH_"):]
        latest[name] = entry
    return latest


def _is_regression(
    direction: str, value: float, base: float, threshold: float
) -> bool:
    if direction == "lower_is_better":
        return value > base * (1.0 + threshold)
    return value < base * (1.0 - threshold)


def check(
    history_dir: pathlib.Path, baseline_path: pathlib.Path, threshold: float
) -> tuple[list[str], list[str]]:
    """Returns (regressions, notes); empty regressions means pass."""
    baseline = _load_json(baseline_path)
    if not isinstance(baseline, dict):
        return [f"baseline {baseline_path} missing or malformed"], []
    latest = _latest_entries(history_dir)
    regressions: list[str] = []
    notes: list[str] = []
    for name in sorted(set(baseline) | set(latest)):
        base_metrics = baseline.get(name)
        entry = latest.get(name)
        if entry is None:
            notes.append(f"{name}: in baseline but no history entry")
            continue
        if base_metrics is None:
            notes.append(f"{name}: history entry but no baseline (new bench?)")
            continue
        metrics = entry.get("metrics", {})
        rev = entry.get("git_rev", "?")
        for key in sorted(set(base_metrics) | set(metrics)):
            base = base_metrics.get(key)
            current = metrics.get(key)
            if current is None:
                notes.append(f"{name}.{key}: in baseline, missing from run")
                continue
            if base is None:
                notes.append(f"{name}.{key}: new metric, not in baseline")
                continue
            direction = current.get("direction", base.get("direction"))
            if direction not in DIRECTIONS:
                regressions.append(
                    f"{name}.{key}: unknown direction {direction!r}"
                )
                continue
            value, base_value = current.get("value"), base.get("value")
            if not isinstance(value, (int, float)) or not isinstance(
                base_value, (int, float)
            ):
                regressions.append(f"{name}.{key}: non-numeric value")
                continue
            arrow = "<" if direction == "higher_is_better" else ">"
            line = (
                f"{name}.{key} ({rev}): {value:g} {arrow} baseline "
                f"{base_value:g} {current.get('unit', '')} "
                f"(threshold {threshold:.0%})"
            )
            if _is_regression(direction, value, base_value, threshold):
                regressions.append(line)
            else:
                notes.append(
                    f"ok {name}.{key}: {value:g} vs baseline {base_value:g}"
                )
    return regressions, notes


def update_baseline(
    history_dir: pathlib.Path, baseline_path: pathlib.Path
) -> int:
    latest = _latest_entries(history_dir)
    if not latest:
        print(f"error: no BENCH_*.json under {history_dir}", file=sys.stderr)
        return 1
    blessed = {
        name: entry.get("metrics", {}) for name, entry in sorted(latest.items())
    }
    baseline_path.parent.mkdir(parents=True, exist_ok=True)
    baseline_path.write_text(
        json.dumps(blessed, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"baseline updated from {len(blessed)} bench(es): {baseline_path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--history-dir", type=pathlib.Path,
                        default=DEFAULT_HISTORY_DIR)
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        help="default: <history-dir>/baseline.json")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed relative drift (0.20 = 20%%)")
    parser.add_argument("--report-only", action="store_true",
                        help="print the comparison but always exit 0")
    parser.add_argument("--update-baseline", action="store_true",
                        help="bless the latest history entries as baseline")
    parser.add_argument("--verbose", action="store_true",
                        help="also print every passing metric")
    args = parser.parse_args(argv)
    if args.threshold < 0:
        parser.error("--threshold must be >= 0")
    baseline_path = args.baseline or args.history_dir / "baseline.json"
    if args.update_baseline:
        return update_baseline(args.history_dir, baseline_path)
    regressions, notes = check(args.history_dir, baseline_path, args.threshold)
    for note in notes:
        if args.verbose or not note.startswith("ok "):
            print(note)
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}:")
        for line in regressions:
            print(f"  REGRESSION {line}")
        if args.report_only:
            print("(--report-only: exiting 0)")
            return 0
        return 1
    print("bench check: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
