"""End-to-end integration tests: the paper's claims on a small corpus.

These exercise the full pipeline (corpus -> simulated OCR -> storage ->
query evaluation -> metrics) and assert the *shape* of the paper's
results: the recall ordering MAP <= k-MAP <= Staccato <= FullSFA, the
runtime ordering MAP < Staccato < FullSFA, and index/filescan agreement.
"""

import pytest

from repro.bench.harness import CorpusBench
from repro.bench.metrics import evaluate_answers
from repro.bench.workload import queries_for
from repro.db.engine import StaccatoDB
from repro.ocr.corpus import make_ca
from repro.ocr.engine import SimulatedOcrEngine


@pytest.fixture(scope="module")
def bench():
    dataset = make_ca(num_docs=4, lines_per_doc=12)
    return CorpusBench(dataset, SimulatedOcrEngine(seed=20))


def _recall(bench, query, approach, **kwargs):
    result = bench.run(query, approach, **kwargs)
    return result.recall


class TestRecallOrdering:
    def test_regex_recall_bridges_map_to_fullsfa(self, bench):
        """The paper's central claim (Figures 4 and 6): Staccato recall
        lies between MAP and FullSFA, and rises with m."""
        query = queries_for("CA")[6]  # CA7: U.S.C. 2\d\d\d
        recall_map = _recall(bench, query, "map")
        recall_kmap = _recall(bench, query, "kmap", k=10)
        recall_small = _recall(bench, query, "staccato", m=4, k=10)
        recall_large = _recall(bench, query, "staccato", m=24, k=10)
        recall_full = _recall(bench, query, "fullsfa")
        assert recall_full == 1.0
        assert recall_map <= recall_kmap + 1e-9
        assert recall_kmap <= recall_large + 1e-9
        assert recall_small <= recall_large + 1e-9
        assert recall_large <= recall_full + 1e-9
        assert recall_map < recall_full  # the gap actually exists

    def test_keyword_recall_high_for_map(self, bench):
        query = queries_for("CA")[3]  # CA4: President
        assert _recall(bench, query, "map") >= 0.5


class TestRuntimeOrdering:
    def test_map_faster_than_staccato_faster_than_fullsfa(self, bench):
        query = queries_for("CA")[6]
        r_map = bench.run(query, "map")
        r_stac = bench.run(query, "staccato", m=10, k=10)
        r_full = bench.run(query, "fullsfa")
        assert r_map.runtime_s < r_stac.runtime_s < r_full.runtime_s
        # The paper reports ~3 orders of magnitude between MAP and FullSFA;
        # at this tiny scale we still expect a wide gap.
        assert r_full.runtime_s / max(r_map.runtime_s, 1e-9) > 20


class TestPrecisionShape:
    def test_fullsfa_precision_below_map(self, bench):
        """FullSFA returns NumAns answers (everything matches a little),
        so its precision is far below MAP's (paper Table 4)."""
        query = queries_for("CA")[3]
        p_map = bench.run(query, "map").precision
        p_full = bench.run(query, "fullsfa").precision
        assert p_full < p_map


class TestDbIntegration:
    def test_db_and_memory_agree(self):
        dataset = make_ca(num_docs=2, lines_per_doc=6)
        engine = SimulatedOcrEngine(seed=21)
        mem = CorpusBench(dataset, engine)
        db = StaccatoDB(k=6, m=8)
        db.ingest(dataset, engine)
        pattern = "%President%"
        mem_answers, _ = mem.search(pattern, "fullsfa")
        db_answers = db.search(pattern, approach="fullsfa")
        assert {a.line_id for a in db_answers} == {
            a.line_id for a in mem_answers
        }
        mem_probs = {a.line_id: a.probability for a in mem_answers}
        for answer in db_answers:
            assert answer.probability == pytest.approx(mem_probs[answer.line_id])
        db.close()

    def test_full_quality_loop(self):
        dataset = make_ca(num_docs=2, lines_per_doc=6)
        db = StaccatoDB(k=6, m=8)
        db.ingest(dataset, SimulatedOcrEngine(seed=22))
        pattern = r"REGEX:Public Law (8|9)\d"
        truth = db.ground_truth_matches(pattern)
        answers = db.search(pattern, approach="fullsfa")
        metrics = evaluate_answers({a.line_id for a in answers}, truth)
        assert metrics.recall == 1.0
        db.close()
