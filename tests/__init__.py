"""Test package marker.

Several test modules import shared hypothesis strategies with a relative
import (``from .strategies import dag_sfas``); this file makes ``tests``
a proper package so those imports resolve under pytest's rootdir-based
collection.
"""
