"""Tests for cost-based plan selection (repro.db.planner)."""

import pytest

from repro.db.engine import StaccatoDB
from repro.db.planner import QueryPlan, choose_plan, execute_plan
from repro.ocr.corpus import make_ca
from repro.ocr.engine import SimulatedOcrEngine
from repro.ocr.noise import NoiseModel


@pytest.fixture(scope="module")
def planned_db():
    db = StaccatoDB(k=6, m=8)
    db.ingest(
        make_ca(num_docs=3, lines_per_doc=6),
        SimulatedOcrEngine(NoiseModel(tail_mass=0.0), seed=61),
    )
    db.build_index(["public", "law", "the", "president", "congress"])
    yield db
    db.close()


class TestChoosePlan:
    def test_no_index_scans(self):
        db = StaccatoDB()
        plan = choose_plan(db, "%anything%")
        assert plan.kind == "scan"
        assert "no index" in plan.reason
        db.close()

    def test_unanchored_scans(self, planned_db):
        plan = choose_plan(planned_db, r"REGEX:(8|9)\d")
        assert plan.kind == "scan"
        assert plan.anchor is None

    def test_selective_anchor_probes(self, planned_db):
        plan = choose_plan(planned_db, r"REGEX:Public Law (8|9)\d")
        assert plan.kind == "index"
        assert plan.anchor == "public"
        assert plan.selectivity is not None
        assert plan.selectivity <= 1.0

    def test_saturated_anchor_scans(self, planned_db):
        # 'the' appears in essentially every line of the corpus.
        selectivity = planned_db.index_selectivity("the")
        plan = choose_plan(
            planned_db, "%the President%", threshold=selectivity - 0.01
        )
        assert plan.kind == "scan"
        assert plan.anchor == "the"

    def test_threshold_boundary(self, planned_db):
        selectivity = planned_db.index_selectivity("public")
        probe = choose_plan(
            planned_db, r"REGEX:Public Law (8|9)\d", threshold=selectivity + 0.01
        )
        scan = choose_plan(
            planned_db, r"REGEX:Public Law (8|9)\d", threshold=selectivity - 0.01
        )
        assert probe.kind == "index"
        assert scan.kind == "scan"


class TestExecutePlan:
    def test_plans_agree_on_answers(self, planned_db):
        like = r"REGEX:Public Law (8|9)\d"
        plan, answers = execute_plan(planned_db, like)
        scan_answers = planned_db.search(like, approach="staccato")
        assert isinstance(plan, QueryPlan)
        assert {a.line_id for a in answers} == {a.line_id for a in scan_answers}

    def test_scan_plan_executes(self, planned_db):
        plan, answers = execute_plan(planned_db, r"REGEX:(8|9)\d")
        assert plan.kind == "scan"
        assert isinstance(answers, list)
