"""Tests for inverted indexing, projection and anchors (repro.indexing)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.trie import DictionaryTrie
from repro.core.approximate import staccato_approximate
from repro.indexing.anchors import anchor_for_query, left_anchor_word
from repro.indexing.direct import (
    direct_posting_count,
    direct_posting_count_enumerated,
)
from repro.indexing.inverted import build_kmap_postings, build_sfa_postings
from repro.indexing.postings import Posting, PostingIndex
from repro.indexing.projection import (
    projected_match_probability,
    projection_nodes,
)
from repro.query.like import compile_like
from repro.sfa import ops
from repro.sfa.builder import chain_sfa, from_string

from .strategies import dag_sfas


class TestBuildSfaPostings:
    def test_single_edge_term(self):
        sfa = from_string("the law stands")
        trie = DictionaryTrie(["law"])
        postings = build_sfa_postings(sfa, trie)
        assert set(postings) == {"law"}
        # Character-level SFA: the term starts on the edge of its first char.
        (posting,) = postings["law"]
        assert posting.u == 4  # 'l' is text[4], edge (4, 5)

    def test_term_straddles_chunks(self, figure3):
        """Terms crossing edge boundaries are found via augmented states."""
        from repro.core.chunks import collapse, find_min_sfa

        region = find_min_sfa(figure3, {2, 3, 5})
        chunked = collapse(figure3, region, k=2)  # 'a','b' then 'cd'/'ef'
        trie = DictionaryTrie(["abcd", "bc", "aef"])
        postings = build_sfa_postings(chunked, trie)
        assert "abcd" in postings
        assert "bc" in postings
        assert "aef" in postings

    def test_multiple_occurrences(self):
        sfa = from_string("law and law")
        postings = build_sfa_postings(sfa, DictionaryTrie(["law"]))
        assert len(postings["law"]) == 2

    def test_case_insensitive(self):
        sfa = from_string("The LAW")
        postings = build_sfa_postings(sfa, DictionaryTrie(["Law"]))
        assert len(postings["law"]) == 1

    def test_posting_records_start_location(self):
        # Chunked SFA where the term starts mid-string on an edge.
        sfa = chain_sfa([[("xxlaw", 1.0)]])
        postings = build_sfa_postings(sfa, DictionaryTrie(["law"]))
        (posting,) = postings["law"]
        assert posting.offset == 2
        assert posting.rank == 0

    @given(dag_sfas(min_length=4, max_length=8), st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_agrees_with_enumeration(self, sfa, m):
        """A term is indexed iff some stored string contains it."""
        approx = staccato_approximate(sfa, m=m, k=2)
        terms = ["ab", "ba", "aa", "cab"]
        trie = DictionaryTrie(terms)
        postings = build_sfa_postings(approx, trie)
        strings = set(ops.string_distribution(approx))
        for term in terms:
            contained = any(term in s.lower() for s in strings)
            assert (term in postings) == contained, (term, sorted(strings))


class TestBuildKmapPostings:
    def test_offsets(self):
        strings = [("public law", 0.6), ("pub1ic law", 0.4)]
        postings = build_kmap_postings(strings, DictionaryTrie(["law", "public"]))
        assert {p.rank for p in postings["law"]} == {0, 1}
        assert {p.offset for p in postings["law"]} == {7}
        assert len(postings["public"]) == 1  # only rank 0 spells it


class TestPostingIndex:
    def test_merge_and_query(self):
        index = PostingIndex()
        index.add("law", 7, Posting(0, 1, 0, 3))
        index.merge_line(8, {"law": {Posting(2, 3, 1, 0)}})
        lines = index.lines_for("law")
        assert set(lines) == {7, 8}
        assert index.num_postings() == 2
        assert index.terms() == ["law"]

    def test_selectivity(self):
        index = PostingIndex()
        index.add("law", 1, Posting(0, 1, 0, 0))
        index.add("law", 2, Posting(0, 1, 0, 0))
        assert index.selectivity("law", 10) == pytest.approx(0.2)
        assert index.selectivity("none", 10) == 0.0
        assert index.selectivity("law", 0) == 0.0


class TestDirectPostingCount:
    def test_simple_chain(self):
        sfa = from_string("ab cd")
        assert direct_posting_count(sfa) == 2  # one string, two tokens

    @given(dag_sfas(min_length=3, max_length=8))
    @settings(max_examples=30, deadline=None)
    def test_dp_equals_enumeration(self, sfa):
        assert direct_posting_count(sfa) == direct_posting_count_enumerated(sfa)

    def test_exponential_growth_in_chunks(self):
        # k strings per chunk, m chunks, every string one token:
        # postings = k**m (paths) * m... verify growth is super-linear.
        def chunked(m):
            return chain_sfa(
                [[("ab", 0.5), ("cd", 0.3), ("ef", 0.2)]] * m
            )

        counts = [direct_posting_count(chunked(m)) for m in (1, 3, 5, 7)]
        ratios = [b / a for a, b in zip(counts, counts[1:])]
        assert all(r > 4 for r in ratios)  # ~9x per two chunks

    def test_spaces_split_tokens(self):
        sfa = chain_sfa([[("a b", 0.5), ("ab", 0.5)]])
        # 'a b' has two tokens, 'ab' one -> 3 postings total.
        assert direct_posting_count(sfa) == 3


class TestAnchors:
    def test_left_anchor_extraction(self):
        assert left_anchor_word(r"Public Law (8|9)\d") == "public"
        assert left_anchor_word(r"United States (\x)*") == "united"

    def test_unanchored_patterns(self):
        assert left_anchor_word(r"(no|num).(2|8)") is None
        assert left_anchor_word(r"\d\d") is None
        assert left_anchor_word(r"President") is None  # no complete word

    def test_anchor_for_query_requires_dictionary(self):
        trie = DictionaryTrie(["public"])
        assert anchor_for_query(r"REGEX:Public Law (8|9)\d", trie) == "public"
        assert anchor_for_query(r"REGEX:Secret Act (8|9)\d", trie) is None

    def test_anchor_for_like_query(self):
        trie = DictionaryTrie(["united"])
        assert anchor_for_query("%United States%", trie) == "united"


class TestProjection:
    def test_projection_nodes_depth(self):
        sfa = from_string("abcdef")
        assert projection_nodes(sfa, 0, 2) == {0, 1, 2}
        assert projection_nodes(sfa, 3, 100) == {3, 4, 5, 6}

    def test_projected_probability_matches_full_for_anchored(self):
        from repro.query.eval_sfa import match_probability

        sfa = from_string("xx public law 85 yy")
        trie = DictionaryTrie(["public"])
        postings = build_sfa_postings(sfa, trie)["public"]
        query = compile_like(r"REGEX:public law 8\d")
        full = match_probability(sfa, query)
        proj = projected_match_probability(sfa, query, postings, window=16)
        assert proj == pytest.approx(full)

    def test_short_window_misses(self):
        sfa = from_string("public law 85")
        trie = DictionaryTrie(["public"])
        postings = build_sfa_postings(sfa, trie)["public"]
        query = compile_like(r"REGEX:public law 8\d")
        assert projected_match_probability(sfa, query, postings, window=4) == 0.0

    def test_empty_postings(self):
        sfa = from_string("abc")
        assert projected_match_probability(
            sfa, compile_like("%a%"), set(), window=5
        ) == 0.0

    def test_rejects_exact_match_queries(self):
        sfa = from_string("abc")
        query = compile_like("abc")  # whole-string LIKE, not match-anywhere
        with pytest.raises(ValueError):
            projected_match_probability(
                sfa, query, {Posting(0, 1, 0, 0)}, window=3
            )
