"""Tests for the SFA BLOB / JSON codecs (repro.sfa.serialize)."""

import pytest
from hypothesis import given, settings

from repro.sfa import serialize
from repro.sfa.model import SfaError

from .strategies import dag_sfas


class TestBinaryRoundTrip:
    def test_figure1(self, figure1):
        blob = serialize.to_bytes(figure1)
        assert serialize.from_bytes(blob).structurally_equal(figure1)

    @given(dag_sfas())
    @settings(max_examples=40, deadline=None)
    def test_random_sfas(self, sfa):
        assert serialize.from_bytes(serialize.to_bytes(sfa)).structurally_equal(sfa)

    def test_unicode_emissions(self, figure1):
        clone = figure1.copy()
        clone.replace_emissions(0, 1, [("éß", 0.8), ("T", 0.2)])
        blob = serialize.to_bytes(clone)
        assert serialize.from_bytes(blob).structurally_equal(clone)

    def test_blob_size_matches(self, figure1):
        assert serialize.blob_size(figure1) == len(serialize.to_bytes(figure1))

    @given(dag_sfas())
    @settings(max_examples=20, deadline=None)
    def test_blob_size_matches_random(self, sfa):
        assert serialize.blob_size(sfa) == len(serialize.to_bytes(sfa))


class TestBinaryErrors:
    def test_bad_magic(self, figure1):
        blob = bytearray(serialize.to_bytes(figure1))
        blob[0:4] = b"XXXX"
        with pytest.raises(SfaError):
            serialize.from_bytes(bytes(blob))

    def test_truncated(self, figure1):
        blob = serialize.to_bytes(figure1)
        with pytest.raises(SfaError):
            serialize.from_bytes(blob[:10])

    def test_trailing_garbage(self, figure1):
        blob = serialize.to_bytes(figure1) + b"\x00"
        with pytest.raises(SfaError):
            serialize.from_bytes(blob)


class TestJsonRoundTrip:
    def test_figure1(self, figure1):
        text = serialize.to_json(figure1)
        assert serialize.from_json(text).structurally_equal(figure1)

    @given(dag_sfas())
    @settings(max_examples=20, deadline=None)
    def test_random_sfas(self, sfa):
        assert serialize.from_json(serialize.to_json(sfa)).structurally_equal(sfa)
