"""Unit tests for the SFA data model (repro.sfa.model)."""

import pytest

from repro.sfa.model import Emission, Sfa, SfaError


class TestEmission:
    def test_fields(self):
        e = Emission("ab", 0.5)
        assert e.string == "ab"
        assert e.prob == 0.5

    def test_empty_string_rejected(self):
        with pytest.raises(SfaError):
            Emission("", 0.5)

    def test_probability_bounds(self):
        with pytest.raises(SfaError):
            Emission("a", -0.1)
        with pytest.raises(SfaError):
            Emission("a", 1.5)

    def test_boundary_probabilities_allowed(self):
        assert Emission("a", 0.0).prob == 0.0
        assert Emission("a", 1.0).prob == 1.0


class TestSfaConstruction:
    def test_start_final_distinct(self):
        with pytest.raises(SfaError):
            Sfa(start=3, final=3)

    def test_add_edge_creates_nodes(self):
        sfa = Sfa(0, 2)
        sfa.add_edge(0, 1, [("a", 1.0)])
        sfa.add_edge(1, 2, [("b", 1.0)])
        assert set(sfa.nodes) == {0, 1, 2}
        assert sfa.num_edges == 2

    def test_no_self_loops(self):
        sfa = Sfa(0, 1)
        with pytest.raises(SfaError):
            sfa.add_edge(1, 1, [("a", 1.0)])

    def test_no_duplicate_edges(self):
        sfa = Sfa(0, 1)
        sfa.add_edge(0, 1, [("a", 1.0)])
        with pytest.raises(SfaError):
            sfa.add_edge(0, 1, [("b", 1.0)])

    def test_edge_needs_emissions(self):
        sfa = Sfa(0, 1)
        with pytest.raises(SfaError):
            sfa.add_edge(0, 1, [])

    def test_emissions_sorted_by_probability(self):
        sfa = Sfa(0, 1)
        sfa.add_edge(0, 1, [("low", 0.1), ("high", 0.7), ("mid", 0.2)])
        strings = [e.string for e in sfa.emissions(0, 1)]
        assert strings == ["high", "mid", "low"]

    def test_emission_tie_broken_by_string(self):
        sfa = Sfa(0, 1)
        sfa.add_edge(0, 1, [("b", 0.5), ("a", 0.5)])
        strings = [e.string for e in sfa.emissions(0, 1)]
        assert strings == ["a", "b"]

    def test_duplicate_strings_merge(self):
        sfa = Sfa(0, 1)
        sfa.add_edge(0, 1, [("a", 0.3), ("a", 0.2), ("b", 0.4)])
        emissions = {e.string: e.prob for e in sfa.emissions(0, 1)}
        assert emissions == pytest.approx({"a": 0.5, "b": 0.4})

    def test_fresh_node(self):
        sfa = Sfa(0, 5)
        node = sfa.fresh_node()
        assert node == 6
        assert sfa.has_node(6)


class TestSfaMutation:
    def _diamond(self) -> Sfa:
        sfa = Sfa(0, 3)
        sfa.add_edge(0, 1, [("a", 0.5)])
        sfa.add_edge(0, 2, [("b", 0.5)])
        sfa.add_edge(1, 3, [("c", 1.0)])
        sfa.add_edge(2, 3, [("d", 1.0)])
        return sfa

    def test_remove_edge(self):
        sfa = self._diamond()
        sfa.remove_edge(0, 1)
        assert not sfa.has_edge(0, 1)
        assert sfa.num_edges == 3
        assert 1 not in sfa.successors(0)

    def test_remove_missing_edge(self):
        sfa = self._diamond()
        with pytest.raises(SfaError):
            sfa.remove_edge(1, 2)

    def test_remove_node_drops_incident_edges(self):
        sfa = self._diamond()
        sfa.remove_node(1)
        assert not sfa.has_node(1)
        assert not sfa.has_edge(0, 1)
        assert not sfa.has_edge(1, 3)
        assert sfa.num_edges == 2

    def test_cannot_remove_start_or_final(self):
        sfa = self._diamond()
        with pytest.raises(SfaError):
            sfa.remove_node(0)
        with pytest.raises(SfaError):
            sfa.remove_node(3)

    def test_replace_emissions(self):
        sfa = self._diamond()
        sfa.replace_emissions(0, 1, [("z", 0.9)])
        assert [e.string for e in sfa.emissions(0, 1)] == ["z"]

    def test_edge_mass(self):
        sfa = Sfa(0, 1)
        sfa.add_edge(0, 1, [("a", 0.3), ("b", 0.45)])
        assert sfa.edge_mass(0, 1) == pytest.approx(0.75)


class TestSfaInspection:
    def test_degrees(self, figure1):
        assert figure1.out_degree(2) == 2
        assert figure1.in_degree(4) == 2
        assert figure1.in_degree(0) == 0
        assert figure1.out_degree(5) == 0

    def test_iter_edge_emissions(self, figure1):
        triples = list(figure1.iter_edge_emissions())
        assert len(triples) == figure1.num_emissions()
        assert all(isinstance(e, Emission) for _, _, e in triples)

    def test_num_emissions(self, figure1):
        assert figure1.num_emissions() == 10

    def test_max_strings_per_edge(self, figure1):
        assert figure1.max_strings_per_edge() == 2
        assert Sfa(0, 1).max_strings_per_edge() == 0

    def test_no_copy_views_alias_internal_state(self, figure1):
        assert figure1.succ(0) is figure1.succ(0)
        assert figure1.successors(0) is not figure1.successors(0)


class TestCopyAndEquality:
    def test_copy_is_deep_structurally(self, figure1):
        clone = figure1.copy()
        assert clone.structurally_equal(figure1)
        clone.remove_edge(0, 1)
        assert not clone.structurally_equal(figure1)
        assert figure1.has_edge(0, 1)

    def test_structural_inequality_on_probability(self, figure1):
        clone = figure1.copy()
        clone.replace_emissions(4, 5, [("d", 0.8), ("3", 0.2)])
        assert not clone.structurally_equal(figure1)

    def test_repr(self, figure1):
        text = repr(figure1)
        assert "nodes=6" in text
        assert "edges=6" in text
