"""Tests for the shard router (repro.service.shards).

The acceptance bar: a 2-shard service must answer queries with results
*identical* -- same answers, same ranking -- to a single-database
service over the same corpus.  Unit tests cover routing and merging;
the live tests run both topologies (the sharded one over real HTTP)
against the same corpus, and exercise routed ingest with per-shard
cache invalidation plus the ``POST /index`` round-trip.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.service_load import get_json, post_json
from repro.db.engine import (
    StaccatoDB,
    discover_shard_paths,
    shard_path,
    shard_paths,
)
from repro.db.sql import merge_shard_rows, parse_select, shard_select
from repro.ocr.corpus import make_ca
from repro.query.answers import Answer
from repro.service import QueryService, start_sharded_service
from repro.service.shards import DEFAULT_RANGE_WIDTH, merge_ranked, shard_for_doc

K, M = 4, 6
NUM_SHARDS = 2
#: Small enough that a handful of consecutive DocIds spread over both shards.
RANGE_WIDTH = 2


# ----------------------------------------------------------------------
class TestRouting:
    def test_range_striping(self):
        width = 4
        for doc_id in range(32):
            expected = (doc_id // width) % 3
            assert shard_for_doc(doc_id, 3, width) == expected

    def test_whole_range_shares_a_shard(self):
        first = shard_for_doc(0, 4)
        assert all(
            shard_for_doc(i, 4) == first for i in range(DEFAULT_RANGE_WIDTH)
        )
        assert shard_for_doc(DEFAULT_RANGE_WIDTH, 4) != first

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            shard_for_doc(1, 0)
        with pytest.raises(ValueError):
            shard_for_doc(1, 2, range_width=0)

    def test_shard_paths_are_canonical_and_discoverable(self, tmp_path):
        paths = shard_paths(str(tmp_path), 3)
        assert paths == [shard_path(str(tmp_path), i) for i in range(3)]
        for path in paths:
            StaccatoDB(path).close()
        assert discover_shard_paths(str(tmp_path)) == paths


class TestMergeRanked:
    def test_probability_then_docid_lineno(self):
        a = [Answer(0, 5, 0, 0.9), Answer(1, 5, 1, 0.4)]
        b = [Answer(0, 2, 0, 0.9), Answer(1, 9, 0, 0.6)]
        merged = merge_ranked([(0, a), (1, b)], num_ans=None)
        assert [(s, x.doc_id, x.probability) for s, x in merged] == [
            (1, 2, 0.9),
            (0, 5, 0.9),
            (1, 9, 0.6),
            (0, 5, 0.4),
        ]

    def test_num_ans_cutoff(self):
        a = [Answer(i, i, 0, 1.0 - i / 10) for i in range(5)]
        merged = merge_ranked([(0, a)], num_ans=2)
        assert len(merged) == 2

    def test_duplicate_lines_collapse_to_lowest_shard(self):
        # The same (DocId, LineNo) from two shards happens only while a
        # rebalance has copied a line to the target but not yet deleted
        # it from the source (copies carry identical probabilities).
        # The merge de-duplicates, keeping the sort-order first (lowest
        # shard index), no matter which fan-out leg delivered first.
        tie = Answer(0, 5, 1, 0.5)
        forward = merge_ranked([(0, [tie]), (1, [tie])], num_ans=None)
        reverse = merge_ranked([(1, [tie]), (0, [tie])], num_ans=None)
        assert forward == reverse
        assert [shard for shard, _ in forward] == [0]

    def test_distinct_lines_same_probability_all_survive(self):
        # De-duplication is by (DocId, LineNo), never by probability:
        # genuine ties between different lines keep every row.
        a = Answer(0, 5, 1, 0.5)
        b = Answer(0, 5, 2, 0.5)
        merged = merge_ranked([(0, [a]), (1, [b])], num_ans=None)
        assert [(s, x.line_no) for s, x in merged] == [(0, 1), (1, 2)]


class TestShardSelectPlan:
    def test_avg_needs_count_and_sum(self):
        parsed = parse_select("SELECT AVG(Loss) FROM Claims")
        base = shard_select(parsed)
        assert base.aggregates == [("count", "*"), ("sum", "Loss")]
        assert base.limit is None

    def test_projection_widens_to_star_without_cutoffs(self):
        parsed = parse_select(
            "SELECT DocId FROM Claims WHERE Year = 2010 "
            "AND DocData LIKE '%x%' ORDER BY Loss DESC LIMIT 3"
        )
        base = shard_select(parsed)
        assert base.columns == ["*"]
        assert base.order_by is None and base.limit is None
        assert base.scalar_predicates == parsed.scalar_predicates
        assert base.like_patterns == parsed.like_patterns

    def test_merge_applies_order_limit_and_projection(self):
        parsed = parse_select(
            "SELECT DocId FROM Claims ORDER BY Loss DESC LIMIT 2"
        )
        shard_rows = [
            [
                {"DocId": 1, "DocName": "a", "Year": 1, "Loss": 5.0,
                 "Probability": 0.5},
            ],
            [
                {"DocId": 2, "DocName": "b", "Year": 1, "Loss": 9.0,
                 "Probability": 0.1},
                {"DocId": 3, "DocName": "c", "Year": 1, "Loss": 1.0,
                 "Probability": 0.9},
            ],
        ]
        rows = merge_shard_rows(parsed, shard_rows, num_ans=100)
        assert rows == [
            {"DocId": 2, "Probability": 0.1},
            {"DocId": 1, "Probability": 0.5},
        ]


# ----------------------------------------------------------------------
def _batch_payload(corpus) -> dict:
    return {
        "dataset": corpus.name,
        "documents": [
            {
                "doc_id": doc.doc_id,
                "name": doc.name,
                "year": doc.year,
                "loss": doc.loss,
                "lines": list(doc.lines),
            }
            for doc in corpus.documents
        ],
        "ocr_seed": 0,
    }


@pytest.fixture(scope="module")
def corpus():
    return make_ca(num_docs=4, lines_per_doc=3, seed=1)


@pytest.fixture(scope="module")
def single(tmp_path_factory, corpus):
    """An in-process single-database service over the whole corpus."""
    db_path = str(tmp_path_factory.mktemp("single") / "ca.db")
    service = QueryService(db_path, k=K, m=M, pool_size=2)
    service.ingest(_batch_payload(corpus))
    yield service
    service.close()


@pytest.fixture(scope="module")
def cluster(tmp_path_factory, corpus):
    """A live 2-shard HTTP service over the same corpus."""
    shard_dir = str(tmp_path_factory.mktemp("cluster") / "shards")
    running = start_sharded_service(
        shard_dir,
        NUM_SHARDS,
        k=K,
        m=M,
        pool_size=2,
        cache_size=64,
        range_width=RANGE_WIDTH,
    )
    status, reply = post_json(
        running.base_url, "/ingest", _batch_payload(corpus)
    )
    assert status == 200 and reply["ingested_lines"] == corpus.num_lines
    yield running
    running.stop()


def _rows(answers) -> list[tuple[int, int, float]]:
    return [
        (a["doc_id"], a["line_no"], pytest.approx(a["probability"]))
        for a in answers
    ]


class TestCrossShardSearch:
    @pytest.mark.parametrize("pattern", ["%Congress%", "%Law%", "%President%"])
    def test_merged_ranking_matches_single_db(self, single, cluster, pattern):
        query = {"pattern": pattern, "approach": "staccato", "num_ans": 20}
        expected = single.search(query)
        status, body = post_json(cluster.base_url, "/search", query)
        assert status == 200
        assert body["count"] == expected["count"]
        assert _rows(expected["answers"]) == [
            (a["doc_id"], a["line_no"], a["probability"])
            for a in body["answers"]
        ]

    def test_answers_tag_their_shard(self, cluster, corpus):
        status, body = post_json(
            cluster.base_url, "/search", {"pattern": "%Congress%"}
        )
        assert status == 200 and body["answers"]
        for answer in body["answers"]:
            assert answer["shard"] == shard_for_doc(
                answer["doc_id"], NUM_SHARDS, RANGE_WIDTH
            )

    def test_docs_land_on_both_shards(self, cluster, corpus):
        owners = {
            shard_for_doc(d.doc_id, NUM_SHARDS, RANGE_WIDTH)
            for d in corpus.documents
        }
        assert owners == set(range(NUM_SHARDS))

    def test_shard_scope_restricts_results(self, cluster, corpus):
        status, full = post_json(
            cluster.base_url, "/search", {"pattern": "%the%", "num_ans": 50}
        )
        assert status == 200
        status, scoped = post_json(
            cluster.base_url,
            "/search",
            {"pattern": "%the%", "num_ans": 50, "shards": [0]},
        )
        assert status == 200
        assert scoped["shards"] == [0]
        assert all(a["shard"] == 0 for a in scoped["answers"])
        assert [a for a in full["answers"] if a["shard"] == 0] == scoped[
            "answers"
        ]

    def test_unknown_shard_scope_rejected(self, cluster):
        status, body = post_json(
            cluster.base_url,
            "/search",
            {"pattern": "%x%", "shards": [NUM_SHARDS + 3]},
        )
        assert status == 400
        assert body["error"]["code"] == "unknown_shard"


class TestCrossShardSql:
    def test_projection_matches_single_db(self, single, cluster):
        sql = "SELECT DocId, Loss FROM Claims WHERE DocData LIKE '%Congress%'"
        expected = single.sql({"query": sql})
        status, body = post_json(cluster.base_url, "/sql", {"query": sql})
        assert status == 200
        assert body["count"] == expected["count"]
        for got, want in zip(body["rows"], expected["rows"]):
            assert got["DocId"] == want["DocId"]
            assert got["Loss"] == want["Loss"]
            assert got["Probability"] == pytest.approx(want["Probability"])

    def test_expected_aggregates_merge_exactly(self, single, cluster):
        sql = (
            "SELECT COUNT(*), SUM(Loss), AVG(Loss) FROM Claims "
            "WHERE DocData LIKE '%the%'"
        )
        (want,) = single.sql({"query": sql})["rows"]
        status, body = post_json(cluster.base_url, "/sql", {"query": sql})
        assert status == 200
        (got,) = body["rows"]
        for key in ("COUNT(*)", "SUM(Loss)", "AVG(Loss)"):
            assert got[key] == pytest.approx(want[key])

    def test_order_by_limit_matches_single_db(self, single, cluster):
        sql = "SELECT DocId FROM Claims ORDER BY Loss DESC LIMIT 2"
        expected = single.sql({"query": sql})
        status, body = post_json(cluster.base_url, "/sql", {"query": sql})
        assert status == 200
        assert body["rows"] == [
            {**row, "Probability": pytest.approx(row["Probability"])}
            for row in expected["rows"]
        ]

    def test_sql_error_is_structured(self, cluster):
        status, body = post_json(
            cluster.base_url, "/sql", {"query": "DELETE FROM Claims"}
        )
        assert status == 400
        assert body["error"]["code"] == "sql_error"

    def test_unknown_projection_column_is_400_not_500(self, cluster):
        # The widened per-shard plan selects *, so the bad column only
        # surfaces at merge time -- it must still map to sql_error.
        status, body = post_json(
            cluster.base_url, "/sql", {"query": "SELECT Bogus FROM Claims"}
        )
        assert status == 400
        assert body["error"]["code"] == "sql_error"


class TestIndexEndpoint:
    # NOTE: runs before TestRoutedIngest -- the cross-topology
    # comparisons below need `single` and `cluster` to still hold the
    # same corpus, and the routed-ingest tests grow only the cluster.
    def test_index_round_trip_matches_single_db(self, single, cluster):
        terms = ["public", "law", "congress", "president"]
        pattern = r"REGEX:Public Law (8|9)\d"
        query = {"pattern": pattern, "plan": "indexed", "num_ans": 20}

        # POST /index is a rebuild_index job now; "wait": true keeps the
        # synchronous response shape (plus the job id) for clients that
        # want it.
        status, reply = post_json(
            cluster.base_url, "/index", {"terms": terms, "wait": True}
        )
        assert status == 200
        assert reply["approach"] == "staccato"
        assert reply["job_id"]
        assert set(reply["shards"]) == {"0", "1"}
        assert all(s["reloaded"] for s in reply["shards"].values())

        expected = single.index({"terms": terms})
        assert expected["postings"] == reply["postings"]
        want = single.search(query)

        status, body = post_json(cluster.base_url, "/search", query)
        assert status == 200
        assert body["plan"] == "indexed"
        assert _rows(want["answers"]) == [
            (a["doc_id"], a["line_no"], a["probability"])
            for a in body["answers"]
        ]

    def test_index_rebuild_invalidates_cached_plans(self, cluster):
        query = {"pattern": "%employment%"}
        post_json(cluster.base_url, "/search", query)
        _, cached = post_json(cluster.base_url, "/search", query)
        assert cached["cached"] is True
        # Default (no wait): 202 + the queued job row; poll to completion.
        status, job = post_json(
            cluster.base_url, "/index", {"terms": ["employment"]}
        )
        assert status == 202
        assert job["type"] == "rebuild_index"
        deadline = time.time() + 30
        while time.time() < deadline:
            _, row = get_json(cluster.base_url, f"/jobs/{job['id']}")
            if row["state"] not in ("queued", "running"):
                break
            time.sleep(0.02)
        assert row["state"] == "succeeded", row
        _, after = post_json(cluster.base_url, "/search", query)
        assert after["cached"] is False

    def test_index_validation(self, cluster):
        status, body = post_json(cluster.base_url, "/index", {"terms": []})
        assert status == 400
        status, body = post_json(
            cluster.base_url,
            "/index",
            {"terms": ["ok"], "approach": "fullsfa"},
        )
        assert status == 400 and "approach" in body["error"]["message"]


class TestRoutedIngest:
    def test_ingest_lands_on_owning_shard(self, cluster):
        doc_id = 2 * RANGE_WIDTH * NUM_SHARDS + 1  # owner: shard 0
        owner = shard_for_doc(doc_id, NUM_SHARDS, RANGE_WIDTH)
        batch = {
            "dataset": "routed",
            "documents": [
                {"doc_id": doc_id, "lines": ["The Senate confirmed the bill"]}
            ],
        }
        status, reply = post_json(cluster.base_url, "/ingest", batch)
        assert status == 200
        assert set(reply["shards"]) == {str(owner)}
        # The document's line really is in the owning shard file and in
        # no other (verified via ATTACH from one inspection connection).
        inspector = StaccatoDB(
            shard_path(cluster.service.shard_dir, 0), check_same_thread=False
        )
        try:
            inspector.attach(
                shard_path(cluster.service.shard_dir, 1), "shard1"
            )
            per_shard = {
                0: inspector.conn.execute(
                    "SELECT COUNT(*) FROM MasterData WHERE DocId = ?",
                    (doc_id,),
                ).fetchone()[0],
                1: inspector.conn.execute(
                    "SELECT COUNT(*) FROM shard1.MasterData WHERE DocId = ?",
                    (doc_id,),
                ).fetchone()[0],
            }
        finally:
            inspector.detach("shard1")
            inspector.close()
        assert per_shard[owner] == 1
        assert per_shard[1 - owner] == 0

    def test_ingest_invalidates_only_owning_shards_entries(self, cluster):
        scoped = {"pattern": "%annual%", "shards": [0]}
        full = {"pattern": "%annual%"}
        post_json(cluster.base_url, "/search", scoped)
        post_json(cluster.base_url, "/search", full)
        _, again = post_json(cluster.base_url, "/search", scoped)
        assert again["cached"] is True
        # Ingest a document owned by shard 1 only.
        doc_id = RANGE_WIDTH  # (RANGE_WIDTH // RANGE_WIDTH) % 2 == 1
        assert shard_for_doc(doc_id, NUM_SHARDS, RANGE_WIDTH) == 1
        batch = {
            "dataset": "invalidation",
            "documents": [
                {"doc_id": doc_id, "lines": ["the annual appropriation"]}
            ],
        }
        status, reply = post_json(cluster.base_url, "/ingest", batch)
        assert status == 200 and set(reply["shards"]) == {"1"}
        # Shard-0-scoped entry survives; the full-fan-out entry does not.
        _, scoped_after = post_json(cluster.base_url, "/search", scoped)
        assert scoped_after["cached"] is True
        _, full_after = post_json(cluster.base_url, "/search", full)
        assert full_after["cached"] is False
        assert any(a["doc_id"] == doc_id for a in full_after["answers"])

    def test_partial_failure_still_invalidates_committed_shards(self, tmp_path):
        """A failing shard leg must not mask another shard's commit.

        If shard 1's write fails after shard 0's landed, shard 0's
        generation must still advance (and its cached entries drop), or
        readers would keep serving pre-batch answers for data that is
        now visibly different.
        """
        from repro.service.shards import ShardedQueryService

        with ShardedQueryService(
            str(tmp_path / "partial"), 2, k=K, m=M, pool_size=1, range_width=1
        ) as service:
            service.ingest(
                {
                    "dataset": "seed",
                    "documents": [
                        {"doc_id": 0, "lines": ["the annual budget"]},
                        {"doc_id": 1, "lines": ["the annual report"]},
                    ],
                }
            )
            first = service.search({"pattern": "%annual%"})
            assert service.search({"pattern": "%annual%"})["cached"] is True

            broken = service.pool.shard(1).writer
            def explode(*args, **kwargs):
                raise RuntimeError("disk full")
            broken.ingest = explode
            with pytest.raises(RuntimeError, match="disk full"):
                service.ingest(
                    {
                        "dataset": "split",
                        "documents": [
                            {"doc_id": 2, "lines": ["the annual review"]},
                            {"doc_id": 3, "lines": ["never lands"]},
                        ],
                    }
                )
            after = service.search({"pattern": "%annual%"})
            assert after["cached"] is False
            assert any(a["doc_id"] == 2 for a in after["answers"])
            assert after["count"] == first["count"] + 1

    def test_round_robin_route_spreads_docs(self, tmp_path):
        from repro.service.shards import ShardedQueryService

        with ShardedQueryService(
            str(tmp_path / "rr"), 2, k=K, m=M, pool_size=1
        ) as service:
            reply = service.ingest(
                {
                    "dataset": "rr",
                    "route": "round_robin",
                    "documents": [
                        {"doc_id": i, "lines": ["one line here"]}
                        for i in range(4)
                    ],
                }
            )
            assert reply["route"] == "round_robin"
            assert set(reply["shards"]) == {"0", "1"}
            assert all(
                entry["ingested_lines"] == 2
                for entry in reply["shards"].values()
            )


class TestShardedOps:
    def test_health_reports_all_shards(self, cluster):
        status, body = get_json(cluster.base_url, "/health")
        assert status == 200 and body["status"] == "ok"
        assert body["num_shards"] == NUM_SHARDS
        assert set(body["shard_lines"]) == {"0", "1"}
        assert body["lines"] == sum(body["shard_lines"].values())

    def test_stats_reports_per_shard_and_fanout_metrics(self, cluster):
        post_json(cluster.base_url, "/search", {"pattern": "%Law%"})
        status, stats = get_json(cluster.base_url, "/stats")
        assert status == 200
        assert stats["db"]["num_shards"] == NUM_SHARDS
        assert len(stats["shards"]) == NUM_SHARDS
        for shard_stat in stats["shards"]:
            assert shard_stat["pool"]["label"].startswith("shard-")
            assert "lines" in shard_stat and "generation" in shard_stat
        shard_metrics = stats["requests"]["shards"]
        assert "search" in shard_metrics["0"] and "search" in shard_metrics["1"]

    def test_single_service_rejects_shard_scope(self, single):
        from repro.service.validation import ApiError

        with pytest.raises(ApiError) as excinfo:
            single.search({"pattern": "%x%", "shards": [0]})
        assert excinfo.value.code == "not_sharded"

    def test_single_service_index_endpoint(self, tmp_path):
        service = QueryService(str(tmp_path / "one.db"), k=K, m=M, pool_size=1)
        try:
            service.ingest(
                {
                    "dataset": "d",
                    "documents": [
                        {"doc_id": 0, "lines": ["Public Law 88 enacted"]}
                    ],
                }
            )
            reply = service.index({"terms": ["public", "law"]})
            assert reply["reloaded"] is True and reply["postings"] > 0
            body = service.search(
                {"pattern": r"REGEX:Public Law 8\d", "plan": "indexed"}
            )
            assert body["plan"] == "indexed"
        finally:
            service.close()


# ----------------------------------------------------------------------
# The asyncio front end serves the sharded flavour too: same merged
# ranking as the threaded cluster, and the admin surface (/replicas,
# /jobs) answers through the event loop + executor path.
# ----------------------------------------------------------------------
class TestAsyncioBackendServesShards:
    def test_sharded_service_on_asyncio_backend(self, tmp_path, corpus, single):
        shard_dir = str(tmp_path / "aio-shards")
        running = start_sharded_service(
            shard_dir,
            NUM_SHARDS,
            k=K,
            m=M,
            pool_size=2,
            cache_size=64,
            range_width=RANGE_WIDTH,
            backend="asyncio",
        )
        try:
            status, reply = post_json(
                running.base_url, "/ingest", _batch_payload(corpus)
            )
            assert status == 200
            assert reply["ingested_lines"] == corpus.num_lines

            query = {"pattern": "%Congress%", "approach": "staccato",
                     "num_ans": 20}
            expected = single.search(query)
            status, body = post_json(running.base_url, "/search", query)
            assert status == 200 and body["count"] == expected["count"]
            assert [
                (a["doc_id"], a["line_no"], a["probability"])
                for a in body["answers"]
            ] == [
                (a["doc_id"], a["line_no"], pytest.approx(a["probability"]))
                for a in expected["answers"]
            ]

            # /replicas: attach one copy to shard 0 at runtime.
            status, body = post_json(
                running.base_url, "/replicas", {"action": "attach", "shard": 0}
            )
            assert status == 200 and body["action"] == "attach"
            assert len(body["replicas"]) >= 2

            # /jobs: a rebuild_index job through the executor path.
            status, row = post_json(
                running.base_url,
                "/jobs",
                {"type": "rebuild_index",
                 "params": {"terms": ["public", "law"]},
                 "wait": True},
            )
            assert status == 200 and row["state"] == "succeeded"
            status, listing = get_json(running.base_url, "/jobs")
            assert status == 200
            assert any(job["id"] == row["id"] for job in listing["jobs"])

            status, health = get_json(running.base_url, "/health?verbose=1")
            assert status == 200 and health["num_shards"] == NUM_SHARDS
        finally:
            running.stop()
