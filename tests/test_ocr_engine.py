"""Tests for the simulated OCR engine (repro.ocr.engine)."""

import pytest

from repro.ocr.engine import SimulatedOcrEngine, stable_seed
from repro.ocr.noise import NoiseModel
from repro.sfa import ops
from repro.sfa.paths import map_string


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)

    def test_distinguishes_inputs(self):
        assert stable_seed("a", 1) != stable_seed("a", 2)
        assert stable_seed("ab") != stable_seed("a", "b")


class TestRecognizeLine:
    def test_empty_line_rejected(self, fast_ocr_engine):
        with pytest.raises(ValueError):
            fast_ocr_engine.recognize_line("")

    def test_output_is_valid_stochastic_sfa(self, fast_ocr_engine):
        sfa = fast_ocr_engine.recognize_line("Public Law 88")
        ops.validate(sfa, require_stochastic=True)

    def test_deterministic_per_seed(self, fast_ocr_engine):
        a = fast_ocr_engine.recognize_line("hello world", line_seed=3)
        b = fast_ocr_engine.recognize_line("hello world", line_seed=3)
        assert a.structurally_equal(b)

    def test_line_seed_changes_output(self, fast_ocr_engine):
        a = fast_ocr_engine.recognize_line("hello world rnm", line_seed=1)
        b = fast_ocr_engine.recognize_line("hello world rnm", line_seed=2)
        assert not a.structurally_equal(b)

    def test_engine_seed_changes_output(self):
        a = SimulatedOcrEngine(seed=1).recognize_line("merge rn here")
        b = SimulatedOcrEngine(seed=2).recognize_line("merge rn here")
        assert not a.structurally_equal(b)

    def test_true_text_always_representable(self, fast_ocr_engine):
        for text in ["the law", "U.S.C. 2301", "rn merge m split"]:
            sfa = fast_ocr_engine.recognize_line(text)
            dist = ops.string_distribution(sfa, limit=10_000_000)
            assert text in dist
            assert dist[text] > 0.0

    def test_deterministic_automaton_hence_unique_paths(self, ocr_engine):
        """Outgoing emission first-chars are distinct at every node, which
        makes the SFA deterministic and guarantees unique paths even when
        enumeration is infeasible."""
        sfa = ocr_engine.recognize_line("the President shall report rn")
        for node in sfa.nodes:
            first_chars = []
            for succ in set(sfa.successors(node)):
                first_chars.extend(
                    e.string[0] for e in sfa.emissions(node, succ)
                )
            assert len(first_chars) == len(set(first_chars)), node

    def test_unique_paths_small_line(self, fast_ocr_engine):
        sfa = fast_ocr_engine.recognize_line("rn m d", line_seed=4)
        assert ops.has_unique_paths(sfa, limit=10_000_000)

    def test_structural_branching_occurs(self):
        # With merge probability 1, 'rn' must produce a skip edge.
        model = NoiseModel(merge_prob=1.0, split_prob=0.0, tail_mass=0.0)
        engine = SimulatedOcrEngine(model, seed=0)
        sfa = engine.recognize_line("rn")
        # Chain edges (0,1),(1,2) plus the skip edge (0,2).
        assert sfa.has_edge(0, 2)
        merged = {e.string for e in sfa.emissions(0, 2)}
        assert merged == {"m"}

    def test_split_creates_aux_node(self):
        model = NoiseModel(split_prob=1.0, merge_prob=0.0, tail_mass=0.0)
        engine = SimulatedOcrEngine(model, seed=0)
        sfa = engine.recognize_line("m")
        assert sfa.num_nodes == 3  # 0, final, aux
        dist = ops.string_distribution(sfa)
        assert "rn" in dist

    def test_space_drop(self):
        model = NoiseModel(
            space_drop_prob=1.0, merge_prob=0.0, split_prob=0.0, tail_mass=0.0
        )
        engine = SimulatedOcrEngine(model, seed=0)
        sfa = engine.recognize_line("a b")
        dist = ops.string_distribution(sfa)
        assert any(" " not in s for s in dist)  # some string dropped the space

    def test_map_is_usually_close_to_truth(self, fast_ocr_engine):
        text = "the Commission shall review public works"
        sfa = fast_ocr_engine.recognize_line(text)
        best, _ = map_string(sfa)
        # Hard errors may flip a few characters but lengths stay comparable.
        assert abs(len(best) - len(text)) <= 3


class TestRecognizeDocument:
    def test_one_sfa_per_line(self, fast_ocr_engine):
        sfas = fast_ocr_engine.recognize_document(["ab", "cd", "ef"])
        assert len(sfas) == 3
        for sfa in sfas:
            ops.validate(sfa, require_stochastic=True)

    def test_lines_seeded_independently(self, fast_ocr_engine):
        first, second = fast_ocr_engine.recognize_document(["same text", "same text"])
        assert not first.structurally_equal(second)
