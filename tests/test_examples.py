"""Smoke tests for the runnable examples (the fast ones).

The heavy, corpus-scale examples (insurance_claims, digital_humanities,
congress_acts_indexed) are exercised by the benchmark suite's identical
code paths; here we run the two cheap ones end to end and check their
headline assertions hold.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(name: str, capsys) -> str:
    sys.path.insert(0, str(EXAMPLES))
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.path.remove(str(EXAMPLES))
    return capsys.readouterr().out


class TestQuickstart:
    def test_ford_story(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "MAP string: 'F0 rd'" in out
        assert "0.1152" in out
        assert "LOST" in out


class TestSpeech:
    def test_lattice_story(self, capsys):
        out = _run("speech_lattices.py", capsys)
        assert "word lattices" in out
        assert "candidate transcripts" in out
        assert "ford" in out


class TestExampleFilesExist:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "insurance_claims.py",
            "digital_humanities.py",
            "congress_acts_indexed.py",
            "speech_lattices.py",
        ],
    )
    def test_present_and_has_main(self, name):
        text = (EXAMPLES / name).read_text()
        assert "def main()" in text
        assert '__main__' in text
