"""Shared fixtures: small SFAs, corpora and engines reused across tests."""

from __future__ import annotations

import random

import pytest

from repro.ocr.corpus import make_ca, make_db, make_lt
from repro.ocr.engine import SimulatedOcrEngine
from repro.ocr.noise import NoiseModel
from repro.sfa import builder


@pytest.fixture
def figure1():
    return builder.figure1_sfa()


@pytest.fixture
def figure2():
    return builder.figure2_sfa()


@pytest.fixture
def figure3():
    return builder.figure3_sfa()


@pytest.fixture
def rng():
    return random.Random(20110601)


@pytest.fixture
def ocr_engine():
    return SimulatedOcrEngine(NoiseModel(), seed=11)


@pytest.fixture
def fast_ocr_engine():
    """An engine without the smoothing tail: small SFAs, fast tests."""
    return SimulatedOcrEngine(NoiseModel(tail_mass=0.0), seed=11)


@pytest.fixture
def tiny_ca():
    return make_ca(num_docs=2, lines_per_doc=5)


@pytest.fixture
def tiny_lt():
    return make_lt(num_docs=2, lines_per_doc=5)


@pytest.fixture
def tiny_db():
    return make_db(num_docs=2, lines_per_doc=5)
