"""Counter parity for the batched compiled-kernel filescan.

The batched scan must report exactly the counters a per-line scan
would have: ``dp_cells``/``dp_transitions`` are the same DP executed
in a different order, and ``lines_scanned``/``lines_matched`` are
scan facts independent of batching.  That parity must hold through
every execution topology -- the in-process scan, the ``scan_procs``
process spill, and the subprocess-worker router -- and through the
cross-request kernel memo (hits replay the memoized probability
without re-reporting DP work, so a memo-warm scan shows zero cells).
"""

from __future__ import annotations

import pytest

from repro import counters
from repro.bench.service_load import get_json, post_json
from repro.db import storage
from repro.db.engine import StaccatoDB, shard_paths
from repro.ocr.corpus import make_ca
from repro.ocr.engine import SimulatedOcrEngine
from repro.ocr.noise import NoiseModel
from repro.query.memo import KernelMemo
from repro.service.app import QueryService
from repro.service.server import start_worker_service

from .test_service import _batch_payload, K, M

PATTERN = "%Congress%"

#: Counter names whose totals must be identical across topologies.
#: Memo traffic is intentionally excluded: a memo-equipped engine
#: reports misses a memo-less reference scan never performs.
PARITY = ("dp_cells", "dp_transitions", "lines_scanned", "lines_matched")


def _ingest(db: StaccatoDB, num_docs: int = 2, lines_per_doc: int = 6) -> None:
    dataset = make_ca(num_docs=num_docs, lines_per_doc=lines_per_doc)
    engine = SimulatedOcrEngine(NoiseModel(tail_mass=0.0), seed=13)
    db.ingest(dataset, engine)


def _scan(db: StaccatoDB, approach: str, **kwargs):
    """One search plus exactly the counters it flushed."""
    with counters.collect() as counts:
        answers = db.search(PATTERN, approach, num_ans=None, **kwargs)
    return answers, dict(counts)


def _per_line_reference(db: StaccatoDB, approach: str):
    """The summed answers/counters of one scan per data key."""
    answers = []
    totals: dict[str, int] = {}
    for key in storage.all_data_keys(db.conn):
        line_answers, counts = _scan(db, approach, data_keys=[key])
        answers.extend(line_answers)
        for name, value in counts.items():
            totals[name] = totals.get(name, 0) + value
    return sorted(answers, key=lambda a: a.line_id), totals


@pytest.fixture(scope="module")
def loaded_db():
    db = StaccatoDB(k=8, m=10)
    _ingest(db)
    yield db
    db.close()


class TestInProcessParity:
    @pytest.mark.parametrize("approach", ["staccato", "fullsfa", "map", "kmap"])
    def test_batched_equals_per_line_sum(self, loaded_db, approach):
        """Batched scan == the exact sum of 12 single-line scans."""
        batched, batched_counts = _scan(loaded_db, approach)
        expected, expected_counts = _per_line_reference(loaded_db, approach)
        assert sorted(batched, key=lambda a: a.line_id) == expected
        assert batched_counts == expected_counts
        assert batched_counts["lines_scanned"] == loaded_db.num_lines


class TestMemoCounters:
    def test_warm_scan_hits_without_dp_work(self):
        """Second identical scan: all memo hits, zero DP, same answers."""
        db = StaccatoDB(k=8, m=10, kernel_memo=KernelMemo())
        _ingest(db)
        cold, cold_counts = _scan(db, "staccato")
        warm, warm_counts = _scan(db, "staccato")
        assert warm == cold
        assert cold_counts["memo_misses"] == db.num_lines
        assert cold_counts.get("memo_hits", 0) == 0
        assert warm_counts["memo_hits"] == db.num_lines
        assert warm_counts.get("memo_misses", 0) == 0
        # Hits replay the memoized probability; the DP never runs.
        assert warm_counts.get("dp_cells", 0) == 0
        assert warm_counts.get("dp_transitions", 0) == 0
        # Scan facts are counted identically either way.
        assert warm_counts["lines_scanned"] == cold_counts["lines_scanned"]
        assert warm_counts["lines_matched"] == cold_counts["lines_matched"]
        db.close()

    def test_ingest_invalidates(self):
        """A write advances the generation clock and empties the memo."""
        memo = KernelMemo()
        db = StaccatoDB(k=8, m=10, kernel_memo=memo)
        _ingest(db)
        _scan(db, "staccato")
        generation = memo.generation
        assert memo.stats()["size"] > 0
        db.ingest(make_ca(num_docs=1, lines_per_doc=1, seed=7))
        assert memo.generation == generation + 1
        assert memo.stats()["size"] == 0
        # The next scan recomputes (and re-fills) rather than serving
        # entries computed against the pre-ingest snapshot.
        _, counts = _scan(db, "staccato")
        assert counts["memo_misses"] == db.num_lines
        db.close()

    def test_service_stats_expose_memo_block(self, tmp_path):
        service = QueryService(str(tmp_path / "ca.db"), k=K, m=M, pool_size=2)
        try:
            block = service.stats()["kernel_memo"]
            assert {"size", "hits", "misses", "generation"} <= set(block)
        finally:
            service.close()


class TestScanProcsParity:
    def test_spilled_scan_matches_in_process(self, tmp_path):
        """The process-pool spill changes nothing but wall-clock."""
        path = str(tmp_path / "ca.db")
        db = StaccatoDB(path, k=8, m=10)
        _ingest(db)
        expected, expected_counts = _scan(db, "staccato")
        db.close()
        spill_db = StaccatoDB(
            path, k=8, m=10, scan_procs=3, scan_spill_threshold=4
        )
        try:
            spilled, spilled_counts = _scan(spill_db, "staccato")
            # The spill condition really engaged (pool was created).
            assert spill_db._scan_pool is not None
            assert spilled == expected
            assert spilled_counts == expected_counts
        finally:
            spill_db.close()


class TestWorkerTopologyParity:
    def test_router_engine_counters_equal_per_line_sums(self, tmp_path):
        """Worker-procs filescan counters == recomputed per-line sums.

        The router's ``/stats`` stitches each worker's process-global
        engine block; with a cold cache and exactly one filescan, the
        summed per-shard counters must equal what a per-line reference
        scan over the same shard files reports.
        """
        shard_dir = tmp_path / "shards"
        running = start_worker_service(
            str(shard_dir), 2, k=K, m=M, pool_size=2, cache_size=0,
            range_width=2,
        )
        try:
            corpus = make_ca(num_docs=2, lines_per_doc=3, seed=1)
            status, _ = post_json(
                running.base_url, "/ingest", _batch_payload(corpus)
            )
            assert status == 200
            status, reply = post_json(
                running.base_url,
                "/search",
                {"pattern": PATTERN, "plan": "filescan"},
            )
            assert status == 200 and reply["plan"] == "filescan"
            status, stats = get_json(running.base_url, "/stats")
            assert status == 200
            observed = {name: 0 for name in PARITY}
            for entry in stats["shards"]:
                engine = entry["engine"]
                for name in PARITY:
                    observed[name] += engine[name]
        finally:
            running.stop()
        expected = {name: 0 for name in PARITY}
        for path in shard_paths(str(shard_dir), 2):
            shard = StaccatoDB(path, k=K, m=M)
            try:
                _, totals = _per_line_reference(shard, "staccato")
            finally:
                shard.close()
            for name in PARITY:
                expected[name] += totals.get(name, 0)
        assert observed == expected
        assert expected["lines_scanned"] == 6
