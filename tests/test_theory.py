"""Tests for the formal-analysis utilities (repro.core.theory).

These make Proposition 3.1 and the Appendix C KL results executable.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.theory import (
    exhaustive_best_selection,
    greedy_selection_mass,
    kl_of_selection,
    selection_mass,
)
from repro.sfa.builder import random_chain_sfa, random_dag_sfa
from repro.sfa.ops import total_mass


class TestSelectionMass:
    def test_full_selection_keeps_everything(self, figure1):
        selection = {
            (u, v): tuple(e.string for e in figure1.emissions(u, v))
            for u, v in figure1.edges
        }
        assert selection_mass(figure1, selection) == pytest.approx(1.0)

    def test_partial_selection(self, figure1):
        selection = {(0, 1): ("F",)}
        assert selection_mass(figure1, selection) == pytest.approx(0.8)


class TestProposition31:
    """Greedy top-k per edge maximizes retained mass (Prop 3.1)."""

    @given(st.integers(0, 10_000), st.integers(2, 4), st.integers(1, 2))
    @settings(max_examples=25, deadline=None)
    def test_greedy_equals_exhaustive_on_chains(self, seed, length, k):
        sfa = random_chain_sfa(random.Random(seed), length, max_choices=3)
        greedy = greedy_selection_mass(sfa, k)
        _, best = exhaustive_best_selection(sfa, k)
        assert greedy == pytest.approx(best)

    @given(st.integers(0, 10_000), st.integers(1, 2))
    @settings(max_examples=15, deadline=None)
    def test_greedy_equals_exhaustive_on_dags(self, seed, k):
        sfa = random_dag_sfa(random.Random(seed), 4, max_choices=2)
        greedy = greedy_selection_mass(sfa, k)
        _, best = exhaustive_best_selection(sfa, k)
        assert greedy == pytest.approx(best)

    def test_greedy_mass_figure1(self, figure1):
        # Keeping the top emission per edge keeps exactly the product of
        # per-position maxima along the surviving structure.
        mass = greedy_selection_mass(figure1, 1)
        assert 0.0 < mass < total_mass(figure1)


class TestKl:
    def test_kl_is_neg_log_mass(self, figure1):
        selection = {(0, 1): ("F",)}
        assert kl_of_selection(figure1, selection) == pytest.approx(-math.log(0.8))

    def test_kl_zero_when_nothing_dropped(self, figure1):
        selection = {
            (u, v): tuple(e.string for e in figure1.emissions(u, v))
            for u, v in figure1.edges
        }
        assert kl_of_selection(figure1, selection) == pytest.approx(0.0)

    def test_kl_infinite_when_everything_dropped(self, figure1):
        selection = {(u, v): () for (u, v) in figure1.edges}
        assert kl_of_selection(figure1, selection) == math.inf

    def test_more_mass_means_less_kl(self, figure1):
        """Appendix C: retained mass orders approximation quality."""
        big = kl_of_selection(figure1, {(0, 1): ("T",)})   # mass 0.2
        small = kl_of_selection(figure1, {(0, 1): ("F",)})  # mass 0.8
        assert small < big
