"""Tests for FindMinSFA and Collapse (repro.core.chunks)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunks import collapse, find_min_sfa, region_mass, region_top_k
from repro.sfa import ops
from repro.sfa.model import SfaError

from .strategies import dag_sfas


class TestFindMinSfaOnFigure3:
    """The three repair cases of paper Figure 12 on the Figure 3 SFA."""

    def test_good_merge_succeeds_directly(self, figure3):
        # Successive edges (1,2),(2,3): already a valid single-entry/exit
        # region {1, 2, 3}.
        region = find_min_sfa(figure3, {1, 2, 3})
        assert region.entry == 1
        assert region.exit == 3
        assert region.nodes == frozenset({1, 2, 3})

    def test_no_unique_end_node(self, figure3):
        # Sibling edges {1, 2, 4}: no unique end; the greatest common
        # descendant is node 5 (paper Figure 3(D)).
        region = find_min_sfa(figure3, {1, 2, 4})
        assert region.entry == 1
        assert region.exit == 5
        assert region.nodes == frozenset({1, 2, 3, 4, 5})

    def test_no_unique_start_node(self, figure3):
        # {3, 4, 5}: no unique start; least common ancestor is node 1
        # (paper Figure 12(A)).
        region = find_min_sfa(figure3, {3, 4, 5})
        assert region.entry == 1
        assert region.exit == 5

    def test_external_edge_closure(self, figure3):
        # {0, 1, 2} has the external edge 1->4 incident on internal node 1,
        # so the region must grow (paper Figure 12(C)).
        region = find_min_sfa(figure3, {0, 1, 2})
        assert region.entry == 0
        assert region.exit == 5
        assert region.nodes == frozenset({0, 1, 2, 3, 4, 5})


class TestFindMinSfaErrors:
    def test_needs_two_nodes(self, figure3):
        with pytest.raises(SfaError):
            find_min_sfa(figure3, {1})

    def test_region_internal_property(self, figure1):
        region = find_min_sfa(figure1, {2, 3, 4})
        assert region.internal == region.nodes - {region.entry, region.exit}


class TestCollapse:
    def test_preserves_string_set_when_k_large(self, figure3):
        region = find_min_sfa(figure3, {1, 2, 4})
        collapsed = collapse(figure3, region, k=10)
        ops.validate(collapsed)
        assert set(ops.string_distribution(collapsed)) == {"aef", "abcd"}

    def test_collapse_probabilities_exact(self, figure3):
        region = find_min_sfa(figure3, {1, 2, 4})
        collapsed = collapse(figure3, region, k=10)
        dist = ops.string_distribution(collapsed)
        original = ops.string_distribution(figure3)
        for string, prob in dist.items():
            assert prob == pytest.approx(original[string])

    def test_collapse_prunes_to_top_k(self, figure3):
        region = find_min_sfa(figure3, {1, 2, 4})
        collapsed = collapse(figure3, region, k=1)
        dist = ops.string_distribution(collapsed)
        assert set(dist) == {"aef"}  # the higher-probability branch

    def test_original_untouched(self, figure3):
        before = figure3.copy()
        region = find_min_sfa(figure3, {1, 2, 4})
        collapse(figure3, region, k=1)
        assert figure3.structurally_equal(before)

    def test_direct_edge_absorbed(self):
        from repro.sfa.model import Sfa

        sfa = Sfa(0, 2)
        sfa.add_edge(0, 1, [("a", 0.5)])
        sfa.add_edge(1, 2, [("b", 1.0)])
        sfa.add_edge(0, 2, [("c", 0.5)])  # direct edge inside the region
        region = find_min_sfa(sfa, {0, 1, 2})
        collapsed = collapse(sfa, region, k=2)
        assert collapsed.num_edges == 1
        dist = ops.string_distribution(collapsed)
        assert dist == pytest.approx({"ab": 0.5, "c": 0.5})


class TestRegionMassAndTopK:
    def test_region_mass_full_sfa(self, figure3):
        region = find_min_sfa(figure3, {0, 1, 2})
        assert region_mass(figure3, region) == pytest.approx(1.0)

    def test_region_top_k_ranked(self, figure3):
        region = find_min_sfa(figure3, {1, 2, 4})
        top = region_top_k(figure3, region, 2)
        assert [s for s, _ in top] == ["ef", "bcd"]
        assert top[0][1] == pytest.approx(0.6)
        assert top[1][1] == pytest.approx(0.4)


class TestCollapseProperties:
    @given(dag_sfas(min_length=3, max_length=9), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_collapse_emits_subset_of_original(self, sfa, k):
        """Core soundness: collapse never introduces new strings."""
        middle = next(
            (n for n in ops.topological_order(sfa)[1:-1] if n not in
             (sfa.start, sfa.final)),
            None,
        )
        if middle is None:
            return
        pred = sfa.predecessors(middle)[0]
        succ = sfa.successors(middle)[0]
        region = find_min_sfa(sfa, {pred, middle, succ})
        collapsed = collapse(sfa, region, k)
        ops.validate(collapsed)
        original = ops.string_distribution(sfa)
        for string, prob in ops.string_distribution(collapsed).items():
            assert string in original
            assert prob == pytest.approx(original[string])
