"""Cross-module property tests: the invariants that tie the system together.

These are the properties a downstream user implicitly relies on:

* any approximation's match probability is a *lower bound* on the full
  SFA's (approximations emit a string subset with original probabilities);
* k-MAP probability <= Staccato(m>=1) is not guaranteed pointwise, but
  both are bounded by FullSFA and by the retained mass;
* LIKE translation agrees with Python's re engine on the LIKE fragment;
* the DB round-trip preserves query probabilities exactly.
"""

import re as python_re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.dfa import dfa_for_pattern
from repro.core.approximate import staccato_approximate
from repro.core.kmap import build_kmap
from repro.query.eval_sfa import match_probability
from repro.query.eval_strings import match_probability_strings
from repro.query.like import compile_like, like_to_pattern
from repro.sfa.ops import total_mass

from .strategies import dag_sfas, regex_patterns


class TestApproximationBounds:
    @given(dag_sfas(min_length=3, max_length=8),
           st.integers(1, 4), st.integers(1, 3), regex_patterns(max_atoms=3))
    @settings(max_examples=40, deadline=None)
    def test_staccato_probability_lower_bounds_full(self, sfa, m, k, pattern):
        query = dfa_for_pattern(pattern)
        approx = staccato_approximate(sfa, m=m, k=k)
        assert (
            match_probability(approx, query)
            <= match_probability(sfa, query) + 1e-9
        )

    @given(dag_sfas(min_length=3, max_length=8),
           st.integers(1, 4), regex_patterns(max_atoms=3))
    @settings(max_examples=40, deadline=None)
    def test_kmap_probability_lower_bounds_full(self, sfa, k, pattern):
        query = dfa_for_pattern(pattern)
        strings = build_kmap(sfa, k).strings
        assert (
            match_probability_strings(strings, query)
            <= match_probability(sfa, query) + 1e-9
        )

    @given(dag_sfas(min_length=3, max_length=8),
           st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_match_probability_bounded_by_retained_mass(self, sfa, m, k):
        approx = staccato_approximate(sfa, m=m, k=k)
        query = dfa_for_pattern("a")  # any pattern
        assert match_probability(approx, query) <= total_mass(approx) + 1e-9


class TestLikeFragmentAgainstRe:
    @given(st.text(alphabet="ab%_c", min_size=1, max_size=6),
           st.text(alphabet="abc", max_size=8))
    @settings(max_examples=300, deadline=None)
    def test_like_matches_re_translation(self, like, text):
        dfa = compile_like(like)
        # Reference: translate LIKE to an anchored Python regex.
        parts = ["^"]
        for ch in like:
            if ch == "%":
                parts.append(".*")
            elif ch == "_":
                parts.append(".")
            else:
                parts.append(python_re.escape(ch))
        parts.append("$")
        want = python_re.match("".join(parts), text) is not None
        assert dfa.accepts(text) == want

    def test_translation_is_stable(self):
        for like in ["%Ford%", "F_rd", "%a%b%", "abc", "%%"]:
            first = like_to_pattern(like)
            second = like_to_pattern(like)
            assert first == second


class TestDbRoundTripProbabilities:
    def test_blob_round_trip_preserves_probabilities(self, fast_ocr_engine):
        from repro.sfa import serialize

        sfa = fast_ocr_engine.recognize_line("Public Law 85 enacted")
        back = serialize.from_bytes(serialize.to_bytes(sfa))
        for like in ["%Public%", r"REGEX:Law (8|9)\d", "%85%"]:
            query = compile_like(like)
            assert match_probability(back, query) == pytest.approx(
                match_probability(sfa, query)
            )

    def test_view_joins_with_documents(self):
        """Materialized views join against business tables in plain SQL --
        the reason the paper exposes model-based views at all."""
        from repro.db.engine import StaccatoDB
        from repro.db.views import materialize_view
        from repro.ocr.corpus import make_ca
        from repro.ocr.engine import SimulatedOcrEngine
        from repro.ocr.noise import NoiseModel

        db = StaccatoDB(k=5, m=6)
        db.ingest(
            make_ca(num_docs=2, lines_per_doc=4),
            SimulatedOcrEngine(NoiseModel(tail_mass=0.0), seed=3),
        )
        materialize_view(db, "hits", "%the%", "fullsfa")
        rows = db.conn.execute(
            "SELECT d.DocName, SUM(h.Probability) "
            "FROM hits h JOIN Documents d ON d.DocId = h.DocId "
            "GROUP BY d.DocName ORDER BY d.DocName"
        ).fetchall()
        assert rows
        for _, prob_sum in rows:
            assert prob_sum > 0
        db.close()
