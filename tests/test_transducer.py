"""Tests for the FST model of paper Appendix A (repro.sfa.transducer)."""

import pytest

from repro.sfa.model import SfaError
from repro.sfa.ops import string_distribution, validate
from repro.sfa.transducer import Arc, Transducer


def _ocr_like_fst() -> Transducer:
    """Glyph positions g0, g1 transduced to ASCII alternatives."""
    fst = Transducer(start=0, final=2)
    fst.add_edge(0, 1, [Arc("g0", "F", 0.8), Arc("g0", "T", 0.2)])
    fst.add_edge(1, 2, [Arc("g1", "o", 0.6), Arc("g1", "0", 0.4)])
    return fst


class TestArcs:
    def test_probability_bounds(self):
        with pytest.raises(SfaError):
            Arc("g", "a", 1.5)

    def test_sorted_by_probability(self):
        fst = _ocr_like_fst()
        arcs = fst.arcs(0, 1)
        assert [a.output for a in arcs] == ["F", "T"]


class TestStructure:
    def test_duplicate_edge_rejected(self):
        fst = _ocr_like_fst()
        with pytest.raises(SfaError):
            fst.add_edge(0, 1, [Arc("g", "x", 1.0)])

    def test_empty_edge_rejected(self):
        fst = Transducer()
        with pytest.raises(SfaError):
            fst.add_edge(0, 1, [])

    def test_start_final_distinct(self):
        with pytest.raises(SfaError):
            Transducer(start=1, final=1)

    def test_alphabets(self):
        fst = _ocr_like_fst()
        assert fst.input_alphabet() == {"g0", "g1"}
        assert fst.output_alphabet() == {"F", "T", "o", "0"}

    def test_tuple_arcs_accepted(self):
        fst = Transducer(0, 1)
        fst.add_edge(0, 1, [("g", "a", 1.0)])
        assert fst.arcs(0, 1)[0].output == "a"


class TestProjection:
    def test_projection_is_valid_sfa(self):
        sfa = _ocr_like_fst().project_output()
        validate(sfa, require_stochastic=True)
        dist = string_distribution(sfa)
        assert dist["Fo"] == pytest.approx(0.8 * 0.6)
        assert dist["T0"] == pytest.approx(0.2 * 0.4)

    def test_projection_merges_same_output(self):
        fst = Transducer(0, 1)
        # Two different glyph readings emitting the same ASCII string.
        fst.add_edge(0, 1, [Arc("g", "a", 0.3), Arc("h", "a", 0.2), Arc("g", "b", 0.5)])
        sfa = fst.project_output()
        emissions = {e.string: e.prob for e in sfa.emissions(0, 1)}
        assert emissions == pytest.approx({"a": 0.5, "b": 0.5})

    def test_epsilon_output_rejected(self):
        fst = Transducer(0, 1)
        fst.add_edge(0, 1, [Arc("g", "", 1.0)])
        with pytest.raises(SfaError):
            fst.project_output()
