"""Tests for the SFA constructors (repro.sfa.builder)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sfa import ops
from repro.sfa.builder import (
    chain_sfa,
    figure1_sfa,
    figure2_sfa,
    figure3_sfa,
    from_string,
    random_chain_sfa,
    random_dag_sfa,
)


class TestChain:
    def test_from_string(self):
        sfa = from_string("abc")
        assert ops.string_distribution(sfa) == {"abc": 1.0}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            from_string("")
        with pytest.raises(ValueError):
            chain_sfa([])

    def test_alternatives(self):
        sfa = chain_sfa([[("a", 0.6), ("b", 0.4)], [("c", 1.0)]])
        dist = ops.string_distribution(sfa)
        assert dist == pytest.approx({"ac": 0.6, "bc": 0.4})


class TestPaperFigures:
    def test_figure1_highlights(self):
        sfa = figure1_sfa()
        ops.validate(sfa, require_stochastic=True)
        dist = ops.string_distribution(sfa)
        # The two strings the paper calls out, with their probabilities.
        assert dist["F0 rd"] == pytest.approx(0.20736)
        assert dist["Ford"] == pytest.approx(0.1152)

    def test_figure2_string_count(self):
        sfa = figure2_sfa()
        ops.validate(sfa, require_stochastic=True)
        assert ops.string_count(sfa) == 4 * 3 * 4 * 3

    def test_figure3_emits_exactly_two_strings(self):
        sfa = figure3_sfa()
        ops.validate(sfa, require_stochastic=True)
        assert set(ops.string_distribution(sfa)) == {"aef", "abcd"}


class TestRandomGenerators:
    @given(st.integers(min_value=0, max_value=10_000), st.integers(1, 10))
    @settings(max_examples=50, deadline=None)
    def test_chain_valid_stochastic_unique(self, seed, length):
        sfa = random_chain_sfa(random.Random(seed), length)
        ops.validate(sfa, require_stochastic=True)
        assert ops.has_unique_paths(sfa)

    @given(st.integers(min_value=0, max_value=10_000), st.integers(2, 12))
    @settings(max_examples=50, deadline=None)
    def test_dag_valid_stochastic_unique(self, seed, length):
        sfa = random_dag_sfa(random.Random(seed), length)
        ops.validate(sfa, require_stochastic=True)
        assert ops.has_unique_paths(sfa, limit=2_000_000)

    def test_deterministic_for_seed(self):
        a = random_dag_sfa(random.Random(99), 8)
        b = random_dag_sfa(random.Random(99), 8)
        assert a.structurally_equal(b)
