"""Hypothesis strategies for property-based tests.

Central definitions so every test module draws the same kinds of SFAs:
normalized random chains and branching DAGs with the unique-paths
property, plus pattern strings from the paper's query language.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.service.shards import RoutingTable
from repro.sfa.builder import random_chain_sfa, random_chunk_sfa, random_dag_sfa
from repro.sfa.model import Sfa

__all__ = [
    "chain_sfas",
    "chunk_sfas",
    "dag_sfas",
    "keyword_patterns",
    "regex_patterns",
    "routing_moves",
    "routing_tables",
]


@st.composite
def chain_sfas(
    draw, min_length: int = 1, max_length: int = 8, max_choices: int = 4
) -> Sfa:
    """Normalized random chain SFAs (unique paths by construction)."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    length = draw(st.integers(min_value=min_length, max_value=max_length))
    return random_chain_sfa(random.Random(seed), length, max_choices=max_choices)


@st.composite
def chunk_sfas(draw, min_chunks: int = 1, max_chunks: int = 6) -> Sfa:
    """Random chunk graphs with multi-character string emissions --
    shaped like ``staccato_approximate`` output, exercising the compiled
    kernel's symbol table with symbols of varying length."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    chunks = draw(st.integers(min_value=min_chunks, max_value=max_chunks))
    return random_chunk_sfa(random.Random(seed), chunks)


@st.composite
def dag_sfas(draw, min_length: int = 2, max_length: int = 10) -> Sfa:
    """Normalized random branching SFAs (unique paths by construction)."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    length = draw(st.integers(min_value=min_length, max_value=max_length))
    return random_dag_sfa(random.Random(seed), length)


keyword_patterns = st.text(
    alphabet="abcdefgh ", min_size=1, max_size=6
).filter(lambda s: s.strip() == s and s)

_ATOMS = st.sampled_from(["a", "b", "c", "\\d", "\\x", "(a|b)", "(c|\\d)"])


@st.composite
def regex_patterns(draw, max_atoms: int = 5) -> str:
    """Random patterns in the paper's query language."""
    count = draw(st.integers(min_value=1, max_value=max_atoms))
    parts = []
    for _ in range(count):
        atom = draw(_ATOMS)
        if draw(st.booleans()) and atom.startswith("("):
            atom += "*"
        parts.append(atom)
    return "".join(parts)


# ----------------------------------------------------------------------
# DocId routing (repro.service.shards.RoutingTable): random geometries
# and rebalance-move sequences, including the mid-rebalance states
# where overrides splice over earlier overrides.
# ----------------------------------------------------------------------
@st.composite
def routing_moves(
    draw, num_shards: int, max_moves: int = 6, max_doc: int = 512
) -> list[tuple[int, int, int]]:
    """Sequences of ``(doc_lo, doc_hi, target)`` rebalance moves."""
    moves = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_moves))):
        a = draw(st.integers(min_value=0, max_value=max_doc))
        b = draw(st.integers(min_value=0, max_value=max_doc))
        target = draw(st.integers(min_value=0, max_value=num_shards - 1))
        moves.append((min(a, b), max(a, b), target))
    return moves


@st.composite
def routing_tables(
    draw, max_shards: int = 5, max_moves: int = 6, max_doc: int = 512
) -> RoutingTable:
    """Routing tables reached by applying random move sequences --
    exactly the states a router can publish mid-rebalance."""
    num_shards = draw(st.integers(min_value=1, max_value=max_shards))
    range_width = draw(st.integers(min_value=1, max_value=64))
    table = RoutingTable(num_shards, range_width)
    for lo, hi, target in draw(
        routing_moves(num_shards, max_moves=max_moves, max_doc=max_doc)
    ):
        table = table.with_move(lo, hi, target)
    return table
