"""Tests for model-based views (repro.db.views)."""

import pytest

from repro.db.engine import StaccatoDB
from repro.db.views import drop_view, list_views, materialize_view, refresh_view
from repro.ocr.corpus import make_ca
from repro.ocr.engine import SimulatedOcrEngine
from repro.ocr.noise import NoiseModel


@pytest.fixture(scope="module")
def view_db():
    db = StaccatoDB(k=6, m=8)
    dataset = make_ca(num_docs=2, lines_per_doc=5)
    db.ingest(dataset, SimulatedOcrEngine(NoiseModel(tail_mass=0.0), seed=33))
    yield db
    db.close()


class TestMaterialize:
    def test_rows_match_search(self, view_db):
        count = materialize_view(view_db, "the_lines", "%the%", "fullsfa")
        answers = view_db.search("%the%", approach="fullsfa")
        assert count == len(answers)
        rows = view_db.conn.execute(
            "SELECT DataKey, DocId, LineNum, Probability FROM the_lines "
            "ORDER BY DataKey"
        ).fetchall()
        want = sorted(
            (a.line_id, a.doc_id, a.line_no, a.probability) for a in answers
        )
        for got, expected in zip(rows, want):
            assert got[:3] == expected[:3]
            assert got[3] == pytest.approx(expected[3])

    def test_view_is_plain_sql_queryable(self, view_db):
        materialize_view(view_db, "prez", "%President%", "fullsfa")
        row = view_db.conn.execute(
            "SELECT COUNT(*), MAX(Probability) FROM prez"
        ).fetchone()
        assert row[0] >= 0

    def test_invalid_name_rejected(self, view_db):
        with pytest.raises(ValueError):
            materialize_view(view_db, "bad name; drop", "%a%")

    def test_rematerialize_replaces(self, view_db):
        materialize_view(view_db, "v1", "%the%", "map")
        first = view_db.conn.execute("SELECT COUNT(*) FROM v1").fetchone()[0]
        materialize_view(view_db, "v1", "%zzzznot%", "map")
        second = view_db.conn.execute("SELECT COUNT(*) FROM v1").fetchone()[0]
        assert second == 0
        assert first >= second


class TestRegistry:
    def test_list_and_refresh(self, view_db):
        materialize_view(view_db, "reg1", "%the%", "map")
        views = dict(
            (name, (pattern, approach))
            for name, pattern, approach in list_views(view_db)
        )
        assert views["reg1"] == ("%the%", "map")
        count = refresh_view(view_db, "reg1")
        assert count == len(view_db.search("%the%", approach="map"))

    def test_refresh_unknown(self, view_db):
        with pytest.raises(KeyError):
            refresh_view(view_db, "missing")

    def test_drop(self, view_db):
        materialize_view(view_db, "temp", "%the%", "map")
        drop_view(view_db, "temp")
        names = [name for name, _, _ in list_views(view_db)]
        assert "temp" not in names
        tables = {
            row[0]
            for row in view_db.conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )
        }
        assert "temp" not in tables
