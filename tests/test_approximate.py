"""Tests for the greedy Staccato construction (repro.core.approximate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approximate import (
    build_staccato,
    prune_edges_to_k,
    staccato_approximate,
)
from repro.sfa import ops
from repro.sfa.builder import figure2_sfa
from repro.sfa.paths import k_best_strings

from .strategies import dag_sfas


class TestPruneEdges:
    def test_keeps_top_k(self, figure1):
        pruned = prune_edges_to_k(figure1, 1)
        for u, v in pruned.edges:
            assert len(pruned.emissions(u, v)) == 1
        # MAP path survives
        dist = ops.string_distribution(pruned)
        assert "F0 rd" in dist

    def test_noop_when_k_large(self, figure1):
        assert prune_edges_to_k(figure1, 100).structurally_equal(figure1)


class TestParameterValidation:
    def test_m_positive(self, figure1):
        with pytest.raises(ValueError):
            staccato_approximate(figure1, m=0, k=5)

    def test_k_positive(self, figure1):
        with pytest.raises(ValueError):
            staccato_approximate(figure1, m=5, k=0)


class TestDegenerateSettings:
    def test_m_one_equals_kmap(self):
        """Paper Section 5.1: 'When m = 1, Staccato is equivalent to
        k-MAP'."""
        sfa = figure2_sfa()
        for k in (1, 3, 5):
            approx = staccato_approximate(sfa, m=1, k=k)
            assert approx.num_edges == 1
            got = ops.string_distribution(approx)
            want = dict(k_best_strings(sfa, k))
            assert set(got) == set(want)
            for string in got:
                assert got[string] == pytest.approx(want[string])

    def test_m_at_least_edges_keeps_structure(self, figure1):
        approx = staccato_approximate(figure1, m=figure1.num_edges, k=2)
        assert approx.num_edges == figure1.num_edges
        assert set(approx.edges) == set(figure1.edges)

    def test_figure2_m2_k3_stores_k_pow_m(self):
        """Paper Figure 2: m=2, k=3 stores 3**2 = 9 strings."""
        approx = staccato_approximate(figure2_sfa(), m=2, k=3)
        assert approx.num_edges == 2
        assert ops.string_count(approx) == 9


class TestInvariants:
    @given(dag_sfas(min_length=3, max_length=9),
           st.integers(1, 5), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_output_is_valid_bounded_subset(self, sfa, m, k):
        approx = staccato_approximate(sfa, m=m, k=k)
        ops.validate(approx)
        assert approx.num_edges <= max(m, 1) or approx.num_edges <= sfa.num_edges
        assert approx.max_strings_per_edge() <= k
        original = ops.string_distribution(sfa)
        for string, prob in ops.string_distribution(approx).items():
            assert string in original, "approximation invented a string"
            assert prob == pytest.approx(original[string])

    @given(dag_sfas(min_length=3, max_length=8), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_mass_grows_with_m(self, sfa, k):
        """More chunks retain (weakly) more probability mass."""
        masses = [
            ops.total_mass(staccato_approximate(sfa, m=m, k=k))
            for m in (1, 3, sfa.num_edges)
        ]
        # Not guaranteed monotone pointwise by the greedy heuristic, but
        # the endpoints must order: full structure >= single chunk.
        assert masses[-1] >= masses[0] - 1e-9

    @given(dag_sfas(min_length=3, max_length=8))
    @settings(max_examples=20, deadline=None)
    def test_mass_grows_with_k(self, sfa):
        masses = [
            ops.total_mass(staccato_approximate(sfa, m=2, k=k))
            for k in (1, 2, 4, 8)
        ]
        for small, big in zip(masses, masses[1:]):
            assert big >= small - 1e-9

    def test_deterministic(self, figure2):
        a = staccato_approximate(figure2, m=2, k=3)
        b = staccato_approximate(figure2, m=2, k=3)
        assert a.structurally_equal(b)


class TestStaccatoDoc:
    def test_wrapper_fields(self, figure2):
        doc = build_staccato(figure2, m=2, k=3)
        assert doc.num_chunks == 2
        assert doc.distinct_strings() == 9
        assert doc.strings_stored == 6  # 2 chunks x 3 strings
        assert 0.0 < doc.retained_mass() <= 1.0
        chunks = doc.chunk_strings()
        assert len(chunks) == 2
        for _, strings in chunks:
            assert len(strings) == 3
