"""Tests for the dictionary trie automaton (repro.automata.trie)."""

import pytest

from repro.automata.trie import DictionaryTrie


class TestConstruction:
    def test_terms_inserted(self):
        trie = DictionaryTrie(["public", "law"])
        assert trie.num_terms == 2
        assert trie.terms() == ["law", "public"]

    def test_empty_term_rejected(self):
        with pytest.raises(ValueError):
            DictionaryTrie([""])

    def test_prefix_sharing(self):
        trie = DictionaryTrie(["car", "cart", "cat"])
        # root + c + a (shared) + r + rt + t = 6 states
        assert trie.num_states == 6

    def test_duplicate_terms_idempotent(self):
        trie = DictionaryTrie(["law", "law"])
        assert trie.num_terms == 1


class TestStepping:
    def test_walk_to_final(self):
        trie = DictionaryTrie(["law"])
        state = trie.start
        for ch in "law":
            state = trie.step(state, ch)
            assert state != trie.DEAD
        assert trie.is_final(state)
        assert trie.term_at(state) == "law"

    def test_dead_on_mismatch(self):
        trie = DictionaryTrie(["law"])
        assert trie.step(trie.start, "z") == trie.DEAD
        assert trie.step(trie.DEAD, "l") == trie.DEAD

    def test_prefix_not_final(self):
        trie = DictionaryTrie(["laws"])
        state = trie.start
        for ch in "law":
            state = trie.step(state, ch)
        assert not trie.is_final(state)

    def test_nested_terms_both_final(self):
        trie = DictionaryTrie(["law", "laws"])
        state = trie.start
        for ch in "law":
            state = trie.step(state, ch)
        assert trie.is_final(state)
        state = trie.step(state, "s")
        assert trie.is_final(state)
        assert trie.term_at(state) == "laws"


class TestCaseHandling:
    def test_case_insensitive_by_default(self):
        trie = DictionaryTrie(["Public"])
        assert trie.contains("public")
        assert trie.contains("PUBLIC")
        assert trie.step(trie.start, "P") == trie.step(trie.start, "p")

    def test_case_sensitive_mode(self):
        trie = DictionaryTrie(["Public"], case_sensitive=True)
        assert trie.contains("Public")
        assert not trie.contains("public")


class TestContains:
    def test_contains(self):
        trie = DictionaryTrie(["public", "law"])
        assert trie.contains("public")
        assert not trie.contains("pub")
        assert not trie.contains("publicx")
        assert not trie.contains("zzz")

    def test_final_states(self):
        trie = DictionaryTrie(["a", "b"])
        finals = trie.final_states()
        assert len(finals) == 2
        assert {trie.term_at(s) for s in finals} == {"a", "b"}
