"""Tests for the speech word-lattice simulator (repro.ocr.speech).

The paper's Section 7 claims transducers unify OCR and speech
transcription; these tests verify that the *entire* Staccato stack
(k-MAP, chunk approximation, query evaluation, indexing) runs unchanged
on word lattices.
"""

import pytest

from repro.automata.trie import DictionaryTrie
from repro.core.approximate import staccato_approximate
from repro.core.kmap import build_kmap
from repro.indexing.inverted import build_sfa_postings
from repro.ocr.speech import HOMOPHONES, SimulatedSpeechEngine
from repro.query.eval_sfa import match_probability
from repro.query.like import compile_like
from repro.sfa import ops


@pytest.fixture
def engine():
    return SimulatedSpeechEngine(seed=5)


class TestLatticeConstruction:
    def test_empty_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.recognize_utterance("   ")

    def test_parameter_bounds(self):
        with pytest.raises(ValueError):
            SimulatedSpeechEngine(word_error_rate=1.0)

    def test_valid_stochastic(self, engine):
        lattice = engine.recognize_utterance("the claim mentions a ford truck")
        ops.validate(lattice, require_stochastic=True)

    def test_deterministic(self, engine):
        a = engine.recognize_utterance("file the claim", utterance_seed=1)
        b = engine.recognize_utterance("file the claim", utterance_seed=1)
        assert a.structurally_equal(b)

    def test_true_transcript_representable(self, engine):
        text = "the insurance claim mentions a ford"
        lattice = engine.recognize_utterance(text)
        dist = ops.string_distribution(lattice, limit=1_000_000)
        assert text in dist

    def test_unique_paths(self, engine):
        for seed in range(5):
            lattice = engine.recognize_utterance(
                "uh the new claim is right there", utterance_seed=seed
            )
            assert ops.has_unique_paths(lattice, limit=1_000_000)

    def test_adjacent_identical_fillers_safe(self):
        engine = SimulatedSpeechEngine(deletion_prob=1.0, seed=0)
        for seed in range(10):
            lattice = engine.recognize_utterance(
                "uh uh the the claim", utterance_seed=seed
            )
            assert ops.has_unique_paths(lattice, limit=1_000_000)

    def test_homophone_alternatives_present(self, engine):
        lattice = engine.recognize_utterance("two claims")
        first_words = {
            e.string.strip() for e in lattice.emissions(0, 1)
        }
        assert "two" in first_words
        assert first_words & set(HOMOPHONES["two"])

    def test_filler_deletion(self):
        engine = SimulatedSpeechEngine(deletion_prob=1.0, seed=3)
        lattice = engine.recognize_utterance("uh claim filed")
        dist = ops.string_distribution(lattice, limit=100_000)
        assert any(not s.startswith("uh") for s in dist)


class TestStaccatoOnLattices:
    def test_kmap_and_query(self, engine):
        lattice = engine.recognize_utterance("the claim mentions a ford")
        top = build_kmap(lattice, 5)
        assert len(top.strings) == 5
        query = compile_like("%ford%")
        prob = match_probability(lattice, query)
        brute = sum(
            p
            for s, p in ops.string_distribution(lattice, limit=1_000_000).items()
            if query.accepts(s)
        )
        assert prob == pytest.approx(brute)

    def test_chunk_approximation(self, engine):
        lattice = engine.recognize_utterance(
            "the new claim mentions a ford truck on the highway"
        )
        approx = staccato_approximate(lattice, m=3, k=4)
        ops.validate(approx)
        assert approx.num_edges <= 3
        original = ops.string_distribution(lattice, limit=5_000_000)
        for string, prob in ops.string_distribution(approx).items():
            assert string in original
            assert prob == pytest.approx(original[string])

    def test_map_misses_homophone_but_lattice_finds(self):
        """The OCR story transfers: a misheard word is recoverable."""
        engine = SimulatedSpeechEngine(word_error_rate=0.4, seed=11)
        # Find a seed where the MAP transcript mishears 'ford'.
        for seed in range(40):
            lattice = engine.recognize_utterance(
                "the claim mentions a ford", utterance_seed=seed
            )
            best = build_kmap(lattice, 1).map_string
            if "ford" not in best:
                query = compile_like("%ford%")
                assert match_probability(lattice, query) > 0.0
                return
        pytest.skip("no mishearing seed found in range")

    def test_dictionary_indexing(self, engine):
        lattice = engine.recognize_utterance("the public law claim")
        postings = build_sfa_postings(lattice, DictionaryTrie(["law", "claim"]))
        assert "law" in postings
        assert "claim" in postings
