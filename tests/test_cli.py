"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "cli.db")


def _ingest(db_path, capsys):
    code = main(
        [
            "ingest", "--corpus", "ca", "--docs", "1", "--lines", "4",
            "--db", db_path, "--k", "4", "--m", "6",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "ingested 4 lines" in out
    return out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_search_defaults(self):
        args = build_parser().parse_args(
            ["search", "--db", "x.db", "--pattern", "%a%"]
        )
        assert args.approach == "staccato"
        assert args.num_ans == 100
        assert not args.indexed


class TestCommands:
    def test_ingest_reports_storage(self, db_path, capsys):
        out = _ingest(db_path, capsys)
        assert "staccato  storage" in out

    def test_search(self, db_path, capsys):
        _ingest(db_path, capsys)
        code = main(
            [
                "search", "--db", db_path, "--pattern", "%the%",
                "--approach", "map",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "answers in" in out

    def test_sql(self, db_path, capsys):
        _ingest(db_path, capsys)
        code = main(
            [
                "sql", "--db", db_path, "--approach", "map",
                "--query", "SELECT DocId, Year FROM Claims",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "rows in" in out
        assert "DocId" in out

    def test_index_then_indexed_search(self, db_path, capsys):
        _ingest(db_path, capsys)
        code = main(
            ["index", "--db", db_path, "--terms", "public", "law", "congress"]
        )
        assert code == 0
        assert "postings" in capsys.readouterr().out
        code = main(
            [
                "search", "--db", db_path, "--indexed",
                "--pattern", r"REGEX:Public Law (8|9)\d",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "indexed" in out

    def test_tune(self, capsys):
        code = main(
            [
                "tune", "--corpus", "ca", "--docs", "1", "--lines", "4",
                "--sample", "4", "--size-fraction", "0.5",
                "--recall", "0.1", "--queries", "%the%",
            ]
        )
        out = capsys.readouterr().out
        assert "m=" in out and "k=" in out
        assert code in (0, 1)
