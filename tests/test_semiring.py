"""Tests for the semiring-generic shortest distance (repro.sfa.semiring).

Each semiring instance must agree with the specialized implementation it
generalizes -- four independent oracles for one recursion.
"""

import math

import pytest
from hypothesis import given, settings

from repro.sfa.ops import forward_mass, string_count, total_mass
from repro.sfa.paths import map_string
from repro.sfa.semiring import COUNT, REAL, TROPICAL, VITERBI, shortest_distance

from .strategies import dag_sfas


class TestRealSemiring:
    @given(dag_sfas())
    @settings(max_examples=30, deadline=None)
    def test_matches_forward_mass(self, sfa):
        distance = shortest_distance(sfa, REAL)
        forward = forward_mass(sfa)
        for node in sfa.nodes:
            assert distance[node] == pytest.approx(forward[node])

    def test_total_mass_at_final(self, figure1):
        assert shortest_distance(figure1, REAL)[figure1.final] == pytest.approx(
            total_mass(figure1)
        )


class TestViterbiSemiring:
    @given(dag_sfas())
    @settings(max_examples=30, deadline=None)
    def test_matches_map_probability(self, sfa):
        _, map_prob = map_string(sfa)
        distance = shortest_distance(sfa, VITERBI)
        assert distance[sfa.final] == pytest.approx(map_prob)


class TestTropicalSemiring:
    @given(dag_sfas())
    @settings(max_examples=30, deadline=None)
    def test_is_neg_log_of_viterbi(self, sfa):
        _, map_prob = map_string(sfa)
        cost = shortest_distance(sfa, TROPICAL)[sfa.final]
        assert cost == pytest.approx(-math.log(map_prob))

    def test_zero_probability_is_infinite_cost(self, figure1):
        assert TROPICAL.weight(0.0) == math.inf


class TestCountSemiring:
    @given(dag_sfas())
    @settings(max_examples=30, deadline=None)
    def test_matches_string_count(self, sfa):
        assert shortest_distance(sfa, COUNT)[sfa.final] == string_count(sfa)

    def test_figure1(self, figure1):
        assert shortest_distance(figure1, COUNT)[figure1.final] == 24
