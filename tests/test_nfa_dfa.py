"""Tests for NFA compilation and DFA determinization (repro.automata)."""

import re as python_re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.dfa import DEAD, Dfa, dfa_for_pattern, minimize
from repro.automata.nfa import compile_pattern

from .strategies import regex_patterns


def _to_python_re(pattern: str) -> str:
    """Translate the paper's pattern language to Python re syntax."""
    out = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if ch == "\\" and i + 1 < len(pattern):
            nxt = pattern[i + 1]
            if nxt == "d":
                out.append("[0-9]")
            elif nxt == "x":
                out.append(".")
            else:
                out.append(python_re.escape(nxt))
            i += 2
            continue
        if ch in "(|)*":
            out.append(ch)
        else:
            out.append(python_re.escape(ch))
        i += 1
    return "".join(out)


class TestMatchAnywhere:
    @pytest.mark.parametrize(
        "pattern,text,expected",
        [
            ("Ford", "the Ford claim", True),
            ("Ford", "the F0rd claim", False),
            (r"U.S.C. 2\d\d\d", "see U.S.C. 2301.", True),
            (r"U.S.C. 2\d\d\d", "see U.S.C. 23x1.", False),
            (r"Public Law (8|9)\d", "Public Law 85", True),
            (r"Public Law (8|9)\d", "Public Law 75", False),
            (r"Sec(\x)*7", "Sec. foo 7", True),
            (r"19\d\d, \d\d", "in 1944, 12 men", True),
            (r"(no|num).(2|8)", "num.8", True),
            (r"(no|num).(2|8)", "no,2", True),  # '.' is literal-any? no: literal
        ],
    )
    def test_cases(self, pattern, text, expected):
        # '.' is a literal in the paper's language, so fix the last case:
        if pattern == r"(no|num).(2|8)" and text == "no,2":
            assert not dfa_for_pattern(pattern).accepts(text)
            return
        assert dfa_for_pattern(pattern).accepts(text) == expected

    def test_empty_pattern_matches_everything(self):
        dfa = dfa_for_pattern("")
        assert dfa.accepts("")
        assert dfa.accepts("anything")

    def test_accept_is_absorbing(self):
        dfa = dfa_for_pattern("ab")
        state = dfa.step_string(dfa.start, "xxabyy")
        assert dfa.is_accepting(state)
        assert dfa.step(state, "z") == state

    def test_no_dead_states_in_anywhere_mode(self):
        dfa = dfa_for_pattern("abc")
        state = dfa.start
        for ch in "zzzzz":
            state = dfa.step(state, ch)
            assert state != DEAD


class TestExactMatch:
    def test_whole_string_only(self):
        dfa = dfa_for_pattern("abc", match_anywhere=False)
        assert dfa.accepts("abc")
        assert not dfa.accepts("xabc")
        assert not dfa.accepts("abcx")
        assert not dfa.accepts("ab")

    def test_star(self):
        dfa = dfa_for_pattern("a(b)*", match_anywhere=False)
        assert dfa.accepts("a")
        assert dfa.accepts("abbbb")
        assert not dfa.accepts("ba")

    def test_dead_state_reached(self):
        dfa = dfa_for_pattern("a", match_anywhere=False)
        assert dfa.step(dfa.start, "z") == DEAD
        assert dfa.step(DEAD, "a") == DEAD
        assert not dfa.is_accepting(DEAD)


class TestAgainstPythonRe:
    @given(regex_patterns(), st.text(alphabet="abc019 x", max_size=12))
    @settings(max_examples=300, deadline=None)
    def test_match_anywhere_equivalence(self, pattern, text):
        ours = dfa_for_pattern(pattern).accepts(text)
        theirs = python_re.search(_to_python_re(pattern), text) is not None
        assert ours == theirs

    @given(regex_patterns(), st.text(alphabet="abc019 x", max_size=12))
    @settings(max_examples=300, deadline=None)
    def test_exact_equivalence(self, pattern, text):
        ours = dfa_for_pattern(pattern, match_anywhere=False).accepts(text)
        theirs = python_re.fullmatch(_to_python_re(pattern), text) is not None
        assert ours == theirs


class TestMaterializeAndMinimize:
    def test_materialized_agrees_with_lazy(self):
        # Equivalence holds over the materialized alphabet only.
        lazy = dfa_for_pattern(r"a(b|c)\d")
        table = lazy.materialize("abc019 ")
        for text in [" ab1 ", "ac9", "ab", "a b 1", "abc019", "cab0c"]:
            assert table.accepts(text) == lazy.accepts(text)

    def test_minimize_preserves_language(self):
        lazy = dfa_for_pattern(r"(a|b)(a|b)c")
        table = lazy.materialize("abc ")
        small = minimize(table)
        assert small.num_states <= table.num_states
        for text in ["aac", "abc", "bbc", "ab", "c", "xxaacxx"[:5]]:
            assert small.accepts(text) == table.accepts(text)

    def test_minimize_reduces_redundant_states(self):
        # (a|b) twice creates sibling subsets that minimize can merge.
        table = dfa_for_pattern("(aa|ab)", match_anywhere=False).materialize("ab")
        small = minimize(table)
        assert small.num_states < table.num_states

    def test_unknown_character_is_dead(self):
        table = dfa_for_pattern("a", match_anywhere=False).materialize("a")
        assert table.step(table.start, "z") == table.dead


class TestLazyStateCount:
    def test_keyword_state_count_is_linear(self):
        dfa = dfa_for_pattern("President")
        dfa.accepts("the President said President things")
        # states: one per proper prefix (+ restart overlaps) + accept
        assert dfa.num_states <= len("President") + 2

    def test_nfa_state_count(self):
        nfa = compile_pattern(r"a(b|c)*d")
        assert nfa.num_states > 0
        assert nfa.start != nfa.accept
