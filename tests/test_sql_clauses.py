"""Tests for ORDER BY / LIMIT in the SQL layer."""

import pytest

from repro.db.engine import StaccatoDB
from repro.db.sql import SqlError, execute_select, parse_select
from repro.ocr.corpus import make_ca
from repro.ocr.engine import SimulatedOcrEngine
from repro.ocr.noise import NoiseModel


class TestParsing:
    def test_order_by_desc(self):
        parsed = parse_select("SELECT DocId FROM Claims ORDER BY Loss DESC")
        assert parsed.order_by == ("Loss", True)

    def test_order_by_default_asc(self):
        parsed = parse_select("SELECT DocId FROM Claims ORDER BY Year")
        assert parsed.order_by == ("Year", False)

    def test_order_by_probability(self):
        parsed = parse_select(
            "SELECT DocId FROM Claims ORDER BY Probability DESC LIMIT 3"
        )
        assert parsed.order_by == ("Probability", True)
        assert parsed.limit == 3

    def test_where_then_order_then_limit(self):
        parsed = parse_select(
            "SELECT DocId FROM Claims WHERE Year > 2000 "
            "ORDER BY Loss DESC LIMIT 2"
        )
        assert parsed.scalar_predicates == [("Year", ">", 2000)]
        assert parsed.order_by == ("Loss", True)
        assert parsed.limit == 2

    def test_bad_order_column(self):
        with pytest.raises(SqlError):
            parse_select("SELECT DocId FROM Claims ORDER BY Bogus")

    def test_bad_limit(self):
        with pytest.raises(SqlError):
            parse_select("SELECT DocId FROM Claims LIMIT 2.5")

    def test_trailing_garbage(self):
        with pytest.raises(SqlError):
            parse_select("SELECT DocId FROM Claims LIMIT 2 extra")


@pytest.fixture(scope="module")
def clause_db():
    db = StaccatoDB(k=5, m=6)
    db.ingest(
        make_ca(num_docs=4, lines_per_doc=3),
        SimulatedOcrEngine(NoiseModel(tail_mass=0.0), seed=44),
    )
    yield db
    db.close()


class TestExecution:
    def test_order_by_loss_desc(self, clause_db):
        rows = execute_select(
            clause_db, "SELECT DocId, Loss FROM Claims ORDER BY Loss DESC"
        )
        losses = [row["Loss"] for row in rows]
        assert losses == sorted(losses, reverse=True)

    def test_order_by_year_asc(self, clause_db):
        rows = execute_select(
            clause_db, "SELECT DocId, Year FROM Claims ORDER BY Year"
        )
        years = [row["Year"] for row in rows]
        assert years == sorted(years)

    def test_limit(self, clause_db):
        rows = execute_select(clause_db, "SELECT DocId FROM Claims LIMIT 2")
        assert len(rows) == 2

    def test_order_by_unprojected_column(self, clause_db):
        # Ordering may use a column that is not projected.
        rows = execute_select(
            clause_db, "SELECT DocId FROM Claims ORDER BY Loss DESC"
        )
        full = execute_select(
            clause_db, "SELECT DocId, Loss FROM Claims ORDER BY Loss DESC"
        )
        assert [r["DocId"] for r in rows] == [r["DocId"] for r in full]

    def test_order_by_probability_with_like(self, clause_db):
        rows = execute_select(
            clause_db,
            "SELECT DocId FROM Claims WHERE DocData LIKE '%the%' "
            "ORDER BY Probability DESC LIMIT 3",
            approach="fullsfa",
        )
        probs = [row["Probability"] for row in rows]
        assert probs == sorted(probs, reverse=True)
        assert len(rows) <= 3
