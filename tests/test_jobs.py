"""The background job engine: lifecycle, journal, rebalance, warm start.

Four layers:

* **Engine unit tests** drive :class:`repro.service.jobs.JobEngine`
  with custom job types on a stub service: success/failure/cancel
  transitions, progress, conflicts, and restart recovery from the JSON
  journal (interrupted non-idempotent jobs are reported as failed;
  idempotent ones re-queue and run).
* **RoutingTable unit tests** pin the atomic-publish ownership model:
  striped defaults, move overrides, splicing, persistence.
* **HTTP tests** exercise ``POST /jobs`` / ``GET /jobs`` /
  ``GET /jobs/<id>`` / ``DELETE /jobs/<id>`` plus the rehomed
  ``POST /index`` on a live server.
* **Rebalance + warm-start tests** run the flagship jobs in-process on
  real services: a successful move relocates rows and flips routing
  with identical answers; a cancel mid-move rolls the target back and
  leaves routing and source untouched; duplicate moves are refused 409;
  ``cache_snapshot`` + ``warm_start`` survive a restart and drop stale
  shards.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.service import QueryService, start_service
from repro.service.jobs import JobEngine, JobType
from repro.service.shards import (
    ROUTING_FILE,
    RoutingTable,
    ShardedQueryService,
    shard_for_doc,
)
from repro.service.validation import ApiError
from repro.bench.service_load import get_json, post_json

WAIT = 30.0


def _batch(doc_ids, lines_per_doc=2):
    return {
        "dataset": "jobs-test",
        "documents": [
            {
                "doc_id": doc_id,
                "lines": [
                    f"Congress line {doc_id}-{n} of public law"
                    for n in range(lines_per_doc)
                ],
            }
            for doc_id in doc_ids
        ],
    }


def _rows(answers):
    return [
        (a["doc_id"], a["line_no"], round(a["probability"], 12))
        for a in answers
    ]


# ----------------------------------------------------------------------
# Engine unit tests (stub service, custom job types)
# ----------------------------------------------------------------------
class TestJobEngine:
    def _engine(self, tmp_path, workers=1, journal="journal.json"):
        path = str(tmp_path / journal) if journal else None
        return JobEngine(object(), path, workers=workers)

    def test_success_lifecycle_and_result(self, tmp_path):
        engine = self._engine(tmp_path)
        engine.register(
            JobType(
                "double",
                runner=lambda service, job, params: {"value": params["x"] * 2},
            )
        )
        job = engine.submit("double", {"x": 21})
        row = engine.wait(job.id, timeout=WAIT)
        assert row["state"] == "succeeded"
        assert row["result"] == {"value": 42}
        assert row["progress"] == 1.0
        assert row["started_at"] is not None and row["finished_at"] is not None
        engine.shutdown()

    def test_crash_marks_failed_with_traceback(self, tmp_path):
        engine = self._engine(tmp_path)

        def boom(service, job, params):
            raise ValueError("worker exploded")

        engine.register(JobType("boom", runner=boom))
        job = engine.submit("boom", {})
        row = engine.wait(job.id, timeout=WAIT)
        assert row["state"] == "failed"
        assert "Traceback" in row["error"]
        assert "ValueError: worker exploded" in row["error"]
        engine.shutdown()

    def test_progress_and_metrics_are_published(self, tmp_path):
        engine = self._engine(tmp_path)

        def stepper(service, job, params):
            job.update(progress=0.5, items=7)
            return "ok"

        engine.register(JobType("stepper", runner=stepper))
        job = engine.submit("stepper", {})
        row = engine.wait(job.id, timeout=WAIT)
        assert row["metrics"] == {"items": 7}
        engine.shutdown()

    def test_cancel_queued_job_never_runs(self, tmp_path):
        engine = self._engine(tmp_path, workers=1)
        release = threading.Event()
        ran: list[str] = []

        def blocker(service, job, params):
            release.wait(WAIT)
            return "done"

        engine.register(JobType("block", runner=blocker))
        engine.register(
            JobType(
                "noop", runner=lambda s, j, p: ran.append(j.id) or "ran"
            )
        )
        engine.submit("block", {})
        queued = engine.submit("noop", {})
        row = engine.cancel(queued.id)
        assert row["state"] == "cancelled"
        release.set()
        row = engine.wait(queued.id, timeout=WAIT)
        assert row["state"] == "cancelled"
        assert ran == []  # the worker skipped the cancelled entry
        engine.shutdown()

    def test_cooperative_cancel_running_job(self, tmp_path):
        engine = self._engine(tmp_path, workers=1)
        started = threading.Event()

        def loiter(service, job, params):
            started.set()
            deadline = time.monotonic() + WAIT
            while time.monotonic() < deadline:
                job.check_cancelled()
                time.sleep(0.01)
            raise AssertionError("never saw the cancel")

        engine.register(JobType("loiter", runner=loiter))
        job = engine.submit("loiter", {})
        assert started.wait(WAIT)
        row = engine.cancel(job.id)
        assert row["cancel_requested"] is True
        row = engine.wait(job.id, timeout=WAIT)
        assert row["state"] == "cancelled"
        # A terminal job has nothing left to cancel: 409 job_conflict.
        with pytest.raises(ApiError) as err:
            engine.cancel(job.id)
        assert err.value.status == 409 and err.value.code == "job_conflict"
        engine.shutdown()

    def test_unknown_type_and_unknown_job(self, tmp_path):
        engine = self._engine(tmp_path)
        with pytest.raises(ApiError) as err:
            engine.submit("no_such_type", {})
        assert err.value.status == 400
        with pytest.raises(ApiError) as err:
            engine.get("nope")
        assert err.value.status == 404 and err.value.code == "unknown_job"
        engine.shutdown()

    def test_conflicting_submissions_are_409(self, tmp_path):
        engine = self._engine(tmp_path, workers=1)
        release = threading.Event()
        engine.register(
            JobType(
                "exclusive",
                runner=lambda s, j, p: release.wait(WAIT),
                conflicts=lambda a, b: True,
            )
        )
        first = engine.submit("exclusive", {})
        with pytest.raises(ApiError) as err:
            engine.submit("exclusive", {})
        assert err.value.status == 409 and err.value.code == "job_conflict"
        release.set()
        engine.wait(first.id, timeout=WAIT)
        # Terminal jobs no longer conflict.
        second = engine.submit("exclusive", {})
        engine.wait(second.id, timeout=WAIT)
        engine.shutdown()

    def test_restart_reports_interrupted_and_resumes_idempotent(self, tmp_path):
        journal = tmp_path / "journal.json"
        rows = [
            {
                "id": "deadbeefcafe",
                "type": "rebalance",
                "params": {"doc_lo": 0, "doc_hi": 9, "source": 0, "target": 1},
                "state": "running",
                "created_at": 1.0,
            },
            {
                "id": "feedfacefeed",
                "type": "resumable",
                "params": {},
                "state": "queued",
                "created_at": 2.0,
            },
        ]
        journal.write_text(json.dumps({"jobs": rows}))
        # The type must be known at construction (= recovery) time for
        # its interrupted jobs to re-queue; ``extra_types`` does that.
        engine = JobEngine(
            object(),
            str(journal),
            workers=1,
            extra_types=[
                JobType(
                    "resumable", idempotent=True, runner=lambda s, j, p: "again"
                )
            ],
        )
        interrupted = engine.get("deadbeefcafe").snapshot()
        assert interrupted["state"] == "failed"
        assert interrupted["interrupted"] is True
        assert "interrupted by a service restart" in interrupted["error"]
        resumed = engine.wait("feedfacefeed", timeout=WAIT)
        assert resumed["interrupted"] is True
        assert resumed["state"] == "succeeded"
        assert resumed["result"] == "again"
        engine.shutdown()

    def test_malformed_journal_rows_never_block_startup(self, tmp_path):
        journal = tmp_path / "journal.json"
        journal.write_text(
            json.dumps(
                {
                    "jobs": [
                        {"type": "rebalance", "state": "running"},  # no id
                        {"id": "ok1234567890", "type": "noop",
                         "state": "succeeded", "created_at": 1.0},
                    ]
                }
            )
        )
        engine = JobEngine(object(), str(journal), workers=1)
        assert [row["id"] for row in engine.list()] == ["ok1234567890"]
        engine.shutdown()

    def test_journal_survives_transitions(self, tmp_path):
        journal = tmp_path / "journal.json"
        engine = JobEngine(object(), str(journal), workers=1)
        engine.register(JobType("noop", runner=lambda s, j, p: "ok"))
        job = engine.submit("noop", {})
        engine.wait(job.id, timeout=WAIT)
        engine.shutdown()
        stored = json.loads(journal.read_text())["jobs"]
        assert [row["id"] for row in stored] == [job.id]
        assert stored[0]["state"] == "succeeded"


# ----------------------------------------------------------------------
# RoutingTable unit tests
# ----------------------------------------------------------------------
class TestRoutingTable:
    def test_default_matches_striping(self):
        table = RoutingTable(3, range_width=4)
        for doc_id in range(100):
            assert table.owner(doc_id) == shard_for_doc(doc_id, 3, 4)
            assert table.override_owner(doc_id) is None

    def test_with_move_overrides_range_only(self):
        table = RoutingTable(2, range_width=4).with_move(0, 3, 1)
        assert table.owner(0) == 1 and table.owner(3) == 1
        assert table.override_owner(2) == 1
        assert table.owner(4) == shard_for_doc(4, 2, 4)
        assert table.override_owner(4) is None

    def test_later_move_splices_over_earlier(self):
        table = (
            RoutingTable(3, range_width=2)
            .with_move(0, 9, 1)
            .with_move(4, 6, 2)
        )
        assert table.overrides == ((0, 3, 1), (4, 6, 2), (7, 9, 1))
        assert table.owner(5) == 2 and table.owner(8) == 1

    def test_immutability_via_successors(self):
        base = RoutingTable(2, range_width=1)
        moved = base.with_move(0, 0, 1)
        assert base.overrides == ()
        assert moved.overrides == ((0, 0, 1),)

    def test_save_load_round_trip(self, tmp_path):
        table = RoutingTable(2, range_width=3).with_move(0, 2, 1)
        table.save(str(tmp_path))
        loaded = RoutingTable.load(str(tmp_path), 2, 3)
        assert loaded.overrides == table.overrides
        # A different geometry ignores the stale sidecar.
        other = RoutingTable.load(str(tmp_path), 4, 3)
        assert other.overrides == ()

    def test_overlapping_overrides_rejected(self):
        with pytest.raises(ValueError):
            RoutingTable(2, overrides=[(0, 5, 0), (3, 8, 1)])


# ----------------------------------------------------------------------
# HTTP surface
# ----------------------------------------------------------------------
class TestJobsHttp:
    @pytest.fixture()
    def running(self, tmp_path):
        service = start_service(
            str(tmp_path / "jobs.db"), k=4, m=6, pool_size=2
        )
        post_json(service.base_url, "/ingest", _batch([1, 2]))
        yield service
        service.stop()

    def _poll(self, base_url, job_id):
        deadline = time.monotonic() + WAIT
        while time.monotonic() < deadline:
            _, row = get_json(base_url, f"/jobs/{job_id}")
            if row["state"] not in ("queued", "running"):
                return row
            time.sleep(0.02)
        raise AssertionError(f"job {job_id} never finished")

    def test_submit_poll_list(self, running):
        status, job = post_json(
            running.base_url,
            "/jobs",
            {"type": "rebuild_index", "params": {"terms": ["congress"]}},
        )
        assert status == 202
        assert job["state"] in ("queued", "running")
        row = self._poll(running.base_url, job["id"])
        assert row["state"] == "succeeded"
        assert row["result"]["postings"] >= 0
        status, listing = get_json(running.base_url, "/jobs")
        assert status == 200
        assert job["id"] in [entry["id"] for entry in listing["jobs"]]
        assert listing["workers"] >= 1

    def test_index_endpoint_submits_job(self, running):
        status, job = post_json(
            running.base_url, "/index", {"terms": ["law"]}
        )
        assert status == 202 and job["type"] == "rebuild_index"
        row = self._poll(running.base_url, job["id"])
        assert row["state"] == "succeeded"
        # wait=true keeps the old synchronous shape plus the job id.
        status, reply = post_json(
            running.base_url, "/index", {"terms": ["law"], "wait": True}
        )
        assert status == 200
        assert "postings" in reply and reply["job_id"]

    def test_errors(self, running):
        import urllib.error
        import urllib.request

        status, body = post_json(
            running.base_url, "/jobs", {"type": "no_such_type"}
        )
        assert status == 400
        status, body = post_json(
            running.base_url,
            "/jobs",
            {"type": "rebalance",
             "params": {"doc_lo": 0, "doc_hi": 1, "source": 0, "target": 1}},
        )
        assert status == 400 and body["error"]["code"] == "not_sharded"
        status, body = get_json(running.base_url, "/jobs/missing")
        assert status == 404 and body["error"]["code"] == "unknown_job"
        request = urllib.request.Request(
            f"{running.base_url}/jobs/missing", method="DELETE"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 404
        assert json.loads(err.value.read())["error"]["code"] == "unknown_job"

    def test_stats_reports_jobs(self, running):
        post_json(
            running.base_url, "/index", {"terms": ["law"], "wait": True}
        )
        _, stats = get_json(running.base_url, "/stats")
        assert stats["jobs"]["states"].get("succeeded", 0) >= 1
        assert stats["requests"]["jobs"]["rebuild_index"]["count"] >= 1


# ----------------------------------------------------------------------
# Rebalance lifecycle (in-process sharded service)
# ----------------------------------------------------------------------
class TestRebalance:
    @pytest.fixture()
    def cluster(self, tmp_path):
        service = ShardedQueryService(
            str(tmp_path / "shards"), 2, k=4, m=6, pool_size=2, range_width=2
        )
        # DocIds 0,1 -> shard 0; 2,3 -> shard 1.
        service.ingest(_batch([0, 1, 2, 3]))
        yield service
        service.close()

    def test_successful_move_relocates_rows_and_routing(self, cluster):
        before = cluster.search({"pattern": "%Congress%", "num_ans": 50})
        source_lines = cluster.pool.shard(0).writer.num_lines
        assert source_lines > 0
        row = cluster.jobs_submit(
            {
                "type": "rebalance",
                "params": {"doc_lo": 0, "doc_hi": 1, "source": 0, "target": 1},
                "wait": True,
            }
        )
        assert row["state"] == "succeeded", row["error"]
        assert row["result"]["moved_docs"] == 2
        assert cluster.pool.shard(0).writer.num_lines == 0
        assert cluster.pool.shard(1).writer.num_lines == 8
        assert cluster.routing.override_owner(0) == 1
        assert cluster.routing.override_owner(1) == 1
        after = cluster.search({"pattern": "%Congress%", "num_ans": 50})
        assert _rows(before["answers"]) == _rows(after["answers"])
        assert all(a["shard"] == 1 for a in after["answers"])
        # The routing table survived to disk for the next process.
        persisted = json.loads(
            open(os.path.join(cluster.shard_dir, ROUTING_FILE)).read()
        )
        assert persisted["overrides"] == [[0, 1, 1]]

    def test_new_ingest_into_moved_range_lands_on_target(self, cluster):
        cluster.jobs_submit(
            {
                "type": "rebalance",
                "params": {"doc_lo": 0, "doc_hi": 1, "source": 0, "target": 1},
                "wait": True,
            }
        )
        # More lines for a moved document must follow it to the target.
        reply = cluster.ingest(_batch([0], lines_per_doc=1))
        assert set(reply["shards"]) == {"1"}
        assert cluster.pool.shard(0).writer.num_lines == 0

    def test_cancel_mid_move_rolls_back_cleanly(self, cluster):
        before = cluster.search({"pattern": "%Congress%", "num_ans": 50})
        source_lines = cluster.pool.shard(0).writer.num_lines
        target_lines = cluster.pool.shard(1).writer.num_lines
        # The hook fires between the copy and the routing swap -- the
        # worst possible moment: rows exist on both shards.
        cluster._rebalance_after_copy = lambda job: job.request_cancel()
        row = cluster.jobs_submit(
            {
                "type": "rebalance",
                "params": {"doc_lo": 0, "doc_hi": 1, "source": 0, "target": 1},
                "wait": True,
            }
        )
        assert row["state"] == "cancelled"
        # Routing unchanged, source rows intact, target copy undone.
        assert cluster.routing.overrides == ()
        assert cluster.pool.shard(0).writer.num_lines == source_lines
        assert cluster.pool.shard(1).writer.num_lines == target_lines
        after = cluster.search({"pattern": "%Congress%", "num_ans": 50})
        assert _rows(before["answers"]) == _rows(after["answers"])

    def test_duplicate_rebalance_is_job_conflict(self, cluster):
        release = threading.Event()
        cluster.jobs.register(
            JobType("block", runner=lambda s, j, p: release.wait(WAIT))
        )
        try:
            # Fill both workers so the rebalance stays queued (= active).
            for _ in range(cluster.jobs.workers):
                cluster.jobs.submit("block", {})
            first = cluster.jobs_submit(
                {
                    "type": "rebalance",
                    "params": {
                        "doc_lo": 0, "doc_hi": 1, "source": 0, "target": 1,
                    },
                }
            )
            assert first[0] == 202
            with pytest.raises(ApiError) as err:
                cluster.jobs_submit(
                    {
                        "type": "rebalance",
                        "params": {
                            # Overlapping range, opposite direction:
                            # still a conflict while the first is live.
                            "doc_lo": 1, "doc_hi": 3,
                            "source": 1, "target": 0,
                        },
                    }
                )
            assert err.value.status == 409
            assert err.value.code == "job_conflict"
        finally:
            release.set()
        cluster.jobs.wait(first[1]["id"], timeout=WAIT)

    def test_resubmit_converges_after_failed_delete(self, cluster):
        # Simulate a move that died between the copy commit and the
        # source delete: copy the rows by hand (a real half-finished
        # move), then run the job -- it must skip the existing copies,
        # retry the delete, and end fully converged.
        before = cluster.search({"pattern": "%Congress%", "num_ans": 50})
        source = cluster.pool.shard(0)
        target = cluster.pool.shard(1)
        doc_ids = [0, 1]
        lines = source.writer.conn.execute(
            "SELECT COUNT(*) FROM MasterData WHERE DocId BETWEEN 0 AND 1"
        ).fetchone()[0]
        for replica in target.replicas.replicas():
            cluster._rebalance_copy(replica, source.path, doc_ids, lines)
        assert target.writer.num_lines == 8  # duplicates live on both
        row = cluster.jobs_submit(
            {
                "type": "rebalance",
                "params": {"doc_lo": 0, "doc_hi": 1, "source": 0, "target": 1},
                "wait": True,
            }
        )
        assert row["state"] == "succeeded", row["error"]
        assert cluster.pool.shard(0).writer.num_lines == 0
        assert cluster.pool.shard(1).writer.num_lines == 8
        after = cluster.search({"pattern": "%Congress%", "num_ans": 50})
        assert _rows(before["answers"]) == _rows(after["answers"])

    def test_cancel_of_repair_run_never_unwinds_preexisting_copies(
        self, cluster
    ):
        # A repair re-run's copy skips documents the target already
        # holds; cancelling that run must unwind nothing -- the skipped
        # copies (which may carry post-switch ingests existing nowhere
        # else) are not this run's work.
        source = cluster.pool.shard(0)
        target = cluster.pool.shard(1)
        doc_ids = [0, 1]
        lines = source.writer.conn.execute(
            "SELECT COUNT(*) FROM MasterData WHERE DocId BETWEEN 0 AND 1"
        ).fetchone()[0]
        for replica in target.replicas.replicas():
            cluster._rebalance_copy(replica, source.path, doc_ids, lines)
        target_lines = target.writer.num_lines
        cluster._rebalance_after_copy = lambda job: job.request_cancel()
        row = cluster.jobs_submit(
            {
                "type": "rebalance",
                "params": {"doc_lo": 0, "doc_hi": 1, "source": 0, "target": 1},
                "wait": True,
            }
        )
        assert row["state"] == "cancelled"
        # The pre-existing copies survived the cancelled repair run.
        assert target.writer.num_lines == target_lines
        assert source.writer.num_lines == lines

    def test_rebalance_params_validation(self, cluster):
        for params, fragment in [
            ({"doc_lo": 3, "doc_hi": 1, "source": 0, "target": 1}, "doc_hi"),
            ({"doc_lo": 0, "doc_hi": 1, "source": 0, "target": 0}, "different"),
            ({"doc_lo": 0, "doc_hi": 1, "source": 0, "target": 9}, "unknown"),
            ({"doc_lo": 0, "source": 0, "target": 1}, "doc_hi"),
        ]:
            with pytest.raises(ApiError) as err:
                cluster.jobs_submit({"type": "rebalance", "params": params})
            assert err.value.status == 400
            assert fragment in str(err.value)

    def test_restart_with_journal_reports_interrupted_move(self, tmp_path):
        shard_dir = tmp_path / "shards"
        shard_dir.mkdir()
        (shard_dir / "jobs.json").write_text(
            json.dumps(
                {
                    "jobs": [
                        {
                            "id": "cafebabe0001",
                            "type": "rebalance",
                            "params": {
                                "doc_lo": 0, "doc_hi": 1,
                                "source": 0, "target": 1,
                            },
                            "state": "running",
                            "created_at": 1.0,
                        }
                    ]
                }
            )
        )
        service = ShardedQueryService(
            str(shard_dir), 2, k=4, m=6, pool_size=2, range_width=2
        )
        try:
            listing = service.jobs_list()
            (row,) = listing["jobs"]
            assert row["id"] == "cafebabe0001"
            assert row["state"] == "failed"
            assert row["interrupted"] is True
            assert "interrupted by a service restart" in row["error"]
        finally:
            service.close()


# ----------------------------------------------------------------------
# Warm start (cache_snapshot + serve --warm-start)
# ----------------------------------------------------------------------
class TestWarmStart:
    def test_single_db_round_trip(self, tmp_path):
        path = str(tmp_path / "warm.db")
        service = QueryService(path, k=4, m=6, pool_size=2)
        service.ingest(_batch([1, 2]))
        query = {"pattern": "%Congress%", "num_ans": 10}
        service.search(query)
        row = service.jobs_submit({"type": "cache_snapshot", "wait": True})
        assert row["state"] == "succeeded"
        assert row["result"]["entries"] >= 1
        service.close()

        revived = QueryService(path, k=4, m=6, pool_size=2)
        try:
            loaded = revived.warm_start()
            assert loaded >= 1
            reply = revived.search(query)
            assert reply["cached"] is True
            assert revived.stats()["cache"]["warm_loaded"] == loaded
        finally:
            revived.close()

    def test_single_db_stale_snapshot_dropped(self, tmp_path):
        path = str(tmp_path / "stale.db")
        service = QueryService(path, k=4, m=6, pool_size=2)
        service.ingest(_batch([1]))
        service.search({"pattern": "%Congress%", "num_ans": 10})
        service.jobs_submit({"type": "cache_snapshot", "wait": True})
        # A write after the snapshot makes every cached answer stale.
        service.ingest(_batch([2]))
        service.close()

        revived = QueryService(path, k=4, m=6, pool_size=2)
        try:
            assert revived.warm_start() == 0
            reply = revived.search({"pattern": "%Congress%", "num_ans": 10})
            assert reply["cached"] is False
        finally:
            revived.close()

    def test_sharded_per_shard_staleness(self, tmp_path):
        shard_dir = str(tmp_path / "shards")
        service = ShardedQueryService(
            shard_dir, 2, k=4, m=6, pool_size=2, range_width=2
        )
        service.ingest(_batch([0, 1, 2, 3]))
        full = {"pattern": "%Congress%", "num_ans": 10}
        scoped = {"pattern": "%Congress%", "num_ans": 10, "shards": [0]}
        service.search(full)
        service.search(scoped)
        row = service.jobs_submit({"type": "cache_snapshot", "wait": True})
        assert row["state"] == "succeeded" and row["result"]["entries"] == 2
        # Dirty only shard 1 after the snapshot: the full-scope entry
        # is now stale, the shard-0-scoped one is not.
        service.ingest(_batch([2], lines_per_doc=1))
        service.close()

        revived = ShardedQueryService(
            shard_dir, 2, k=4, m=6, pool_size=2, range_width=2
        )
        try:
            loaded = revived.warm_start()
            assert loaded == 1
            assert revived.search(scoped)["cached"] is True
            assert revived.search(full)["cached"] is False
        finally:
            revived.close()

    def test_index_rebuild_between_snapshot_and_restart_drops_snapshot(
        self, tmp_path
    ):
        path = str(tmp_path / "idx.db")
        service = QueryService(path, k=4, m=6, pool_size=2)
        service.ingest(_batch([1]))
        service.search({"pattern": "%Congress%", "num_ans": 10})
        service.jobs_submit({"type": "cache_snapshot", "wait": True})
        # An index rebuild invalidates cached plans without changing the
        # line count -- the warm start must notice via the fingerprint.
        service.index({"terms": ["congress", "law"]})
        service.close()

        revived = QueryService(path, k=4, m=6, pool_size=2)
        try:
            assert revived.warm_start() == 0
        finally:
            revived.close()

    def test_corrupt_snapshot_never_blocks_startup(self, tmp_path):
        path = str(tmp_path / "corrupt.db")
        service = QueryService(path, k=4, m=6, pool_size=2)
        service.ingest(_batch([1]))
        service.search({"pattern": "%Congress%", "num_ans": 10})
        service.jobs_submit({"type": "cache_snapshot", "wait": True})
        # Structurally broken but valid JSON: entries are not pairs.
        data = json.loads(open(service.snapshot_path).read())
        data["entries"] = [["lonely"]]
        open(service.snapshot_path, "w").write(json.dumps(data))
        service.close()

        revived = QueryService(path, k=4, m=6, pool_size=2)
        try:
            assert revived.warm_start() == 0
        finally:
            revived.close()

    def test_sharded_clean_restart_restores_everything(self, tmp_path):
        shard_dir = str(tmp_path / "shards")
        service = ShardedQueryService(
            shard_dir, 2, k=4, m=6, pool_size=2, range_width=2
        )
        service.ingest(_batch([0, 1, 2, 3]))
        full = {"pattern": "%Congress%", "num_ans": 10}
        service.search(full)
        service.jobs_submit({"type": "cache_snapshot", "wait": True})
        service.close()

        revived = ShardedQueryService(
            shard_dir, 2, k=4, m=6, pool_size=2, range_width=2
        )
        try:
            assert revived.warm_start() == 1
            assert revived.search(full)["cached"] is True
            assert revived.stats()["cache"]["warm_loaded"] == 1
        finally:
            revived.close()
